#!/usr/bin/env python3
"""Assemble benchmarks/results/ into a single REPORT.md.

Run after ``pytest benchmarks/ --benchmark-only``:

    python scripts/generate_report.py [--output REPORT.md]

The report orders the figures as the paper presents them and wraps every
saved text table in a fenced code block.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"

#: presentation order: (file stem, section heading)
SECTIONS = [
    ("fig01_access_frequency", "Figure 1 — access frequency by tier"),
    ("fig02a_identification", "Figure 2a — identification quality"),
    ("fig02b_pebs_bins", "Figure 2b — PEBS bin distribution"),
    ("tab1_characteristics", "Table 1 — system characteristics"),
    ("tab2_defaults", "Table 2 — Chrono defaults"),
    ("fig06a_50proc_5gb", "Figure 6a — pmbench throughput (headline)"),
    ("fig06b_32proc_8gb", "Figure 6b — pmbench throughput (large sets)"),
    ("fig06c_32proc_4gb", "Figure 6c — pmbench throughput (small sets)"),
    ("fig07a_baseline_cdf", "Figure 7a — baseline latency CDF"),
    ("fig07b_rw95_5", "Figure 7b — latency, R/W 95:5"),
    ("fig07c_rw70_30", "Figure 7c — latency, R/W 70:30"),
    ("fig07d_rw30_70", "Figure 7d — latency, R/W 30:70"),
    ("fig07e_rw5_95", "Figure 7e — latency, R/W 5:95"),
    ("fig08_attribution", "Figure 8 — run-time characteristics"),
    ("fig09_multitenant", "Figure 9 — multi-tenant DRAM share"),
    ("fig10a_cit_correlation", "Figure 10a — CIT vs access frequency"),
    ("fig10bc_tuning_history", "Figure 10b/c — tuning histories"),
    ("fig10d_sensitivity", "Figure 10d — pmbench sensitivity"),
    ("fig11a_graph500_base", "Figure 11a — Graph500 (base pages)"),
    ("fig11a_graph500_huge", "Figure 11a — Graph500 (huge pages)"),
    ("fig11b_graph500_sensitivity", "Figure 11b — Graph500 sensitivity"),
    ("fig12_memcached", "Figure 12 — Memcached"),
    ("fig12_redis", "Figure 12 — Redis"),
    ("fig13_ablation", "Figure 13 — design-choice ablation"),
    ("appb1_estimator_variance", "Appendix B.1 — estimator variance"),
    ("figb1_density_family", "Figure B1 — h(x, α) densities"),
    ("figb2_selection_efficiency", "Figure B2 — selection efficiency"),
    ("ext_table1_systems", "Extension — Telescope & FlexMem"),
    ("ext_adaptation", "Extension — phase-shift adaptation"),
    ("ext_demotion_precision", "Extension — demotion-precision ablation"),
    ("ext_cxl_tier", "Extension — CXL slow tier"),
    ("ext_scan_scope", "Extension — scan-scope ablation"),
]


def build_report() -> str:
    lines = [
        "# Reproduction report",
        "",
        "Generated from `benchmarks/results/` "
        "(see EXPERIMENTS.md for the paper-vs-measured discussion).",
        "",
    ]
    missing = []
    for stem, heading in SECTIONS:
        path = RESULTS_DIR / f"{stem}.txt"
        if not path.exists():
            missing.append(stem)
            continue
        lines.append(f"## {heading}")
        lines.append("")
        lines.append("```text")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")
    if missing:
        lines.append("## Missing results")
        lines.append("")
        lines.append(
            "Run `pytest benchmarks/ --benchmark-only` to generate: "
            + ", ".join(missing)
        )
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(pathlib.Path(__file__).parent.parent / "REPORT.md"),
    )
    args = parser.parse_args(argv)
    report = build_report()
    pathlib.Path(args.output).write_text(report)
    print(f"wrote {args.output} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
