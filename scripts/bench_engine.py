#!/usr/bin/env python
"""Engine hot-path benchmark: quanta/sec and cells/sec, before/after.

Runs the standard pmbench workload under one policy twice -- once with
the engine's optimized pricing path (cached tier masses, per-quantum
contention vector, preallocated buffers) and once with the reference
per-page path (``fast_path=False``, the pre-optimization behaviour) --
and reports simulated quanta per second of host wall time for both,
plus the cold-cache cells/sec of a small sweep grid and the profiled
subsystem shares.

Writes ``BENCH_engine.json`` (override with ``--out``) so CI can track
the perf trajectory.  CI-compatible: pure stdlib + the package itself,
runs in well under a minute at the default scale.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.harness.experiments import (  # noqa: E402
    StandardSetup,
    build_fleet,
)
from repro.harness.runner import run_experiment  # noqa: E402
from repro.harness.sweep import SweepCell, run_cells  # noqa: E402
from repro.sim.timeunits import SECOND  # noqa: E402


def time_engine(setup, policy_name, workload_kwargs, fast_path, profile):
    policy = setup.build_policy(policy_name)
    processes = build_fleet(setup, "pmbench", **workload_kwargs)
    start = time.perf_counter()
    result = run_experiment(
        processes,
        policy,
        setup.run_config(),
        fast_path=fast_path,
        profile=profile,
    )
    wall = time.perf_counter() - start
    quanta = result.engine.quanta_run
    return {
        "wall_sec": wall,
        "quanta": quanta,
        "quanta_per_sec": quanta / wall if wall else 0.0,
        "throughput_per_sec": result.throughput_per_sec,
        "fmar": result.fmar,
        "profile": result.profile,
    }


def time_sweep(duration_ns, workload_kwargs, policies, jobs):
    cells = [
        SweepCell(
            policy=name,
            workload="pmbench",
            workload_kwargs=dict(workload_kwargs),
            setup_kwargs={"duration_ns": duration_ns},
        )
        for name in policies
    ]
    start = time.perf_counter()
    run_cells(cells, jobs=jobs, use_cache=False)
    wall = time.perf_counter() - start
    return {
        "cells": len(cells),
        "jobs": jobs,
        "wall_sec": wall,
        "cells_per_sec": len(cells) / wall if wall else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--duration", type=float, default=20.0,
        help="simulated seconds per run (default: 20)",
    )
    parser.add_argument(
        "--policy", default="chrono",
        help="policy for the engine timing runs (default: chrono)",
    )
    parser.add_argument("--procs", type=int, default=8)
    parser.add_argument("--pages", type=int, default=4_096)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker pool size for the sweep-grid timing (default: 1)",
    )
    parser.add_argument(
        "--out", default="BENCH_engine.json",
        help="output JSON path (default: BENCH_engine.json)",
    )
    args = parser.parse_args(argv)

    duration_ns = int(args.duration * SECOND)
    setup = StandardSetup(duration_ns=duration_ns)
    workload_kwargs = dict(
        n_procs=args.procs, pages_per_proc=args.pages
    )

    print(
        f"engine benchmark: {args.policy}, pmbench x{args.procs}, "
        f"{args.duration:.0f}s simulated"
    )
    naive = time_engine(
        setup, args.policy, workload_kwargs,
        fast_path=False, profile=False,
    )
    print(
        f"  before (per-page path): {naive['quanta_per_sec']:8.1f} "
        f"quanta/sec  ({naive['wall_sec']:.2f}s wall)"
    )
    optimized = time_engine(
        setup, args.policy, workload_kwargs,
        fast_path=True, profile=True,
    )
    print(
        f"  after  (cached masses): {optimized['quanta_per_sec']:8.1f} "
        f"quanta/sec  ({optimized['wall_sec']:.2f}s wall)"
    )
    speedup = (
        optimized["quanta_per_sec"] / naive["quanta_per_sec"]
        if naive["quanta_per_sec"]
        else 0.0
    )
    print(f"  speedup: {speedup:.2f}x")

    sweep = time_sweep(
        duration_ns // 2,
        workload_kwargs,
        ("linux-nb", "tpp", "memtis", "chrono"),
        jobs=args.jobs,
    )
    print(
        f"  sweep grid: {sweep['cells']} cells in "
        f"{sweep['wall_sec']:.2f}s "
        f"({sweep['cells_per_sec']:.2f} cells/sec, "
        f"jobs={sweep['jobs']})"
    )

    payload = {
        "config": {
            "policy": args.policy,
            "workload": "pmbench",
            "n_procs": args.procs,
            "pages_per_proc": args.pages,
            "duration_sec": args.duration,
        },
        "before": {
            k: naive[k]
            for k in ("wall_sec", "quanta", "quanta_per_sec")
        },
        "after": {
            k: optimized[k]
            for k in ("wall_sec", "quanta", "quanta_per_sec")
        },
        "speedup": speedup,
        "sweep": sweep,
        "profile": optimized["profile"],
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
