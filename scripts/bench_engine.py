#!/usr/bin/env python
"""Engine hot-path benchmark: quanta/sec and cells/sec, before/after.

Runs the standard pmbench workload under one policy twice -- once with
the engine's optimized pricing path (cached tier masses, per-quantum
contention vector, preallocated buffers) and once with the reference
per-page path (``fast_path=False``, the pre-optimization behaviour) --
and reports simulated quanta per second of host wall time for both,
plus the profiled subsystem shares.

The sweep section exercises the fleet-scale execution layer: a
16-cell (policy x seed) pmbench grid is re-run cold at every rung of
a worker-pool ladder (jobs 1/2/4/8, capped at the host's usable CPU
count -- rungs wider than the machine only measure scheduler churn --
with shared-memory table transport on and off), and a reuse-heavy
graph500 grid compares warm-pool table reuse against the old
rebuild-per-cell behaviour.  ``host_cpus`` is recorded with the
ladder because parallel speedup is bounded by it.

The fusion section times quantum fusion (one macro-quantum per
steady-state stretch; see ``docs/SIMULATION.md``) against per-quantum
stepping (``fusion=False``) on a steady-state Memtis/pmbench config,
reporting quanta/sec both ways, the fusion ratio, and the speedup.

The arena section times cross-process arena stepping (one batched
array program per quantum; see ``docs/SIMULATION.md``) against the
per-process fast path (``arena=False``) on a stepping-bound fleet
config: 96 small processes at a fine 5 ms quantum (a 250 Hz kernel
tick) with the kernel daemons *live* at the testbed's realistic
periods (5 s Ticking scan, 1 s aging), fusion off in both modes.
The arena is never quiesced: scan, aging, migration, and reclaim
windows all run through the batched fleet passes, so the measured
gap is per-quantum stepping cost under real transient load.  The
speedup must clear ``ARENA_SPEEDUP_FLOOR``.

The class_dedup section times distribution interning
(equivalence-class arena stepping; see ``docs/SIMULATION.md``
section 8) against the uninterned arena step on a shared-table
fleet: 1,024 compute-bound multitenant processes sharing exactly 8
distinct distribution tables, fusion off in both modes, daemons
live.  Only ``engine.run`` is timed (registration and placement of
the 262 K-page fleet are identical fixed costs in both modes) and
the clock is process CPU time, which is immune to scheduler noise
on shared runners.  The interned-vs-uninterned speedup must clear
``CLASS_DEDUP_SPEEDUP_FLOOR``.

The trace section covers the trace pipeline end to end.  Compile: a
two-million-event synthetic stream with three known phases runs
through the chunked trace compiler (``repro.workloads.compile``) and
must bin + segment at least ``TRACE_COMPILE_FLOOR`` events per
CPU-second.  Replay: the compiled three-phase trace replays for one
full cycle with fusion on and off; the fused run's fusion ratio must
clear ``TRACE_FUSION_RATIO_FLOOR`` (a phase-stable compiled trace
rides the macro-quantum path) and the two runs must agree on
throughput and FMAR within ``TRACE_EQUIV_TOLERANCE``.  Traffic: a
1,024-tenant generated fleet (``repro.workloads.tracegen``: Zipf
popularity, diurnal delay buckets, shared pattern tables) steps
through the arena interned vs uninterned under the class_dedup
protocol, and the speedup must clear ``TRAFFIC_SPEEDUP_FLOOR``.

The tournament section times the full registered-policy roster (all
12 Table 1 policies) on one phase-changing ``shifting-hotspot``
workload, reporting per-policy wall seconds plus aggregate
cells/sec -- the end-to-end cost of a cross-policy comparison run.

Sections that cannot be measured honestly on the current host are
skipped with a warning: a 1-CPU host skips the worker-pool ladder
and the warm-vs-cold comparison (pool rungs there only time
scheduler churn).  Skipped sections are carried forward from the
committed baseline -- but only when the baseline's provenance sha
matches HEAD.  A stale baseline (different sha) is refused unless
``--allow-stale`` is passed, in which case the carried section is
annotated with the sha it came from.

The full run also sweeps a page-count ladder (4 K -> 5.2 M pages per
process, two processes, 10.5 M pages total at the top rung) to chart
ns/page/quantum: the steady-state engine cost must grow *sublinearly*
in the footprint (deferred accounting, incremental tier masses, and
sparse aging leave only amortized O(pages) work on aging/flush
boundaries).  At every rung the optimized path is checked against the
reference per-page path (``fast_path=False``) for statistical
equivalence on throughput and FMAR.

Writes ``BENCH_engine.json`` (override with ``--out``) so CI can track
the perf trajectory.  Every payload carries a ``provenance`` block
(git SHA, python/numpy versions, host CPUs, timestamp) so committed
numbers can be traced to the host that produced them; ``--quick``
warns when the committed baseline came from a host with a different
CPU count.  ``--quick`` is the CI regression gate: it times only the
optimized path at the default scale and fails (exit 1) when
quanta/sec drops below ``QUICK_GATE_FRACTION`` of the committed
baseline's ``after.quanta_per_sec``, when cold sweep throughput at
jobs=2 drops below ``SWEEP_GATE_FRACTION`` of the committed ladder's
matching rung, when fused steady-state quanta/sec drops below
``FUSION_GATE_FRACTION`` of the committed fusion section, when the
fused-vs-unfused speedup falls below ``FUSION_SPEEDUP_FLOOR``, or
when the arena-vs-per-process speedup falls below
``ARENA_SPEEDUP_FLOOR`` (or arena quanta/sec below
``ARENA_GATE_FRACTION`` of the committed arena section), or when the
class dedup interning speedup falls below
``CLASS_DEDUP_SPEEDUP_FLOOR`` (or interned quanta per CPU-second
below ``CLASS_DEDUP_GATE_FRACTION`` of the committed class_dedup
section).
CI-compatible: pure stdlib + the package itself, runs in about a
minute at the default scale.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import subprocess
import sys
import time

import numpy as np

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.harness.engine import QuantumEngine  # noqa: E402
from repro.harness.experiments import (  # noqa: E402
    StandardSetup,
    build_fleet,
)
from repro.harness.runner import (  # noqa: E402
    run_experiment,
    summarize_run,
)
from repro.harness.sweep import (  # noqa: E402
    SweepCell,
    clear_memory_cache,
    run_cell,
    run_cells,
)
from repro.kernel.kernel import Kernel  # noqa: E402
from repro.sim.rng import RngStreams  # noqa: E402
from repro.sim.timeunits import MILLISECOND, SECOND  # noqa: E402
from repro.vm.process import SimProcess  # noqa: E402
from repro.workloads import reset_table_cache  # noqa: E402
from repro.workloads.compile import (  # noqa: E402
    compile_event_stream,
    synthetic_event_stream,
)

#: --quick fails when quanta/sec falls below this fraction of the
#: committed baseline (allows host-speed jitter, catches real
#: regressions)
QUICK_GATE_FRACTION = 0.7

#: --quick sweep-throughput floor: cells/sec at jobs=2 must stay above
#: this fraction of the committed ladder's jobs=2 rung.  Looser than
#: the quanta/sec gate because pool spin-up adds fixed overhead that a
#: short grid amortizes poorly on slow runners.
SWEEP_GATE_FRACTION = 0.5

#: --quick fused-throughput floor, as a fraction of the committed
#: fusion section's fused quanta/sec.  Looser than the quanta/sec gate
#: because the quick run simulates a quarter of the full duration, so
#: the warm-up stretch (where fusion cannot engage) weighs heavier.
FUSION_GATE_FRACTION = 0.5

#: --quick floor on the fused-vs-per-quantum speedup at the fusion
#: config: fusion must actually pay for itself on steady-state work.
FUSION_SPEEDUP_FLOOR = 1.2

#: steady-state config for the fusion section: Memtis on stationary
#: pmbench reaches a stable classification quickly, after which most
#: quanta fuse up to the classify/aging event horizon.
FUSION_POLICY = "memtis"
FUSION_PROCS = 4
FUSION_PAGES = 2_048

#: stepping-bound fleet config for the arena section: many small
#: processes at a fine 5 ms quantum (a 250 Hz kernel tick), kernel
#: daemons *live* at the testbed's realistic periods (5 s Ticking
#: scan, 1 s aging), fusion off in both modes.  The arena is never
#: quiesced -- scan, aging, migration, and reclaim windows all run
#: through the batched fleet passes -- so the arena-vs-per-process
#: gap is per-quantum stepping cost under real transient load.
ARENA_POLICY = "linux-nb"
ARENA_PROCS = 96
ARENA_PAGES = 256
ARENA_FAST_PAGES = 8_192
ARENA_SLOW_PAGES = 32_768
ARENA_SCAN_PERIOD_NS = 5 * SECOND
ARENA_AGING_PERIOD_NS = SECOND
ARENA_QUANTUM_NS = 5 * MILLISECOND
ARENA_DURATION_NS = 10 * SECOND

#: --quick floor on the arena-vs-per-process speedup: one batched
#: array program per quantum must beat the per-process loop by at
#: least this much at fleet scale, with the daemons live.
ARENA_SPEEDUP_FLOOR = 2.0

#: --quick arena-throughput floor, as a fraction of the committed
#: arena section's quanta/sec (host-speed jitter allowance).
ARENA_GATE_FRACTION = 0.5

#: shared-table fleet config for the class_dedup section: 1,024
#: compute-bound tenants (uniform 400-unit think time holds aggregate
#: demand below fast-tier saturation, so pricing reaches a steady
#: state instead of a contention limit cycle) sharing exactly 8
#: distinct distribution tables round-robin.  Interning collapses the
#: 1,024-segment fleet into 8 equivalence classes, so the interned-
#: vs-uninterned gap is the O(segments) -> O(unique-distributions)
#: pricing win.  Fusion is off in both modes and the daemons run at
#: the testbed's realistic periods (5 s Ticking scan, 10 s aging).
CLASS_DEDUP_POLICY = "linux-nb"
CLASS_DEDUP_TENANTS = 1_024
CLASS_DEDUP_PAGES = 256
CLASS_DEDUP_DISTINCT = 8
CLASS_DEDUP_BASE_DELAY = 400
CLASS_DEDUP_FAST_PAGES = 294_912
CLASS_DEDUP_SLOW_PAGES = 32_768
CLASS_DEDUP_SCAN_PERIOD_NS = 5 * SECOND
CLASS_DEDUP_AGING_PERIOD_NS = 10 * SECOND
CLASS_DEDUP_QUANTUM_NS = 5 * MILLISECOND
CLASS_DEDUP_DURATION_NS = 2 * SECOND

#: --quick floor on the interned-vs-uninterned speedup at the
#: class_dedup config: equivalence-class stepping must at least halve
#: per-quantum cost when 1,024 tenants share 8 tables (measured
#: headroom is ~2.5-6x across seeds; 2x tolerates the weakest seed).
CLASS_DEDUP_SPEEDUP_FLOOR = 2.0

#: --quick interned-throughput floor, as a fraction of the committed
#: class_dedup section's quanta per CPU-second (host-speed jitter
#: allowance).
CLASS_DEDUP_GATE_FRACTION = 0.5

#: trace-compiler throughput config: a known-phase synthetic event
#: stream (three rotating Zipf hotspots, one pid) pushed through the
#: chunked vectorized binner + change-point segmentation.  CPU time is
#: the clock (single-threaded numpy work, immune to scheduler noise).
TRACE_COMPILE_EVENTS = 2_000_000
TRACE_COMPILE_PAGES = 256
TRACE_COMPILE_PHASES = 3
TRACE_WINDOWS_PER_PHASE = 8

#: absolute floor on compile throughput: the compiler must ingest at
#: least a million events per CPU-second (measured headroom is ~7x).
TRACE_COMPILE_FLOOR = 1_000_000.0

#: --quick compile-throughput floor, as a fraction of the committed
#: trace section's events per CPU-second (host-speed jitter allowance).
TRACE_COMPILE_GATE_FRACTION = 0.5

#: replay config: the compiled three-phase trace replayed as one
#: process under a steady-state policy with fusion on vs off.  Each
#: phase is stable for ``TRACE_WINDOWS_PER_PHASE`` windows, so the
#: fused engine should cross most of every phase in macro-quanta.
TRACE_REPLAY_POLICY = "chrono"
TRACE_REPLAY_EVENTS = 200_000

#: floor on the fused replay's fusion ratio: a phase-stable compiled
#: trace that cannot fuse half its quanta is not riding the fast path.
TRACE_FUSION_RATIO_FLOOR = 0.5

#: fused-vs-per-quantum replay equivalence tolerance (the arena
#: suite's bound: rel 0.05, with the same 1e-4 FMAR absolute slack).
TRACE_EQUIV_TOLERANCE = 0.05

#: traffic-fleet config: 1,024 Zipf-popularity tenants from the fleet
#: traffic generator (shared pattern tables, diurnal load mapped onto
#: a geometric delay-bucket ladder), stationary roles only, stepped
#: through the arena with interning on vs off.  Same machine shape,
#: clock, and reasoning as the class_dedup section; the dedup here is
#: coarser (pattern x delay-bucket classes instead of 8 flat tables).
TRAFFIC_POLICY = "linux-nb"
TRAFFIC_TENANTS = 1_024
TRAFFIC_PAGES = 256
TRAFFIC_PATTERNS = 8
TRAFFIC_BASE_DELAY = 400
TRAFFIC_FAST_PAGES = 294_912
TRAFFIC_SLOW_PAGES = 32_768
TRAFFIC_SCAN_PERIOD_NS = 5 * SECOND
TRAFFIC_AGING_PERIOD_NS = 10 * SECOND
TRAFFIC_QUANTUM_NS = 5 * MILLISECOND
TRAFFIC_DURATION_NS = 2 * SECOND

#: --quick floor on the interned-vs-uninterned speedup at the traffic
#: config: interning must at least halve per-quantum cost when 1,024
#: generated tenants collapse into pattern x delay-bucket classes.
TRAFFIC_SPEEDUP_FLOOR = 2.0

#: --quick interned-throughput floor, as a fraction of the committed
#: trace section's traffic quanta per CPU-second.
TRAFFIC_GATE_FRACTION = 0.5

#: worker-pool sizes for the sweep throughput ladder
SWEEP_JOBS_LADDER = (1, 2, 4, 8)
SWEEP_POLICIES = ("linux-nb", "tpp", "memtis", "chrono")
SWEEP_SEEDS = (0, 1, 2, 3)

#: the full registered roster (Table 1 order) for the tournament
#: section: every policy on one phase-changing workload, timed
TOURNAMENT_POLICIES = (
    "linux-nb", "autotiering", "multiclock", "telescope", "tpp",
    "memtis", "flexmem", "nomad", "tierbpf", "arms", "jenga", "chrono",
)
TOURNAMENT_WORKLOAD = "shifting-hotspot"
TOURNAMENT_PROCS = 4
TOURNAMENT_PAGES = 2_048


def host_cpus() -> int:
    """CPUs usable by this process (affinity-aware) -- parallel speedup
    in the sweep ladder is bounded by this, so it is recorded alongside
    the numbers."""
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0))
        except OSError:
            pass
    return os.cpu_count() or 1


def git_head_sha():
    """HEAD's sha, or ``None`` outside a repo -- the key that decides
    whether a committed section is comparable to this checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def provenance() -> dict:
    """Where the numbers came from: committed benchmark JSONs are only
    comparable to runs from a similar host, so every payload records
    the git SHA, interpreter and numpy versions, the usable CPU count,
    and a timestamp."""
    return {
        "git_sha": git_head_sha(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "host_cpus": host_cpus(),
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
    }


def sweep_jobs_ladder() -> tuple:
    """The worker-pool ladder, capped at the host's usable CPUs.

    A rung wider than the machine cannot speed anything up -- it only
    times oversubscription churn (a committed jobs=8 rung from a 1-CPU
    host reads as a pool slowdown that is really scheduler thrash) --
    so rungs above ``host_cpus`` are dropped.  ``host_cpus`` is still
    recorded alongside the ladder so readers can judge the ceiling.
    """
    cpus = host_cpus()
    ladder = tuple(jobs for jobs in SWEEP_JOBS_LADDER if jobs <= cpus)
    return ladder or SWEEP_JOBS_LADDER[:1]

#: page-count ladder for the scaling sweep (pages per process; the
#: top rung is 10.5 M pages total across the two processes)
SCALING_SIZES = (
    4_096, 16_384, 65_536, 262_144, 1_048_576, 5_242_880
)
SCALING_PROCS = 2
SCALING_DURATION_NS = 4 * SECOND
#: max relative error between fast and reference paths, per size
SCALING_TOLERANCE = 0.02


def time_engine(setup, policy_name, workload_kwargs, fast_path, profile):
    policy = setup.build_policy(policy_name)
    processes = build_fleet(setup, "pmbench", **workload_kwargs)
    start = time.perf_counter()
    result = run_experiment(
        processes,
        policy,
        setup.run_config(),
        fast_path=fast_path,
        profile=profile,
    )
    wall = time.perf_counter() - start
    quanta = result.engine.quanta_run
    return {
        "wall_sec": wall,
        "quanta": quanta,
        "quanta_per_sec": quanta / wall if wall else 0.0,
        "throughput_per_sec": result.throughput_per_sec,
        "fmar": result.fmar,
        "profile": result.profile,
    }


def sweep_grid_cells(duration_ns, workload_kwargs, policies, seeds):
    """The (policy x seed) grid every ladder rung re-runs cold."""
    return [
        SweepCell(
            policy=name,
            workload="pmbench",
            seed=seed,
            workload_kwargs=dict(workload_kwargs),
            setup_kwargs={"duration_ns": duration_ns},
        )
        for seed in seeds
        for name in policies
    ]


def _reset_sweep_state():
    """Drop every warm layer so each rung times a truly cold run."""
    reset_table_cache()
    clear_memory_cache()


def time_sweep_rung(cells, jobs, shared_memory):
    """Time one cold run of the grid at one (jobs, shm) point."""
    _reset_sweep_state()
    start = time.perf_counter()
    run_cells(
        cells, jobs=jobs, use_cache=False, share_tables=shared_memory
    )
    wall = time.perf_counter() - start
    return {
        "jobs": jobs,
        "shared_memory": shared_memory,
        "wall_sec": wall,
        "cells_per_sec": len(cells) / wall if wall else 0.0,
    }


def time_sweep_ladder(duration_ns, workload_kwargs, policies, seeds):
    """Cold cells/sec across the jobs ladder, shm on and off.

    Every rung re-runs the same (policy x seed) grid with the result
    cache bypassed and the in-process table/memory caches cleared, so
    the only variables are the pool width and the table transport.
    ``speedup_vs_jobs1`` is relative to the jobs=1 rung with the same
    transport; parallel speedup is bounded by ``host_cpus``.
    """
    cells = sweep_grid_cells(duration_ns, workload_kwargs, policies, seeds)
    ladder = []
    base = {}
    for shared_memory in (True, False):
        for jobs in sweep_jobs_ladder():
            rung = time_sweep_rung(cells, jobs, shared_memory)
            if jobs == 1:
                base[shared_memory] = rung["cells_per_sec"]
            reference = base.get(shared_memory, 0.0)
            rung["speedup_vs_jobs1"] = (
                rung["cells_per_sec"] / reference if reference else 0.0
            )
            ladder.append(rung)
            print(
                f"    jobs={jobs} shm={'on ' if shared_memory else 'off'}"
                f" {rung['wall_sec']:6.2f}s wall, "
                f"{rung['cells_per_sec']:6.2f} cells/sec "
                f"({rung['speedup_vs_jobs1']:.2f}x vs jobs=1)"
            )
    return {
        "grid": {
            "workload": "pmbench",
            "policies": list(policies),
            "seeds": list(seeds),
            "n_cells": len(cells),
            "n_procs": workload_kwargs.get("n_procs"),
            "pages_per_proc": workload_kwargs.get("pages_per_proc"),
            "duration_sec": duration_ns / SECOND,
        },
        "host_cpus": host_cpus(),
        "ladder": ladder,
    }


def time_warm_vs_cold(duration_ns, n_procs, pages_per_proc):
    """Warm-pool table reuse vs per-cell rebuild on a reuse-heavy grid.

    Six policies on the same graph500 fleet (same seed) share one set
    of compiled workload tables.  ``cold`` empties the table cache
    before every cell -- the pre-warm-pool behaviour, where each worker
    process rebuilt its own tables -- while ``warm`` runs the same grid
    through ``run_cells`` at jobs=1 with the cache primed once.
    """
    policies = (
        "linux-nb", "autotiering", "tpp", "memtis", "multiclock", "chrono"
    )
    cells = [
        SweepCell(
            policy=name,
            workload="graph500",
            seed=0,
            workload_kwargs={
                "n_procs": n_procs, "pages_per_proc": pages_per_proc
            },
            setup_kwargs={"duration_ns": duration_ns},
        )
        for name in policies
    ]
    _reset_sweep_state()
    start = time.perf_counter()
    for cell in cells:
        reset_table_cache()
        run_cell(cell, use_cache=False)
    cold_wall = time.perf_counter() - start

    _reset_sweep_state()
    start = time.perf_counter()
    run_cells(cells, jobs=1, use_cache=False)
    warm_wall = time.perf_counter() - start
    return {
        "workload": "graph500",
        "n_cells": len(cells),
        "n_procs": n_procs,
        "pages_per_proc": pages_per_proc,
        "duration_sec": duration_ns / SECOND,
        "cold": {
            "wall_sec": cold_wall,
            "cells_per_sec": len(cells) / cold_wall if cold_wall else 0.0,
        },
        "warm": {
            "wall_sec": warm_wall,
            "cells_per_sec": len(cells) / warm_wall if warm_wall else 0.0,
        },
        "speedup": cold_wall / warm_wall if warm_wall else 0.0,
    }


def time_tournament(duration_ns):
    """Time the full registered-policy roster on one dynamic workload.

    One cold cell per Table 1 policy, all on the same phase-changing
    ``shifting-hotspot`` fleet and seed, run sequentially at jobs=1 so
    the per-policy walls are comparable.  This is the end-to-end cost
    of a cross-policy comparison run: per-policy wall seconds expose
    which policies dominate it, and aggregate cells/sec tracks the
    whole roster's throughput over time.
    """
    cells = [
        SweepCell(
            policy=name,
            workload=TOURNAMENT_WORKLOAD,
            seed=0,
            workload_kwargs={
                "n_procs": TOURNAMENT_PROCS,
                "pages_per_proc": TOURNAMENT_PAGES,
            },
            setup_kwargs={"duration_ns": duration_ns},
        )
        for name in TOURNAMENT_POLICIES
    ]
    _reset_sweep_state()
    rows = []
    start_all = time.perf_counter()
    for cell in cells:
        start = time.perf_counter()
        run_cell(cell, use_cache=False)
        rows.append({
            "policy": cell.policy,
            "wall_sec": time.perf_counter() - start,
        })
    wall = time.perf_counter() - start_all
    return {
        "workload": TOURNAMENT_WORKLOAD,
        "n_cells": len(cells),
        "n_procs": TOURNAMENT_PROCS,
        "pages_per_proc": TOURNAMENT_PAGES,
        "duration_sec": duration_ns / SECOND,
        "policies": rows,
        "wall_sec": wall,
        "cells_per_sec": len(cells) / wall if wall else 0.0,
    }


def print_tournament(section):
    slowest = max(section["policies"], key=lambda row: row["wall_sec"])
    print(
        f"  tournament ({section['n_cells']} policies x "
        f"{section['workload']}): {section['wall_sec']:.2f}s wall, "
        f"{section['cells_per_sec']:.2f} cells/sec "
        f"(slowest: {slowest['policy']} {slowest['wall_sec']:.2f}s)"
    )


def merge_stale_sections(payload, skipped, baseline_path, allow_stale):
    """Carry committed sections forward for the ones this run skipped.

    A committed section is only comparable to this run when it was
    produced by the code being benchmarked, so a baseline whose
    provenance sha differs from HEAD is *stale*: merging it silently
    would re-stamp old numbers under a new sha.  Stale merges are
    refused unless ``allow_stale`` is set, in which case the carried
    section is annotated with the sha and timestamp it came from.

    Returns ``False`` on refusal (the caller should not write the
    payload); missing baselines or missing sections just leave the
    skipped sections null.
    """
    if not skipped:
        return True
    try:
        baseline = json.loads(pathlib.Path(baseline_path).read_text())
    except (OSError, ValueError):
        print(
            f"  no committed baseline at {baseline_path}; skipped "
            f"sections stay null: {', '.join(skipped)}"
        )
        return True
    base_prov = baseline.get("provenance") or {}
    base_sha = base_prov.get("git_sha")
    head = git_head_sha()
    stale = base_sha is None or base_sha != head
    if stale and not allow_stale:
        print(
            f"  REFUSED: committed baseline was produced at "
            f"{(base_sha or 'unknown')[:12]} but HEAD is "
            f"{(head or 'unknown')[:12]}; skipped sections "
            f"({', '.join(skipped)}) cannot be merged.  Re-run them on "
            "a capable host, or pass --allow-stale to carry them "
            "forward with a staleness annotation"
        )
        return False
    for name in skipped:
        section = baseline.get(name)
        if section is None:
            print(f"  baseline has no '{name}' section; stays null")
            continue
        if stale:
            section = dict(section)
            section["merged_from"] = {
                "git_sha": base_sha,
                "timestamp": base_prov.get("timestamp"),
                "stale": True,
            }
        payload[name] = section
        origin = "stale baseline" if stale else "baseline at HEAD"
        print(f"  merged '{name}' section from {origin}")
    return True


def time_fusion(duration_ns, best_of=1):
    """Fused vs per-quantum stepping on the steady-state fusion config.

    Both runs share (policy, workload, seed); they differ only in the
    engine's ``fusion`` switch, so the quanta/sec gap is the cost of
    stepping every quantum through a steady-state stretch the fused
    engine crosses in one macro-quantum.  The simulation is
    deterministic per mode -- only wall time varies between repeats --
    so ``best_of > 1`` keeps each mode's fastest pass, which is the
    least-noise estimate on a loaded runner.
    """
    runs = {}
    for fusion in (True, False):
        best = None
        for _ in range(max(1, best_of)):
            setup = StandardSetup(duration_ns=duration_ns)
            policy = setup.build_policy(FUSION_POLICY)
            processes = build_fleet(
                setup, "pmbench",
                n_procs=FUSION_PROCS, pages_per_proc=FUSION_PAGES,
            )
            start = time.perf_counter()
            result = run_experiment(
                processes, policy, setup.run_config(fusion=fusion)
            )
            wall = time.perf_counter() - start
            if best is None or wall < best[0]:
                best = (wall, result)
        wall, result = best
        engine = result.engine
        runs["fused" if fusion else "per_quantum"] = {
            "wall_sec": wall,
            "quanta": engine.quanta_run,
            "steps": engine.steps_run,
            "fused_quanta": engine.fused_quanta,
            "quanta_per_sec": (
                engine.quanta_run / wall if wall else 0.0
            ),
            "fusion_ratio": (
                engine.fused_quanta / engine.quanta_run
                if engine.quanta_run else 0.0
            ),
            "throughput_per_sec": result.throughput_per_sec,
            "fmar": result.fmar,
        }
    per_quantum_qps = runs["per_quantum"]["quanta_per_sec"]
    return {
        "config": {
            "policy": FUSION_POLICY,
            "workload": "pmbench",
            "n_procs": FUSION_PROCS,
            "pages_per_proc": FUSION_PAGES,
            "duration_sec": duration_ns / SECOND,
        },
        "fused": runs["fused"],
        "per_quantum": runs["per_quantum"],
        "speedup": (
            runs["fused"]["quanta_per_sec"] / per_quantum_qps
            if per_quantum_qps else 0.0
        ),
    }


def arena_setup(duration_ns) -> StandardSetup:
    return StandardSetup(
        duration_ns=duration_ns,
        fast_pages=ARENA_FAST_PAGES,
        slow_pages=ARENA_SLOW_PAGES,
        scan_period_ns=ARENA_SCAN_PERIOD_NS,
        aging_period_ns=ARENA_AGING_PERIOD_NS,
        quantum_ns=ARENA_QUANTUM_NS,
    )


def time_arena(duration_ns=ARENA_DURATION_NS, best_of=3):
    """Arena vs per-process stepping on the stepping-bound fleet config.

    Both runs share (policy, workload, seed) and run with fusion off;
    they differ only in the engine's ``arena`` switch, so the
    quanta/sec gap is the cost of looping the per-process fast path
    over ``ARENA_PROCS`` processes versus one batched array program
    over the concatenated arena.  Deterministic per mode, so
    ``best_of`` keeps each mode's fastest pass (least-noise estimate
    on a loaded runner).
    """
    runs = {}
    for arena in (True, False):
        best = None
        for _ in range(max(1, best_of)):
            setup = arena_setup(duration_ns)
            policy = setup.build_policy(ARENA_POLICY)
            processes = build_fleet(
                setup, "pmbench",
                n_procs=ARENA_PROCS, pages_per_proc=ARENA_PAGES,
            )
            start = time.perf_counter()
            result = run_experiment(
                processes, policy,
                setup.run_config(arena=arena, fusion=False),
            )
            wall = time.perf_counter() - start
            if best is None or wall < best[0]:
                best = (wall, result)
        wall, result = best
        quanta = result.engine.quanta_run
        runs["arena" if arena else "per_process"] = {
            "wall_sec": wall,
            "quanta": quanta,
            "quanta_per_sec": quanta / wall if wall else 0.0,
            "throughput_per_sec": result.throughput_per_sec,
            "fmar": result.fmar,
        }
    reference_qps = runs["per_process"]["quanta_per_sec"]
    return {
        "config": {
            "policy": ARENA_POLICY,
            "workload": "pmbench",
            "n_procs": ARENA_PROCS,
            "pages_per_proc": ARENA_PAGES,
            "fast_pages": ARENA_FAST_PAGES,
            "slow_pages": ARENA_SLOW_PAGES,
            "scan_period_sec": ARENA_SCAN_PERIOD_NS / SECOND,
            "aging_period_sec": ARENA_AGING_PERIOD_NS / SECOND,
            "quantum_ms": ARENA_QUANTUM_NS / MILLISECOND,
            "duration_sec": duration_ns / SECOND,
            "fusion": False,
        },
        "arena": runs["arena"],
        "per_process": runs["per_process"],
        "equivalence": {
            "throughput_rel_err": rel_err(
                runs["arena"]["throughput_per_sec"],
                runs["per_process"]["throughput_per_sec"],
            ),
            "fmar_rel_err": rel_err(
                runs["arena"]["fmar"], runs["per_process"]["fmar"]
            ),
        },
        "speedup": (
            runs["arena"]["quanta_per_sec"] / reference_qps
            if reference_qps else 0.0
        ),
    }


def print_arena(section):
    arena = section["arena"]
    per_process = section["per_process"]
    print(
        f"  arena ({ARENA_POLICY}, pmbench x{ARENA_PROCS}, "
        "daemons live): "
        f"arena {arena['quanta_per_sec']:8.1f} q/s, "
        f"per-process {per_process['quanta_per_sec']:8.1f} q/s, "
        f"speedup {section['speedup']:.2f}x"
    )


def run_quick_arena_gate(baseline):
    """Arena stepping speedup and throughput vs the committed arena
    section.

    Two floors: the arena-vs-per-process speedup must clear
    ``ARENA_SPEEDUP_FLOOR`` (batched stepping pays for itself at fleet
    scale), and arena quanta/sec must stay above
    ``ARENA_GATE_FRACTION`` of the committed arena section.  A missing
    or pre-arena baseline skips the throughput comparison; the speedup
    floor always applies.  Returns ``(section, ok)``.
    """
    committed = None
    try:
        committed = float(baseline["arena"]["arena"]["quanta_per_sec"])
    except (KeyError, ValueError, TypeError):
        pass
    print(
        f"  arena gate: {ARENA_POLICY}, pmbench x{ARENA_PROCS}, "
        f"{ARENA_DURATION_NS / SECOND:.0f}s simulated, best of 3"
    )
    section = time_arena(best_of=3)
    print_arena(section)
    section["baseline_arena_quanta_per_sec"] = committed
    section["gate_fraction"] = ARENA_GATE_FRACTION
    section["speedup_floor"] = ARENA_SPEEDUP_FLOOR
    ok = True
    if section["speedup"] < ARENA_SPEEDUP_FLOOR:
        print(
            f"  FAIL: arena speedup {section['speedup']:.2f}x is below "
            f"the {ARENA_SPEEDUP_FLOOR:.1f}x floor"
        )
        ok = False
    if committed is None:
        print("  no committed arena section; throughput gate skipped")
        return section, ok
    floor = ARENA_GATE_FRACTION * committed
    measured = section["arena"]["quanta_per_sec"]
    print(
        f"  baseline: {committed:8.1f} arena quanta/sec "
        f"(floor {floor:.1f} = {ARENA_GATE_FRACTION:.0%})"
    )
    if measured < floor:
        print(
            f"  FAIL: {measured:.1f} arena quanta/sec is below the "
            f"{ARENA_GATE_FRACTION:.0%} arena regression floor"
        )
        ok = False
    elif ok:
        print("  arena gate passed")
    return section, ok


def class_dedup_setup(duration_ns) -> StandardSetup:
    return StandardSetup(
        duration_ns=duration_ns,
        fast_pages=CLASS_DEDUP_FAST_PAGES,
        slow_pages=CLASS_DEDUP_SLOW_PAGES,
        scan_period_ns=CLASS_DEDUP_SCAN_PERIOD_NS,
        aging_period_ns=CLASS_DEDUP_AGING_PERIOD_NS,
        quantum_ns=CLASS_DEDUP_QUANTUM_NS,
    )


def _class_dedup_run(duration_ns, intern, observer=None):
    """One class_dedup pass: build the stack by hand, time only
    ``engine.run``.

    Registration and initial placement of the 262 K-page fleet are a
    fixed per-run cost shared by both modes, so timing the whole
    ``run_experiment`` would dilute the stepping-path gap they differ
    on (the same reasoning as the scaling ladder's per-quantum
    metric).  CPU time (``time.process_time``) is the clock: the
    engine step is single-threaded, and CPU time is immune to the
    scheduler noise that wall clock picks up on shared runners.
    """
    setup = class_dedup_setup(duration_ns)
    config = setup.run_config(arena=True, fusion=False, intern=intern)
    policy = setup.build_policy(CLASS_DEDUP_POLICY)
    processes = build_fleet(
        setup, "multitenant",
        n_tenants=CLASS_DEDUP_TENANTS,
        pages_per_tenant=CLASS_DEDUP_PAGES,
        delay_step_units=0,
        n_distinct=CLASS_DEDUP_DISTINCT,
        base_delay_units=CLASS_DEDUP_BASE_DELAY,
    )
    kernel = Kernel(
        machine=config.build_machine(),
        rng=RngStreams(config.seed),
        aging_period_ns=config.aging_period_ns,
    )
    for process in processes:
        kernel.register_process(process)
    kernel.allocate_initial_placement()
    kernel.set_policy(policy)
    engine = QuantumEngine(
        kernel,
        quantum_ns=config.quantum_ns,
        fusion=False,
        arena=True,
        intern=intern,
    )
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    end_ns = engine.run(
        config.duration_ns,
        observer=observer,
        observe_every_ns=config.duration_ns,
    )
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - wall_start
    result = summarize_run(policy, kernel, engine, end_ns)
    return cpu, wall, engine.quanta_run, result


def time_class_dedup(duration_ns=CLASS_DEDUP_DURATION_NS, best_of=3):
    """Interned vs uninterned arena stepping on the shared-table fleet.

    Both runs share (policy, workload, seed, arena stepping, fusion
    off); they differ only in the engine's ``intern`` switch, so the
    quanta-per-CPU-second gap is the cost of pricing 1,024 segments
    individually versus pricing 8 equivalence classes and fanning the
    results out.  A discarded warm-up pass absorbs one-time costs
    (distribution-table compilation, numpy dispatch warm-up) that
    would otherwise land on whichever mode runs first, and the
    ``best_of`` trials interleave the two modes so slow stretches of a
    loaded runner hit both equally.
    """
    intern_stats = {}

    def observer(eng, _now):
        arena = eng._arena
        if arena is not None and arena.intern:
            intern_stats["n_classes"] = arena.n_classes
            intern_stats["interned_segments"] = arena.interned_segments

    _class_dedup_run(duration_ns, intern=True, observer=observer)

    best = {True: None, False: None}
    results = {}
    for _ in range(max(1, best_of)):
        for intern in (True, False):
            cpu, wall, quanta, result = _class_dedup_run(
                duration_ns, intern=intern, observer=observer
            )
            if best[intern] is None or cpu < best[intern][0]:
                best[intern] = (cpu, wall, quanta)
                results[intern] = result
    runs = {}
    for intern, key in ((True, "interned"), (False, "reference")):
        cpu, wall, quanta = best[intern]
        result = results[intern]
        runs[key] = {
            "cpu_sec": cpu,
            "wall_sec": wall,
            "quanta": quanta,
            "quanta_per_cpu_sec": quanta / cpu if cpu else 0.0,
            "throughput_per_sec": result.throughput_per_sec,
            "fmar": result.fmar,
        }
    reference_qps = runs["reference"]["quanta_per_cpu_sec"]
    return {
        "config": {
            "policy": CLASS_DEDUP_POLICY,
            "workload": "multitenant",
            "n_tenants": CLASS_DEDUP_TENANTS,
            "pages_per_tenant": CLASS_DEDUP_PAGES,
            "n_distinct": CLASS_DEDUP_DISTINCT,
            "base_delay_units": CLASS_DEDUP_BASE_DELAY,
            "delay_step_units": 0,
            "fast_pages": CLASS_DEDUP_FAST_PAGES,
            "slow_pages": CLASS_DEDUP_SLOW_PAGES,
            "scan_period_sec": CLASS_DEDUP_SCAN_PERIOD_NS / SECOND,
            "aging_period_sec": CLASS_DEDUP_AGING_PERIOD_NS / SECOND,
            "quantum_ms": CLASS_DEDUP_QUANTUM_NS / MILLISECOND,
            "duration_sec": duration_ns / SECOND,
            "fusion": False,
            "timing": "engine.run only, process CPU time",
        },
        "interned": runs["interned"],
        "reference": runs["reference"],
        "n_classes": intern_stats.get("n_classes"),
        "interned_segments": intern_stats.get("interned_segments"),
        "equivalence": {
            "throughput_rel_err": rel_err(
                runs["interned"]["throughput_per_sec"],
                runs["reference"]["throughput_per_sec"],
            ),
            "fmar_rel_err": rel_err(
                runs["interned"]["fmar"], runs["reference"]["fmar"]
            ),
        },
        "speedup": (
            runs["interned"]["quanta_per_cpu_sec"] / reference_qps
            if reference_qps else 0.0
        ),
    }


def print_class_dedup(section):
    interned = section["interned"]
    reference = section["reference"]
    print(
        f"  class dedup ({CLASS_DEDUP_POLICY}, multitenant "
        f"x{CLASS_DEDUP_TENANTS}, {section['n_classes']} classes): "
        f"interned {interned['quanta_per_cpu_sec']:8.1f} q/cpu-s, "
        f"uninterned {reference['quanta_per_cpu_sec']:8.1f} q/cpu-s, "
        f"speedup {section['speedup']:.2f}x"
    )


def run_quick_class_dedup_gate(baseline):
    """Interning speedup and throughput vs the committed class_dedup
    section.

    Two floors: the interned-vs-uninterned speedup must clear
    ``CLASS_DEDUP_SPEEDUP_FLOOR`` (equivalence-class stepping pays for
    itself when 1,024 tenants share 8 tables), and interned quanta per
    CPU-second must stay above ``CLASS_DEDUP_GATE_FRACTION`` of the
    committed class_dedup section.  A missing or pre-interning
    baseline skips the throughput comparison; the speedup floor always
    applies.  Returns ``(section, ok)``.
    """
    committed = None
    try:
        committed = float(
            baseline["class_dedup"]["interned"]["quanta_per_cpu_sec"]
        )
    except (KeyError, ValueError, TypeError):
        pass
    print(
        f"  class dedup gate: {CLASS_DEDUP_POLICY}, multitenant "
        f"x{CLASS_DEDUP_TENANTS} sharing {CLASS_DEDUP_DISTINCT} "
        f"tables, {CLASS_DEDUP_DURATION_NS / SECOND:.0f}s simulated, "
        "best of 3"
    )
    section = time_class_dedup(best_of=3)
    print_class_dedup(section)
    section["baseline_interned_quanta_per_cpu_sec"] = committed
    section["gate_fraction"] = CLASS_DEDUP_GATE_FRACTION
    section["speedup_floor"] = CLASS_DEDUP_SPEEDUP_FLOOR
    ok = True
    if section["speedup"] < CLASS_DEDUP_SPEEDUP_FLOOR:
        print(
            f"  FAIL: interning speedup {section['speedup']:.2f}x is "
            f"below the {CLASS_DEDUP_SPEEDUP_FLOOR:.1f}x floor"
        )
        ok = False
    if committed is None:
        print(
            "  no committed class_dedup section; throughput gate "
            "skipped"
        )
        return section, ok
    floor = CLASS_DEDUP_GATE_FRACTION * committed
    measured = section["interned"]["quanta_per_cpu_sec"]
    print(
        f"  baseline: {committed:8.1f} interned quanta/cpu-sec "
        f"(floor {floor:.1f} = {CLASS_DEDUP_GATE_FRACTION:.0%})"
    )
    if measured < floor:
        print(
            f"  FAIL: {measured:.1f} interned quanta/cpu-sec is below "
            f"the {CLASS_DEDUP_GATE_FRACTION:.0%} class dedup "
            "regression floor"
        )
        ok = False
    elif ok:
        print("  class dedup gate passed")
    return section, ok


def time_trace_compile():
    """Compile throughput on the known-phase synthetic event stream.

    The chunks are materialized first so only the compiler itself --
    chunked binning plus change-point segmentation -- is on the clock.
    CPU time is the clock for the same reason as the class_dedup
    section: the binner is single-threaded numpy work, and CPU time is
    immune to scheduler noise on shared runners.
    """
    chunks = list(synthetic_event_stream(
        TRACE_COMPILE_EVENTS,
        n_pages=TRACE_COMPILE_PAGES,
        n_phases=TRACE_COMPILE_PHASES,
        windows_per_phase=TRACE_WINDOWS_PER_PHASE,
    ))
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    compiled = compile_event_stream(chunks, n_pages=TRACE_COMPILE_PAGES)
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - wall_start
    trace = compiled[0]
    return {
        "n_events": TRACE_COMPILE_EVENTS,
        "n_pages": TRACE_COMPILE_PAGES,
        "n_windows": trace.n_windows,
        "n_phases_expected": TRACE_COMPILE_PHASES,
        "n_phases_detected": trace.n_phases,
        "cpu_sec": cpu,
        "wall_sec": wall,
        "events_per_cpu_sec": (
            TRACE_COMPILE_EVENTS / cpu if cpu else 0.0
        ),
        "events_per_sec": (
            TRACE_COMPILE_EVENTS / wall if wall else 0.0
        ),
    }


def _trace_replay_run(trace, fusion):
    """Replay one compiled trace for one full cycle, fusion on or off."""
    setup = StandardSetup(duration_ns=trace.total_ns)
    policy = setup.build_policy(TRACE_REPLAY_POLICY)
    streams = RngStreams(setup.seed)
    processes = [
        SimProcess(
            pid=0,
            workload=trace.to_workload(),
            rng=streams.spawn("replay-0").get("access"),
            name="replay-0",
        )
    ]
    start = time.perf_counter()
    result = run_experiment(
        processes, policy, setup.run_config(fusion=fusion)
    )
    wall = time.perf_counter() - start
    engine = result.engine
    return {
        "wall_sec": wall,
        "quanta": engine.quanta_run,
        "fused_quanta": engine.fused_quanta,
        "quanta_per_sec": (
            engine.quanta_run / wall if wall else 0.0
        ),
        "fusion_ratio": (
            engine.fused_quanta / engine.quanta_run
            if engine.quanta_run else 0.0
        ),
        "throughput_per_sec": result.throughput_per_sec,
        "fmar": result.fmar,
    }


def time_trace_replay(best_of=1):
    """Fused vs per-quantum replay of the compiled three-phase trace.

    The trace is compiled once and both modes replay the identical
    phase tables, so the fused run's fusion ratio measures how much of
    a phase-stable compiled trace the engine crosses in macro-quanta,
    and the fused-vs-per-quantum rel errors are the replay-fidelity
    check at the arena suite's tolerance.
    """
    trace = compile_event_stream(
        synthetic_event_stream(
            TRACE_REPLAY_EVENTS,
            n_pages=TRACE_COMPILE_PAGES,
            n_phases=TRACE_COMPILE_PHASES,
            windows_per_phase=TRACE_WINDOWS_PER_PHASE,
        ),
        n_pages=TRACE_COMPILE_PAGES,
    )[0]
    runs = {}
    for fusion in (True, False):
        best = None
        for _ in range(max(1, best_of)):
            run = _trace_replay_run(trace, fusion)
            if best is None or run["wall_sec"] < best["wall_sec"]:
                best = run
        runs["fused" if fusion else "per_quantum"] = best
    fused = runs["fused"]
    per_quantum = runs["per_quantum"]
    throughput_err = rel_err(
        fused["throughput_per_sec"], per_quantum["throughput_per_sec"]
    )
    fmar_err = rel_err(fused["fmar"], per_quantum["fmar"])
    equivalent = throughput_err <= TRACE_EQUIV_TOLERANCE and (
        fmar_err <= TRACE_EQUIV_TOLERANCE
        or abs(fused["fmar"] - per_quantum["fmar"]) <= 1e-4
    )
    per_quantum_qps = per_quantum["quanta_per_sec"]
    return {
        "trace": {
            "n_events": trace.n_events,
            "n_windows": trace.n_windows,
            "n_idle_windows": trace.n_idle_windows,
            "n_phases": trace.n_phases,
            "n_pages": trace.n_pages,
            "cycle_sec": trace.total_ns / SECOND,
        },
        "policy": TRACE_REPLAY_POLICY,
        "fused": fused,
        "per_quantum": per_quantum,
        "speedup": (
            fused["quanta_per_sec"] / per_quantum_qps
            if per_quantum_qps else 0.0
        ),
        "equivalence": {
            "throughput_rel_err": throughput_err,
            "fmar_rel_err": fmar_err,
            "tolerance": TRACE_EQUIV_TOLERANCE,
            "ok": equivalent,
        },
    }


def traffic_setup(duration_ns) -> StandardSetup:
    return StandardSetup(
        duration_ns=duration_ns,
        fast_pages=TRAFFIC_FAST_PAGES,
        slow_pages=TRAFFIC_SLOW_PAGES,
        scan_period_ns=TRAFFIC_SCAN_PERIOD_NS,
        aging_period_ns=TRAFFIC_AGING_PERIOD_NS,
        quantum_ns=TRAFFIC_QUANTUM_NS,
    )


def _traffic_run(duration_ns, intern, observer=None):
    """One traffic-fleet pass: the ``_class_dedup_run`` stack (hand
    built, only ``engine.run`` on the process-CPU clock) with the
    generated tenant fleet in place of the flat multitenant one."""
    setup = traffic_setup(duration_ns)
    config = setup.run_config(arena=True, fusion=False, intern=intern)
    policy = setup.build_policy(TRAFFIC_POLICY)
    processes = build_fleet(
        setup, "traffic",
        n_tenants=TRAFFIC_TENANTS,
        pages_per_tenant=TRAFFIC_PAGES,
        n_patterns=TRAFFIC_PATTERNS,
        base_delay_units=TRAFFIC_BASE_DELAY,
    )
    kernel = Kernel(
        machine=config.build_machine(),
        rng=RngStreams(config.seed),
        aging_period_ns=config.aging_period_ns,
    )
    for process in processes:
        kernel.register_process(process)
    kernel.allocate_initial_placement()
    kernel.set_policy(policy)
    engine = QuantumEngine(
        kernel,
        quantum_ns=config.quantum_ns,
        fusion=False,
        arena=True,
        intern=intern,
    )
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    end_ns = engine.run(
        config.duration_ns,
        observer=observer,
        observe_every_ns=config.duration_ns,
    )
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - wall_start
    result = summarize_run(policy, kernel, engine, end_ns)
    return cpu, wall, engine.quanta_run, result


def time_trace_traffic(duration_ns=TRAFFIC_DURATION_NS, best_of=3):
    """Interned vs uninterned arena stepping on the traffic fleet.

    The same discarded-warm-up + interleaved best-of protocol as
    ``time_class_dedup``; the difference is the fleet.  Here the 1,024
    tenants come out of the traffic generator -- Zipf popularity,
    diurnal load on a delay-bucket ladder, shared pattern tables -- so
    the equivalence classes are emergent (pattern x delay bucket)
    rather than scripted, and the speedup shows interning paying off
    on generated fleet structure, not just on a hand-shared table set.
    """
    intern_stats = {}

    def observer(eng, _now):
        arena = eng._arena
        if arena is not None and arena.intern:
            intern_stats["n_classes"] = arena.n_classes
            intern_stats["interned_segments"] = arena.interned_segments

    _traffic_run(duration_ns, intern=True, observer=observer)

    best = {True: None, False: None}
    results = {}
    for _ in range(max(1, best_of)):
        for intern in (True, False):
            cpu, wall, quanta, result = _traffic_run(
                duration_ns, intern=intern, observer=observer
            )
            if best[intern] is None or cpu < best[intern][0]:
                best[intern] = (cpu, wall, quanta)
                results[intern] = result
    runs = {}
    for intern, key in ((True, "interned"), (False, "reference")):
        cpu, wall, quanta = best[intern]
        result = results[intern]
        runs[key] = {
            "cpu_sec": cpu,
            "wall_sec": wall,
            "quanta": quanta,
            "quanta_per_cpu_sec": quanta / cpu if cpu else 0.0,
            "throughput_per_sec": result.throughput_per_sec,
            "fmar": result.fmar,
        }
    reference_qps = runs["reference"]["quanta_per_cpu_sec"]
    return {
        "config": {
            "policy": TRAFFIC_POLICY,
            "workload": "traffic",
            "n_tenants": TRAFFIC_TENANTS,
            "pages_per_tenant": TRAFFIC_PAGES,
            "n_patterns": TRAFFIC_PATTERNS,
            "base_delay_units": TRAFFIC_BASE_DELAY,
            "fast_pages": TRAFFIC_FAST_PAGES,
            "slow_pages": TRAFFIC_SLOW_PAGES,
            "scan_period_sec": TRAFFIC_SCAN_PERIOD_NS / SECOND,
            "aging_period_sec": TRAFFIC_AGING_PERIOD_NS / SECOND,
            "quantum_ms": TRAFFIC_QUANTUM_NS / MILLISECOND,
            "duration_sec": duration_ns / SECOND,
            "fusion": False,
            "timing": "engine.run only, process CPU time",
        },
        "interned": runs["interned"],
        "reference": runs["reference"],
        "n_classes": intern_stats.get("n_classes"),
        "interned_segments": intern_stats.get("interned_segments"),
        "equivalence": {
            "throughput_rel_err": rel_err(
                runs["interned"]["throughput_per_sec"],
                runs["reference"]["throughput_per_sec"],
            ),
            "fmar_rel_err": rel_err(
                runs["interned"]["fmar"], runs["reference"]["fmar"]
            ),
        },
        "speedup": (
            runs["interned"]["quanta_per_cpu_sec"] / reference_qps
            if reference_qps else 0.0
        ),
    }


def time_trace(best_of=3):
    """The whole trace section: compile, replay, traffic fleet."""
    return {
        "compile": time_trace_compile(),
        "replay": time_trace_replay(),
        "traffic": time_trace_traffic(best_of=best_of),
    }


def print_trace(section):
    comp = section["compile"]
    print(
        f"  trace compile: {comp['events_per_cpu_sec'] / 1e6:8.2f}M "
        f"events/cpu-sec ({comp['n_events']:,d} events, "
        f"{comp['n_phases_detected']}/{comp['n_phases_expected']} "
        "phases detected)"
    )
    replay = section["replay"]
    fused = replay["fused"]
    equiv = replay["equivalence"]
    print(
        f"  trace replay ({TRACE_REPLAY_POLICY}, "
        f"{replay['trace']['n_phases']} phases): "
        f"fused {fused['quanta_per_sec']:8.1f} q/s "
        f"({fused['fusion_ratio']:.0%} of quanta fused), "
        f"speedup {replay['speedup']:.2f}x, "
        f"fidelity={'ok' if equiv['ok'] else 'FAIL'}"
    )
    traffic = section["traffic"]
    interned = traffic["interned"]
    reference = traffic["reference"]
    print(
        f"  traffic fleet ({TRAFFIC_POLICY}, "
        f"x{TRAFFIC_TENANTS}, {traffic['n_classes']} classes): "
        f"interned {interned['quanta_per_cpu_sec']:8.1f} q/cpu-s, "
        f"uninterned {reference['quanta_per_cpu_sec']:8.1f} q/cpu-s, "
        f"speedup {traffic['speedup']:.2f}x"
    )


def run_quick_trace_gate(baseline):
    """Trace compile, replay, and traffic floors vs the committed
    trace section.

    Five floors: compile throughput must clear ``TRACE_COMPILE_FLOOR``
    events per CPU-second absolutely and
    ``TRACE_COMPILE_GATE_FRACTION`` of the committed section; the
    fused replay's fusion ratio must clear
    ``TRACE_FUSION_RATIO_FLOOR`` and its fused-vs-per-quantum rel
    errors must stay inside ``TRACE_EQUIV_TOLERANCE``; and the traffic
    fleet's interning speedup must clear ``TRAFFIC_SPEEDUP_FLOOR``
    (with interned quanta per CPU-second above
    ``TRAFFIC_GATE_FRACTION`` of the committed section).  A missing or
    pre-trace baseline skips the two committed-value comparisons; the
    absolute floors always apply.  Returns ``(section, ok)``.
    """
    committed_compile = None
    committed_traffic = None
    try:
        committed_compile = float(
            baseline["trace"]["compile"]["events_per_cpu_sec"]
        )
    except (KeyError, ValueError, TypeError):
        pass
    try:
        committed_traffic = float(
            baseline["trace"]["traffic"]["interned"]["quanta_per_cpu_sec"]
        )
    except (KeyError, ValueError, TypeError):
        pass
    print(
        f"  trace gate: compile {TRACE_COMPILE_EVENTS:,d} events, "
        f"replay {TRACE_REPLAY_POLICY}, traffic x{TRAFFIC_TENANTS}, "
        "best of 3"
    )
    section = time_trace(best_of=3)
    print_trace(section)
    section["compile"]["floor_events_per_cpu_sec"] = TRACE_COMPILE_FLOOR
    section["compile"]["baseline_events_per_cpu_sec"] = committed_compile
    section["compile"]["gate_fraction"] = TRACE_COMPILE_GATE_FRACTION
    section["replay"]["fusion_ratio_floor"] = TRACE_FUSION_RATIO_FLOOR
    section["traffic"]["baseline_interned_quanta_per_cpu_sec"] = (
        committed_traffic
    )
    section["traffic"]["gate_fraction"] = TRAFFIC_GATE_FRACTION
    section["traffic"]["speedup_floor"] = TRAFFIC_SPEEDUP_FLOOR
    ok = True
    measured_compile = section["compile"]["events_per_cpu_sec"]
    if measured_compile < TRACE_COMPILE_FLOOR:
        print(
            f"  FAIL: compile throughput "
            f"{measured_compile / 1e6:.2f}M events/cpu-sec is below "
            f"the {TRACE_COMPILE_FLOOR / 1e6:.0f}M floor"
        )
        ok = False
    if committed_compile is not None:
        floor = TRACE_COMPILE_GATE_FRACTION * committed_compile
        if measured_compile < floor:
            print(
                f"  FAIL: compile throughput "
                f"{measured_compile / 1e6:.2f}M events/cpu-sec is "
                f"below the {TRACE_COMPILE_GATE_FRACTION:.0%} "
                "regression floor"
            )
            ok = False
    ratio = section["replay"]["fused"]["fusion_ratio"]
    if ratio < TRACE_FUSION_RATIO_FLOOR:
        print(
            f"  FAIL: replay fusion ratio {ratio:.0%} is below the "
            f"{TRACE_FUSION_RATIO_FLOOR:.0%} floor"
        )
        ok = False
    if not section["replay"]["equivalence"]["ok"]:
        print(
            "  FAIL: fused replay is not statistically equivalent to "
            "the per-quantum replay"
        )
        ok = False
    if section["traffic"]["speedup"] < TRAFFIC_SPEEDUP_FLOOR:
        print(
            "  FAIL: traffic interning speedup "
            f"{section['traffic']['speedup']:.2f}x is below the "
            f"{TRAFFIC_SPEEDUP_FLOOR:.1f}x floor"
        )
        ok = False
    if committed_traffic is not None:
        floor = TRAFFIC_GATE_FRACTION * committed_traffic
        measured = section["traffic"]["interned"]["quanta_per_cpu_sec"]
        if measured < floor:
            print(
                f"  FAIL: {measured:.1f} interned traffic "
                "quanta/cpu-sec is below the "
                f"{TRAFFIC_GATE_FRACTION:.0%} regression floor"
            )
            ok = False
    if committed_compile is None or committed_traffic is None:
        print(
            "  no committed trace section; committed-value "
            "comparisons skipped"
        )
    if ok:
        print("  trace gate passed")
    return section, ok


def print_fusion(section):
    fused = section["fused"]
    per_quantum = section["per_quantum"]
    print(
        f"  fusion ({FUSION_POLICY}, pmbench x{FUSION_PROCS}): "
        f"fused {fused['quanta_per_sec']:8.1f} q/s "
        f"({fused['fusion_ratio']:.0%} of quanta fused), "
        f"per-quantum {per_quantum['quanta_per_sec']:8.1f} q/s, "
        f"speedup {section['speedup']:.2f}x"
    )


def scaling_setup(pages_per_proc: int) -> StandardSetup:
    """The ladder setup for one rung of the scaling sweep.

    Capacity tracks the footprint (fast tier = 25% of total pages, the
    paper's ratio), and the background scan / DCSC probe *bandwidths*
    are held constant by scaling their periods with the footprint --
    a 60 s kernel scan period covers the address space once regardless
    of its size, so pages-scanned-per-second is the invariant, not the
    period.  The aging period stays fixed: aging (and the accounting
    flush it forces) is the one deliberately amortized O(pages) pass.
    """
    scale = pages_per_proc // SCALING_SIZES[0]
    total = SCALING_PROCS * pages_per_proc
    return StandardSetup(
        fast_pages=total // 4,
        slow_pages=total,
        duration_ns=SCALING_DURATION_NS,
        scan_period_ns=5 * SECOND * scale,
        dcsc_probe_period_ns=(SECOND // 2) * scale,
        dcsc_probe_timeout_ns=4 * SECOND * scale,
    )


def time_scaling_run(policy_name, pages_per_proc, fast_path):
    """Time ``engine.run`` only -- steady-state cost, no setup noise.

    Building the kernel, allocating initial placement, and attaching
    the policy are one-time O(pages) work; the scaling story is about
    the per-quantum cost, so the clock starts at the engine.
    """
    setup = scaling_setup(pages_per_proc)
    policy = setup.build_policy(policy_name)
    processes = build_fleet(
        setup, "pmbench",
        n_procs=SCALING_PROCS, pages_per_proc=pages_per_proc,
    )
    config = setup.run_config()
    kernel = Kernel(
        machine=config.build_machine(),
        rng=RngStreams(config.seed),
        aging_period_ns=config.aging_period_ns,
    )
    for process in processes:
        kernel.register_process(process)
    kernel.allocate_initial_placement()
    kernel.set_policy(policy)
    engine = QuantumEngine(
        kernel, quantum_ns=config.quantum_ns, fast_path=fast_path
    )
    start = time.perf_counter()
    end_ns = engine.run(config.duration_ns)
    wall = time.perf_counter() - start
    result = summarize_run(policy, kernel, engine, end_ns)
    quanta = engine.quanta_run
    total_pages = SCALING_PROCS * pages_per_proc
    return {
        "wall_sec": wall,
        "quanta": quanta,
        "quanta_per_sec": quanta / wall if wall else 0.0,
        "ns_per_page_quantum": (
            wall * 1e9 / (quanta * total_pages) if quanta else 0.0
        ),
        "throughput_per_sec": result.throughput_per_sec,
        "fmar": result.fmar,
    }


def rel_err(value: float, reference: float) -> float:
    if reference == 0.0:
        return abs(value)
    return abs(value - reference) / abs(reference)


def run_scaling(policy_name):
    """The page-count ladder: fast vs reference at every rung.

    Returns ``(section, ok)``; ``ok`` is False when any rung fails the
    fast-vs-reference equivalence tolerance or the largest rung's
    ns/page/quantum is not below the smallest's (the sublinearity
    gate).
    """
    print(
        f"  scaling ladder: {policy_name}, pmbench x{SCALING_PROCS}, "
        f"{SCALING_DURATION_NS / SECOND:.0f}s simulated per rung"
    )
    rungs = []
    ok = True
    for pages in SCALING_SIZES:
        fast = time_scaling_run(policy_name, pages, fast_path=True)
        reference = time_scaling_run(policy_name, pages, fast_path=False)
        throughput_err = rel_err(
            fast["throughput_per_sec"], reference["throughput_per_sec"]
        )
        fmar_err = rel_err(fast["fmar"], reference["fmar"])
        equivalent = (
            throughput_err <= SCALING_TOLERANCE
            and fmar_err <= SCALING_TOLERANCE
        )
        ok = ok and equivalent
        rungs.append({
            "pages_per_proc": pages,
            "total_pages": SCALING_PROCS * pages,
            "fast": fast,
            "reference": reference,
            "equivalence": {
                "throughput_rel_err": throughput_err,
                "fmar_rel_err": fmar_err,
                "tolerance": SCALING_TOLERANCE,
                "ok": equivalent,
            },
        })
        print(
            f"    {pages:>9,d} pages/proc: "
            f"fast {fast['ns_per_page_quantum']:7.2f} ns/page/q "
            f"({fast['quanta_per_sec']:8.1f} q/s), "
            f"ref {reference['ns_per_page_quantum']:7.2f} ns/page/q, "
            f"equiv={'ok' if equivalent else 'FAIL'}"
        )
    sublinear = (
        rungs[-1]["fast"]["ns_per_page_quantum"]
        < rungs[0]["fast"]["ns_per_page_quantum"]
    )
    ok = ok and sublinear
    print(
        "    sublinear ns/page/quantum: "
        f"{'ok' if sublinear else 'FAIL'} "
        f"({rungs[0]['fast']['ns_per_page_quantum']:.2f} at "
        f"{SCALING_SIZES[0]:,d} -> "
        f"{rungs[-1]['fast']['ns_per_page_quantum']:.2f} at "
        f"{SCALING_SIZES[-1]:,d})"
    )
    section = {
        "n_procs": SCALING_PROCS,
        "duration_sec": SCALING_DURATION_NS / SECOND,
        "tolerance": SCALING_TOLERANCE,
        "sizes": rungs,
        "sublinear_ok": sublinear,
    }
    return section, ok


def _sweep_baseline(baseline, jobs):
    """The committed shm-on ladder rung at ``jobs``, or ``None`` if the
    baseline predates the sweep-ladder schema or lacks the rung."""
    try:
        grid = baseline["sweep"]["grid"]
        for rung in baseline["sweep"]["ladder"]:
            if rung["jobs"] == jobs and rung["shared_memory"]:
                return grid, float(rung["cells_per_sec"])
    except (KeyError, ValueError, TypeError):
        pass
    return None, None


def run_quick_sweep_gate(baseline):
    """Cold sweep throughput vs the committed ladder rung.

    The gate rung is jobs=2 capped at ``host_cpus`` (a 1-CPU runner
    gates at jobs=1 against the committed jobs=1 rung).  Returns
    ``(section, ok)``; a missing or pre-ladder baseline skips the gate
    (``ok`` stays True) but still reports the measurement.
    """
    gate_jobs = min(2, host_cpus())
    grid, committed = (None, None)
    if baseline is not None:
        grid, committed = _sweep_baseline(baseline, gate_jobs)
    if grid is None:
        grid = {
            "policies": list(SWEEP_POLICIES),
            "seeds": list(SWEEP_SEEDS),
            "n_procs": 8,
            "pages_per_proc": 4_096,
            "duration_sec": 1.25,
        }
    cells = sweep_grid_cells(
        int(grid["duration_sec"] * SECOND),
        {
            "n_procs": grid["n_procs"],
            "pages_per_proc": grid["pages_per_proc"],
        },
        grid["policies"],
        grid["seeds"],
    )
    print(
        f"  sweep gate: {len(cells)} cells at jobs={gate_jobs}, shm on "
        f"({host_cpus()} host cpus)"
    )
    rung = time_sweep_rung(cells, jobs=gate_jobs, shared_memory=True)
    measured = rung["cells_per_sec"]
    print(f"  measured: {measured:8.2f} cells/sec")
    section = {
        "grid": grid,
        "host_cpus": host_cpus(),
        "gate_jobs": gate_jobs,
        "measured": rung,
        "baseline_cells_per_sec": committed,
        "gate_fraction": SWEEP_GATE_FRACTION,
    }
    if committed is None:
        print("  no committed sweep ladder; sweep gate skipped")
        return section, True
    floor = SWEEP_GATE_FRACTION * committed
    print(
        f"  baseline: {committed:8.2f} cells/sec "
        f"(floor {floor:.2f} = {SWEEP_GATE_FRACTION:.0%})"
    )
    if measured < floor:
        print(
            f"  FAIL: {measured:.2f} cells/sec is below the "
            f"{SWEEP_GATE_FRACTION:.0%} sweep regression floor"
        )
        return section, False
    print("  sweep gate passed")
    return section, True


def run_quick_fusion_gate(baseline, duration_ns):
    """Fused steady-state throughput and speedup vs the committed
    fusion section.

    Two floors: the fused-vs-per-quantum speedup must clear
    ``FUSION_SPEEDUP_FLOOR`` (fusion pays for itself), and fused
    quanta/sec must stay above ``FUSION_GATE_FRACTION`` of the
    committed fusion section.  A missing or pre-fusion baseline skips
    the throughput comparison; the speedup floor always applies.
    Returns ``(section, ok)``.
    """
    committed = None
    try:
        committed = float(baseline["fusion"]["fused"]["quanta_per_sec"])
    except (KeyError, ValueError, TypeError):
        pass
    print(
        f"  fusion gate: {FUSION_POLICY}, pmbench x{FUSION_PROCS}, "
        f"{duration_ns / SECOND:.0f}s simulated, best of 3"
    )
    # Best-of-3: the speedup is a ratio of two wall timings, so a
    # single noisy pass on a loaded 1-core runner can flip the gate.
    section = time_fusion(duration_ns, best_of=3)
    print_fusion(section)
    section["baseline_fused_quanta_per_sec"] = committed
    section["gate_fraction"] = FUSION_GATE_FRACTION
    section["speedup_floor"] = FUSION_SPEEDUP_FLOOR
    ok = True
    if section["speedup"] < FUSION_SPEEDUP_FLOOR:
        print(
            f"  FAIL: fused speedup {section['speedup']:.2f}x is below "
            f"the {FUSION_SPEEDUP_FLOOR:.1f}x floor"
        )
        ok = False
    if committed is None:
        print("  no committed fusion section; throughput gate skipped")
        return section, ok
    floor = FUSION_GATE_FRACTION * committed
    measured = section["fused"]["quanta_per_sec"]
    print(
        f"  baseline: {committed:8.1f} fused quanta/sec "
        f"(floor {floor:.1f} = {FUSION_GATE_FRACTION:.0%})"
    )
    if measured < floor:
        print(
            f"  FAIL: {measured:.1f} fused quanta/sec is below the "
            f"{FUSION_GATE_FRACTION:.0%} fusion regression floor"
        )
        ok = False
    elif ok:
        print("  fusion gate passed")
    return section, ok


def run_quick_gate(args, baseline_path: pathlib.Path) -> int:
    """CI perf smoke: optimized path only, gated on the committed JSON."""
    baseline = None
    committed = None
    try:
        baseline = json.loads(baseline_path.read_text())
        committed = float(baseline["after"]["quanta_per_sec"])
    except (OSError, KeyError, ValueError, TypeError):
        print(f"  no usable baseline at {baseline_path}; gate skipped")

    duration_ns = int(args.duration * SECOND)
    setup = StandardSetup(duration_ns=duration_ns)
    workload_kwargs = dict(n_procs=args.procs, pages_per_proc=args.pages)
    print(
        f"quick gate: {args.policy}, pmbench x{args.procs}, "
        f"{args.duration:.0f}s simulated"
    )
    optimized = time_engine(
        setup, args.policy, workload_kwargs,
        fast_path=True, profile=False,
    )
    measured = optimized["quanta_per_sec"]
    print(f"  measured: {measured:8.1f} quanta/sec")

    quanta_ok = True
    if committed is not None:
        floor = QUICK_GATE_FRACTION * committed
        print(
            f"  baseline: {committed:8.1f} quanta/sec "
            f"(floor {floor:.1f} = {QUICK_GATE_FRACTION:.0%})"
        )
        if measured < floor:
            print(
                f"  FAIL: {measured:.1f} quanta/sec is below the "
                f"{QUICK_GATE_FRACTION:.0%} regression floor"
            )
            quanta_ok = False
        else:
            print("  gate passed")

    sweep_section, sweep_ok = run_quick_sweep_gate(baseline)
    fusion_section, fusion_ok = run_quick_fusion_gate(
        baseline, duration_ns
    )
    arena_section, arena_ok = run_quick_arena_gate(baseline)
    class_dedup_section, class_dedup_ok = run_quick_class_dedup_gate(
        baseline
    )
    trace_section, trace_ok = run_quick_trace_gate(baseline)

    this_host = provenance()
    baseline_cpus = None
    try:
        baseline_cpus = int(baseline["provenance"]["host_cpus"])
    except (KeyError, ValueError, TypeError):
        pass
    if (
        baseline_cpus is not None
        and baseline_cpus != this_host["host_cpus"]
    ):
        print(
            f"  WARNING: baseline came from a {baseline_cpus}-CPU host "
            f"but this host has {this_host['host_cpus']}; wall-clock "
            "floors may be miscalibrated"
        )

    payload = {
        "config": {
            "policy": args.policy,
            "workload": "pmbench",
            "n_procs": args.procs,
            "pages_per_proc": args.pages,
            "duration_sec": args.duration,
        },
        "provenance": this_host,
        "after": {
            k: optimized[k]
            for k in ("wall_sec", "quanta", "quanta_per_sec")
        },
        "baseline_quanta_per_sec": committed,
        "gate_fraction": QUICK_GATE_FRACTION,
        "sweep_gate": sweep_section,
        "fusion_gate": fusion_section,
        "arena_gate": arena_section,
        "class_dedup_gate": class_dedup_section,
        "trace_gate": trace_section,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {out}")
    all_ok = (
        quanta_ok and sweep_ok and fusion_ok and arena_ok
        and class_dedup_ok and trace_ok
    )
    return 0 if all_ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--duration", type=float, default=None,
        help=(
            "simulated seconds per run "
            "(default: 20, or 5 with --quick)"
        ),
    )
    parser.add_argument(
        "--policy", default="chrono",
        help="policy for the engine timing runs (default: chrono)",
    )
    parser.add_argument("--procs", type=int, default=8)
    parser.add_argument("--pages", type=int, default=4_096)
    parser.add_argument(
        "--out", default=None,
        help=(
            "output JSON path (default: BENCH_engine.json, or "
            "BENCH_engine_quick.json with --quick)"
        ),
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=(
            "CI regression gate: time only the optimized path and fail "
            "when quanta/sec drops below "
            f"{QUICK_GATE_FRACTION:.0%} of the committed baseline, "
            "cold sweep cells/sec at jobs=2 drops below "
            f"{SWEEP_GATE_FRACTION:.0%} of the committed ladder rung, "
            "fused quanta/sec drops below "
            f"{FUSION_GATE_FRACTION:.0%} of the committed fusion "
            "section, the fused-vs-per-quantum speedup falls below "
            f"{FUSION_SPEEDUP_FLOOR:.1f}x, the arena-vs-per-process "
            f"speedup falls below {ARENA_SPEEDUP_FLOOR:.1f}x, the "
            "interned-vs-uninterned class dedup speedup falls below "
            f"{CLASS_DEDUP_SPEEDUP_FLOOR:.1f}x, trace compile "
            "throughput falls below "
            f"{TRACE_COMPILE_FLOOR / 1e6:.0f}M events/cpu-sec, the "
            "replayed trace's fusion ratio falls below "
            f"{TRACE_FUSION_RATIO_FLOOR:.0%}, or the traffic fleet's "
            "interning speedup falls below "
            f"{TRAFFIC_SPEEDUP_FLOOR:.1f}x"
        ),
    )
    parser.add_argument(
        "--baseline", default=None,
        help=(
            "baseline JSON for the --quick gate and for merging "
            "skipped full-run sections "
            "(default: the repo's committed BENCH_engine.json)"
        ),
    )
    parser.add_argument(
        "--skip-scaling", action="store_true",
        help="skip the page-count scaling ladder",
    )
    parser.add_argument(
        "--allow-stale", action="store_true",
        help=(
            "allow skipped sections to be carried forward from a "
            "committed baseline whose provenance sha differs from "
            "HEAD (the carried section is annotated as stale)"
        ),
    )
    args = parser.parse_args(argv)

    if args.duration is None:
        args.duration = 5.0 if args.quick else 20.0
    if args.baseline is None:
        args.baseline = str(
            pathlib.Path(__file__).resolve().parent.parent
            / "BENCH_engine.json"
        )
    if args.quick:
        if args.out is None:
            args.out = "BENCH_engine_quick.json"
        return run_quick_gate(args, pathlib.Path(args.baseline))
    if args.out is None:
        args.out = "BENCH_engine.json"

    duration_ns = int(args.duration * SECOND)
    setup = StandardSetup(duration_ns=duration_ns)
    workload_kwargs = dict(
        n_procs=args.procs, pages_per_proc=args.pages
    )

    print(
        f"engine benchmark: {args.policy}, pmbench x{args.procs}, "
        f"{args.duration:.0f}s simulated"
    )
    naive = time_engine(
        setup, args.policy, workload_kwargs,
        fast_path=False, profile=False,
    )
    print(
        f"  before (per-page path): {naive['quanta_per_sec']:8.1f} "
        f"quanta/sec  ({naive['wall_sec']:.2f}s wall)"
    )
    optimized = time_engine(
        setup, args.policy, workload_kwargs,
        fast_path=True, profile=True,
    )
    print(
        f"  after  (cached masses): {optimized['quanta_per_sec']:8.1f} "
        f"quanta/sec  ({optimized['wall_sec']:.2f}s wall)"
    )
    speedup = (
        optimized["quanta_per_sec"] / naive["quanta_per_sec"]
        if naive["quanta_per_sec"]
        else 0.0
    )
    print(f"  speedup: {speedup:.2f}x")

    skipped = []
    sweep = None
    warm_vs_cold = None
    if host_cpus() == 1:
        print(
            "  WARNING: 1-CPU host; skipping the sweep ladder and "
            "warm-vs-cold sections (worker-pool rungs here would only "
            "time scheduler churn, not parallel speedup)"
        )
        skipped += ["sweep", "warm_vs_cold"]
    else:
        print(
            f"  sweep ladder: {len(SWEEP_POLICIES) * len(SWEEP_SEEDS)} "
            f"cells, jobs {sweep_jobs_ladder()} x shm on/off "
            f"({host_cpus()} host cpus)"
        )
        sweep = time_sweep_ladder(
            duration_ns // 4,
            workload_kwargs,
            SWEEP_POLICIES,
            SWEEP_SEEDS,
        )
        warm_vs_cold = time_warm_vs_cold(
            duration_ns // 4, n_procs=2, pages_per_proc=args.pages
        )
        print(
            "  warm vs cold tables "
            f"(graph500 x{warm_vs_cold['n_cells']}): "
            f"cold {warm_vs_cold['cold']['wall_sec']:.2f}s, "
            f"warm {warm_vs_cold['warm']['wall_sec']:.2f}s "
            f"({warm_vs_cold['speedup']:.2f}x)"
        )
    tournament = time_tournament(duration_ns // 4)
    print_tournament(tournament)
    fusion = time_fusion(duration_ns)
    print_fusion(fusion)
    arena = time_arena()
    print_arena(arena)
    class_dedup = time_class_dedup()
    print_class_dedup(class_dedup)
    trace = time_trace()
    print_trace(trace)

    scaling = None
    scaling_ok = True
    if args.skip_scaling:
        skipped.append("scaling")
    else:
        scaling, scaling_ok = run_scaling(args.policy)

    payload = {
        "config": {
            "policy": args.policy,
            "workload": "pmbench",
            "n_procs": args.procs,
            "pages_per_proc": args.pages,
            "duration_sec": args.duration,
        },
        "provenance": provenance(),
        "before": {
            k: naive[k]
            for k in ("wall_sec", "quanta", "quanta_per_sec")
        },
        "after": {
            k: optimized[k]
            for k in ("wall_sec", "quanta", "quanta_per_sec")
        },
        "speedup": speedup,
        "sweep": sweep,
        "warm_vs_cold": warm_vs_cold,
        "tournament": tournament,
        "fusion": fusion,
        "arena": arena,
        "class_dedup": class_dedup,
        "trace": trace,
        "scaling": scaling,
        "profile": optimized["profile"],
    }
    if not merge_stale_sections(
        payload, skipped, pathlib.Path(args.baseline), args.allow_stale
    ):
        return 1
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {out}")
    ok = True
    if not scaling_ok:
        print("  FAIL: scaling ladder equivalence/sublinearity gate")
        ok = False
    if arena["speedup"] < ARENA_SPEEDUP_FLOOR:
        print(
            f"  FAIL: arena speedup {arena['speedup']:.2f}x is below "
            f"the {ARENA_SPEEDUP_FLOOR:.1f}x floor"
        )
        ok = False
    if class_dedup["speedup"] < CLASS_DEDUP_SPEEDUP_FLOOR:
        print(
            "  FAIL: interning speedup "
            f"{class_dedup['speedup']:.2f}x is below the "
            f"{CLASS_DEDUP_SPEEDUP_FLOOR:.1f}x floor"
        )
        ok = False
    if trace["compile"]["events_per_cpu_sec"] < TRACE_COMPILE_FLOOR:
        print(
            "  FAIL: trace compile throughput "
            f"{trace['compile']['events_per_cpu_sec'] / 1e6:.2f}M "
            f"events/cpu-sec is below the "
            f"{TRACE_COMPILE_FLOOR / 1e6:.0f}M floor"
        )
        ok = False
    if (
        trace["replay"]["fused"]["fusion_ratio"]
        < TRACE_FUSION_RATIO_FLOOR
    ):
        print(
            "  FAIL: replay fusion ratio "
            f"{trace['replay']['fused']['fusion_ratio']:.0%} is below "
            f"the {TRACE_FUSION_RATIO_FLOOR:.0%} floor"
        )
        ok = False
    if not trace["replay"]["equivalence"]["ok"]:
        print(
            "  FAIL: fused replay is not statistically equivalent to "
            "the per-quantum replay"
        )
        ok = False
    if trace["traffic"]["speedup"] < TRAFFIC_SPEEDUP_FLOOR:
        print(
            "  FAIL: traffic interning speedup "
            f"{trace['traffic']['speedup']:.2f}x is below the "
            f"{TRAFFIC_SPEEDUP_FLOOR:.1f}x floor"
        )
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
