"""Distribution interning: equivalence-class arena stepping.

The interning layer (``repro.harness.arena``, docs/SIMULATION.md
section 8) groups arena segments that share one compiled distribution
table into equivalence classes and prices/steps each class once per
quantum.  Its contract extends the arena's own (section 7):

1. when every class is a *singleton* -- distinct tables, or shared
   tables with distinct write fractions / delays -- the interned step
   executes the same IEEE-754 operations in the same order as the
   uninterned arena step: bit-identical, for every registered policy;
2. *multi-member* classes share one class-level price and one merged
   ledger run, so trajectories diverge stochastically -- statistically
   equivalent within the arena's own multi-process tolerances;
3. interning composes with quantum fusion, segment retirement, and the
   ``CHRONO_JIT`` kernels (the CI jit job re-runs this file).
"""

import numpy as np
import pytest

from repro.harness.engine import QuantumEngine
from repro.harness.experiments import StandardSetup, build_fleet
from repro.harness.runner import run_experiment
from repro.obs import ObsHub
from repro.sim.timeunits import MILLISECOND, SECOND
from repro.workloads.base import distribution_fingerprint
from repro.workloads.multitenant import make_multitenant_processes
from tests.conftest import make_kernel
from tests.test_harness_arena import ALL_POLICIES


def run_multitenant(
    policy_name,
    intern,
    n_tenants=4,
    pages=256,
    delay_step_units=1,
    n_distinct=1,
    fusion=False,
    seed=0,
    obs=None,
):
    """One multitenant run with interning on or off (arena always on)."""
    setup = StandardSetup(duration_ns=2 * SECOND, seed=seed)
    policy = setup.build_policy(policy_name)
    processes = build_fleet(
        setup,
        "multitenant",
        n_tenants=n_tenants,
        pages_per_tenant=pages,
        delay_step_units=delay_step_units,
        n_distinct=n_distinct,
    )
    return run_experiment(
        processes,
        policy,
        setup.run_config(arena=True, fusion=fusion, intern=intern),
        obs=obs,
    )


def fingerprint(result):
    return (
        result.throughput_per_sec,
        result.fmar,
        result.latency_summary,
        result.stats,
    )


class TestSingletonBitIdentity:
    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    def test_distinct_delays_match_uninterned_exactly(self, policy_name):
        """Tenants sharing one table but with distinct delays form no
        class (delay is part of the class key): the interned step must
        reproduce the uninterned arena step bit for bit."""
        interned = run_multitenant(
            policy_name, intern=True, delay_step_units=1
        )
        reference = run_multitenant(
            policy_name, intern=False, delay_step_units=1
        )
        assert fingerprint(interned) == fingerprint(reference)

    def test_distinct_tables_match_uninterned_exactly(self):
        """All-distinct tables (one stride per tenant) also stay
        singleton -- the other way classes fail to form."""
        interned = run_multitenant(
            "chrono", intern=True, delay_step_units=0, n_distinct=4
        )
        reference = run_multitenant(
            "chrono", intern=False, delay_step_units=0, n_distinct=4
        )
        assert fingerprint(interned) == fingerprint(reference)


class TestMultiMemberEquivalence:
    @pytest.mark.parametrize(
        "policy_name", ["linux-nb", "memtis", "chrono"]
    )
    def test_headline_metrics_agree(self, policy_name):
        """Shared tables at equal delay form real classes; class-level
        pricing and the merged fault plan keep the same laws, so the
        headline metrics agree within the arena's own multi-process
        spread."""
        interned = run_multitenant(
            policy_name,
            intern=True,
            n_tenants=8,
            delay_step_units=0,
            n_distinct=2,
        )
        reference = run_multitenant(
            policy_name,
            intern=False,
            n_tenants=8,
            delay_step_units=0,
            n_distinct=2,
        )
        assert interned.throughput_per_sec == pytest.approx(
            reference.throughput_per_sec, rel=0.05
        )
        assert interned.fmar == pytest.approx(
            reference.fmar, rel=0.05, abs=1e-4
        )


class TestFusionComposition:
    def test_interned_arena_fuses_and_stays_equivalent(self):
        """Fusion composes with interning: the witness rides the
        per-segment epoch cell matrix, macro-quanta still engage, and
        the fused interned run matches the per-quantum interned run
        within the fusion tolerance."""
        hub = ObsHub.create(metrics=True)
        fused = run_multitenant(
            "memtis",
            intern=True,
            n_tenants=8,
            delay_step_units=0,
            n_distinct=2,
            fusion=True,
            obs=hub,
        )
        stepped = run_multitenant(
            "memtis",
            intern=True,
            n_tenants=8,
            delay_step_units=0,
            n_distinct=2,
            fusion=False,
        )
        snapshot = hub.snapshot()
        assert snapshot["counters"]["engine.fused_quanta"] > 0
        assert snapshot["gauges"]["arena.interned_classes"] == 2
        assert fused.throughput_per_sec == pytest.approx(
            stepped.throughput_per_sec, rel=0.02
        )
        assert fused.fmar == pytest.approx(
            stepped.fmar, rel=0.02, abs=1e-4
        )


def build_intern_engine(
    n_tenants=4, pages=64, delay_step_units=0, n_distinct=1
):
    pairs = make_multitenant_processes(
        n_tenants=n_tenants,
        pages_per_tenant=pages,
        delay_step_units=delay_step_units,
        n_distinct=n_distinct,
    )
    processes = [process for process, _cgroup in pairs]
    kernel = make_kernel()
    for process in processes:
        kernel.register_process(process)
    kernel.allocate_initial_placement()
    engine = QuantumEngine(
        kernel, quantum_ns=10 * MILLISECOND, arena=True
    )
    return kernel, engine, processes


class TestClassMachinery:
    def test_shared_table_fleet_forms_one_class(self):
        _, engine, processes = build_intern_engine(n_tenants=4)
        engine._arena_step(0, 10 * MILLISECOND)
        arena = engine._arena
        assert arena.intern
        assert arena.n_classes == 1
        assert arena.interned_segments == 4
        [members] = arena.class_members
        probs = arena.class_probs[0]
        for i in members.tolist():
            assert arena.probs_refs[i] is probs

    def test_distinct_delays_stay_singletons(self):
        _, engine, _ = build_intern_engine(
            n_tenants=4, delay_step_units=1
        )
        engine._arena_step(0, 10 * MILLISECOND)
        arena = engine._arena
        assert arena.intern
        assert arena.n_classes == 0
        assert arena.interned_segments == 0

    def test_single_segment_arena_never_interns(self):
        _, engine, _ = build_intern_engine(n_tenants=1)
        engine._arena_step(0, 10 * MILLISECOND)
        assert not engine._arena.intern

    def test_class_ledger_runs_superpose_member_shares(self):
        """The class's open ledger state is the superposed run
        ``(probs, sum of member n)``; the fingerprint is the
        compiled-table cache key."""
        _, engine, _ = build_intern_engine(n_tenants=4)
        engine._arena_step(0, 10 * MILLISECOND)
        arena = engine._arena
        [(print_, probs, total_n, n_members)] = arena.class_ledger_runs()
        assert n_members == 4
        assert probs is arena.class_probs[0]
        assert print_ == distribution_fingerprint(probs)
        assert print_ is not None
        assert total_n == pytest.approx(float(arena.open_n.sum()))
        assert total_n > 0.0

    def test_dirty_bits_skip_clean_repricing(self):
        """Every live segment is accounted either repriced or skipped
        each quantum, and steady-state quanta skip clean classes."""
        _, engine, _ = build_intern_engine(n_tenants=4)
        arena = None
        for step in range(3):
            engine._arena_step(step * 10 * MILLISECOND, 10 * MILLISECOND)
            arena = arena or engine._arena
        repriced, skipped = arena.take_reprice_counters()
        assert repriced + skipped == 3 * 4
        assert skipped > 0
        assert arena.take_reprice_counters() == (0, 0)

    def test_retirement_dissolves_small_classes(self):
        """A class losing members below two dissolves back to singleton
        (bit-identical) pricing for the survivor."""
        _, engine, processes = build_intern_engine(n_tenants=2)
        processes[0].target_accesses = 1_000.0
        arena = None
        for step in range(100):
            engine._arena_step(step * 10 * MILLISECOND, 10 * MILLISECOND)
            arena = arena or engine._arena
            if arena.interned_segments == 0:
                break
        assert processes[0].finished
        assert not processes[1].finished
        assert arena.interned_segments == 0
        assert (arena._class_of == -1).all()
        assert arena.class_members[0].size == 0
        assert arena.class_ledger_runs() == []

    def test_mass_change_dirties_the_class(self):
        _, engine, processes = build_intern_engine(n_tenants=4)
        engine._arena_step(0, 10 * MILLISECOND)
        arena = engine._arena
        arena.take_reprice_counters()
        arena._class_dirty[:] = False
        arena._price_dirty[:] = False
        pages = processes[0].pages
        pages.move_to_tier(np.array([0, 1]), 1)
        engine._arena_step(10 * MILLISECOND, 10 * MILLISECOND)
        assert not arena._class_dirty.any()  # re-priced and cleared
        repriced, _skipped = arena.take_reprice_counters()
        assert repriced >= 4

    def test_steady_state_cache_arms_and_survives_mass_changes(self):
        """Quanta with no input change re-arm the steady-state cache;
        an external page move is repaired, repriced, and re-armed in
        one quantum (the cache may never serve stale vectors)."""
        _, engine, processes = build_intern_engine(n_tenants=4)
        for step in range(3):
            engine._arena_step(step * 10 * MILLISECOND, 10 * MILLISECOND)
        arena = engine._arena
        assert arena._ss_valid
        fast_before = arena.mass[0, 0]
        arena.take_reprice_counters()
        processes[0].pages.move_to_tier(np.array([0, 1]), 1)
        engine._arena_step(30 * MILLISECOND, 10 * MILLISECOND)
        # The move invalidated mid-step, forced a repair + reprice,
        # refreshed every cached vector, and re-armed the cache.
        assert arena._ss_valid
        assert arena.mass[0, 0] < fast_before
        repriced, _ = arena.take_reprice_counters()
        assert repriced >= 4


class TestObsMetrics:
    def test_interning_gauges_and_counters_emitted(self):
        hub = ObsHub.create(metrics=True)
        run_multitenant(
            "chrono",
            intern=True,
            n_tenants=8,
            delay_step_units=0,
            n_distinct=2,
            obs=hub,
        )
        snapshot = hub.snapshot()
        assert snapshot["gauges"]["arena.interned_classes"] == 2
        assert snapshot["gauges"]["arena.interned_segments"] == 8
        counters = snapshot["counters"]
        assert counters["arena.repriced_segments"] > 0
        total = (
            counters["arena.repriced_segments"]
            + counters["arena.reprice_skipped_segments"]
        )
        assert total > 0
        # Table-cache effectiveness: eight tenants over two compiled
        # tables means two builds (or fewer, if warm) and hits for the
        # rest of the fleet.
        assert snapshot["gauges"]["workload.table_bytes"] > 0
        assert (
            snapshot["gauges"]["workload.table_hits"]
            + snapshot["gauges"]["workload.table_misses"]
            >= 8
        )


class TestMultitenantWorkload:
    def test_n_distinct_cycles_compiled_tables(self):
        pairs = make_multitenant_processes(
            n_tenants=8, pages_per_tenant=64, n_distinct=3
        )
        tables = {
            id(process.workload.access_distribution())
            for process, _ in pairs
        }
        assert len(tables) == 3

    def test_default_shares_one_table(self):
        pairs = make_multitenant_processes(
            n_tenants=4, pages_per_tenant=64
        )
        tables = {
            id(process.workload.access_distribution())
            for process, _ in pairs
        }
        assert len(tables) == 1

    def test_n_distinct_must_be_positive(self):
        with pytest.raises(ValueError, match="distinct"):
            make_multitenant_processes(n_tenants=2, n_distinct=0)

    def test_base_delay_is_uniform_across_tenants(self):
        """A base think time with no stagger keeps per-access cost
        equal fleet-wide, so shared-table tenants still intern."""
        pairs = make_multitenant_processes(
            n_tenants=4,
            pages_per_tenant=64,
            delay_step_units=0,
            base_delay_units=100,
        )
        delays = {
            process.workload.delay_ns_per_access
            for process, _ in pairs
        }
        assert len(delays) == 1
        assert delays.pop() > 0.0

    def test_base_delay_must_be_non_negative(self):
        with pytest.raises(ValueError, match="base delay"):
            make_multitenant_processes(
                n_tenants=2, base_delay_units=-1
            )

    def test_registered_as_fleet_builder(self):
        from repro.harness.experiments import fleet_names

        assert "multitenant" in fleet_names()
