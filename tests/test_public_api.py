"""Tests for the top-level public API surface."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_one_import_workflow(self):
        """The README's single-import example works end to end."""
        setup = repro.StandardSetup(
            fast_pages=256,
            slow_pages=1024,
            duration_ns=2_000_000_000,
            page_scale=8,
        )
        results = repro.run_policy_comparison(
            setup,
            lambda: repro.pmbench_processes(
                setup, n_procs=2, pages_per_proc=256
            ),
            policies=("linux-nb", "chrono"),
        )
        assert set(results) == {"linux-nb", "chrono"}
        for result in results.values():
            assert isinstance(result, repro.RunResult)
            assert result.throughput_per_sec > 0

    def test_paper_policy_list(self):
        assert repro.EVALUATED_POLICIES == (
            "linux-nb",
            "autotiering",
            "multiclock",
            "tpp",
            "memtis",
            "chrono",
        )
        for name in repro.EVALUATED_POLICIES:
            assert name in repro.policy_names()
