"""Edge-case tests for the reporting helpers."""

import pytest

from repro.harness.reporting import (
    _fmt,
    format_table,
    normalized_throughput_rows,
)


class FakeResult:
    def __init__(self, throughput):
        self.throughput_per_sec = throughput
        self.latency_summary = {
            "average": 100.0, "median": 80.0, "p99": 400.0,
        }


class TestFormatting:
    def test_fmt_small_numbers_scientific(self):
        assert _fmt(0.0001) == "0.0001"
        assert _fmt(0.000012) == "1.2e-05"

    def test_fmt_large_numbers_scientific(self):
        assert _fmt(123456.0) == "1.23e+05"

    def test_fmt_zero(self):
        assert _fmt(0.0) == "0"

    def test_fmt_trailing_zeros_stripped(self):
        assert _fmt(1.5) == "1.5"
        assert _fmt(2.0) == "2"

    def test_fmt_non_float_passthrough(self):
        assert _fmt("text") == "text"
        assert _fmt(7) == "7"

    def test_empty_table(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "-" in text

    def test_title_optional(self):
        with_title = format_table(["x"], [[1]], title="T")
        without = format_table(["x"], [[1]])
        assert with_title.startswith("T")
        assert not without.startswith("T")


class TestNormalizedRows:
    def test_rows_against_baseline(self):
        results = {
            "linux-nb": FakeResult(100.0),
            "chrono": FakeResult(250.0),
        }
        rows = normalized_throughput_rows(results, baseline="linux-nb")
        by_name = {row[0]: row for row in rows}
        assert by_name["linux-nb"][2] == pytest.approx(1.0)
        assert by_name["chrono"][2] == pytest.approx(2.5)

    def test_custom_baseline(self):
        results = {
            "a": FakeResult(100.0),
            "b": FakeResult(50.0),
        }
        rows = normalized_throughput_rows(results, baseline="b")
        by_name = {row[0]: row for row in rows}
        assert by_name["a"][2] == pytest.approx(2.0)

    def test_zero_baseline(self):
        results = {"a": FakeResult(0.0), "b": FakeResult(5.0)}
        rows = normalized_throughput_rows(results, baseline="a")
        by_name = {row[0]: row for row in rows}
        assert by_name["b"][2] == 0.0
