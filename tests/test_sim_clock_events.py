"""Tests for the virtual clock and the event scheduler."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.events import EventScheduler


class TestClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(100) == 100
        assert clock.now == 100

    def test_advance_to(self):
        clock = VirtualClock(50)
        clock.advance_to(80)
        assert clock.now == 80

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_rewind_rejected(self):
        clock = VirtualClock(100)
        with pytest.raises(ValueError):
            clock.advance_to(99)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-5)


class TestScheduler:
    def test_fires_due_events_in_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(30, lambda t: fired.append(("b", t)))
        sched.schedule(10, lambda t: fired.append(("a", t)))
        count = sched.run_due(50)
        assert count == 2
        assert fired == [("a", 10), ("b", 30)]

    def test_does_not_fire_future_events(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(100, lambda t: fired.append(t))
        assert sched.run_due(99) == 0
        assert fired == []

    def test_callback_gets_scheduled_time_not_now(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(10, seen.append)
        sched.run_due(1000)
        assert seen == [10]

    def test_fifo_among_equal_times(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(5, lambda t: fired.append("first"))
        sched.schedule(5, lambda t: fired.append("second"))
        sched.run_due(5)
        assert fired == ["first", "second"]

    def test_cancel(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule(5, lambda t: fired.append(t))
        event.cancel()
        assert sched.run_due(10) == 0
        assert fired == []

    def test_len_ignores_cancelled(self):
        sched = EventScheduler()
        keep = sched.schedule(5, lambda t: None)
        drop = sched.schedule(6, lambda t: None)
        drop.cancel()
        assert len(sched) == 1
        assert keep.when_ns == 5

    def test_next_due(self):
        sched = EventScheduler()
        assert sched.next_due() is None
        sched.schedule(42, lambda t: None)
        assert sched.next_due() == 42

    def test_next_due_skips_cancelled(self):
        sched = EventScheduler()
        first = sched.schedule(1, lambda t: None)
        sched.schedule(9, lambda t: None)
        first.cancel()
        assert sched.next_due() == 9

    def test_reschedule_from_callback(self):
        sched = EventScheduler()
        fired = []

        def periodic(now):
            fired.append(now)
            if len(fired) < 3:
                sched.schedule(now + 10, periodic)

        sched.schedule(0, periodic)
        sched.run_due(100)
        assert fired == [0, 10, 20]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(-1, lambda t: None)

    def test_clear(self):
        sched = EventScheduler()
        sched.schedule(1, lambda t: None)
        sched.clear()
        assert sched.next_due() is None


class TestNextEventNs:
    """The quantum-fusion horizon: earliest pending *hard* event."""

    def test_empty_queue(self):
        assert EventScheduler().next_event_ns() is None

    def test_matches_next_due_without_soft_events(self):
        sched = EventScheduler()
        sched.schedule(42, lambda t: None)
        sched.schedule(7, lambda t: None)
        assert sched.next_event_ns() == sched.next_due() == 7

    def test_ignores_soft_events(self):
        sched = EventScheduler()
        sched.schedule(5, lambda t: None, soft=True)
        sched.schedule(30, lambda t: None)
        assert sched.next_due() == 5
        assert sched.next_event_ns() == 30

    def test_all_soft_means_no_horizon(self):
        sched = EventScheduler()
        sched.schedule(5, lambda t: None, soft=True)
        assert sched.next_event_ns() is None

    def test_skips_cancelled_hard_events(self):
        sched = EventScheduler()
        first = sched.schedule(1, lambda t: None)
        sched.schedule(9, lambda t: None)
        first.cancel()
        assert sched.next_event_ns() == 9

    def test_soft_events_still_fire_with_scheduled_time(self):
        """Deferral changes *when* a soft callback runs, not its argument."""
        sched = EventScheduler()
        fired = []
        sched.schedule(5, fired.append, soft=True)
        sched.schedule(15, fired.append, soft=True)
        assert sched.run_due(100) == 2
        assert fired == [5, 15]
