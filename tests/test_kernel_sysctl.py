"""Tests for the sysctl tunable registry."""

import pytest

from repro.kernel.sysctl import (
    Sysctl,
    SysctlError,
    fraction,
    non_negative,
    positive,
)


@pytest.fixture
def sysctl():
    registry = Sysctl()
    registry.register(
        "vm.scan_period_sec", 60, "scan period", validator=positive,
        unit="sec",
    )
    return registry


class TestRegistration:
    def test_default_applied(self, sysctl):
        assert sysctl.get("vm.scan_period_sec") == 60

    def test_duplicate_same_default_is_noop(self, sysctl):
        sysctl.register("vm.scan_period_sec", 60, "scan period")
        assert sysctl.get("vm.scan_period_sec") == 60

    def test_duplicate_conflicting_default_rejected(self, sysctl):
        with pytest.raises(SysctlError):
            sysctl.register("vm.scan_period_sec", 30, "scan period")

    def test_invalid_default_rejected(self):
        registry = Sysctl()
        with pytest.raises(SysctlError):
            registry.register("x", -1, "bad", validator=positive)

    def test_contains(self, sysctl):
        assert "vm.scan_period_sec" in sysctl
        assert "nope" not in sysctl


class TestGetSet:
    def test_set_and_get(self, sysctl):
        sysctl.set("vm.scan_period_sec", 30)
        assert sysctl.get("vm.scan_period_sec") == 30

    def test_unknown_get(self, sysctl):
        with pytest.raises(SysctlError):
            sysctl.get("nope")

    def test_unknown_set(self, sysctl):
        with pytest.raises(SysctlError):
            sysctl.set("nope", 1)

    def test_validator_enforced_on_set(self, sysctl):
        with pytest.raises(SysctlError):
            sysctl.set("vm.scan_period_sec", -5)

    def test_reset_one(self, sysctl):
        sysctl.set("vm.scan_period_sec", 10)
        sysctl.reset("vm.scan_period_sec")
        assert sysctl.get("vm.scan_period_sec") == 60

    def test_reset_all(self, sysctl):
        sysctl.register("a", 1, "a")
        sysctl.set("a", 2)
        sysctl.set("vm.scan_period_sec", 5)
        sysctl.reset()
        assert sysctl.get("a") == 1
        assert sysctl.get("vm.scan_period_sec") == 60

    def test_reset_unknown(self, sysctl):
        with pytest.raises(SysctlError):
            sysctl.reset("nope")


class TestValidators:
    def test_positive(self):
        assert positive(1) and positive(0.5)
        assert not positive(0) and not positive(-1)
        assert not positive("x")

    def test_fraction(self):
        assert fraction(0.5) and fraction(1)
        assert not fraction(0) and not fraction(1.5)

    def test_non_negative(self):
        assert non_negative(0) and non_negative(3)
        assert not non_negative(-0.1)


class TestDescribe:
    def test_table_contains_entries(self, sysctl):
        text = sysctl.describe()
        assert "vm.scan_period_sec" in text
        assert "60" in text
        assert "Name" in text

    def test_iteration_sorted(self):
        registry = Sysctl()
        registry.register("b", 1, "b")
        registry.register("a", 1, "a")
        names = [name for name, _ in registry]
        assert names == ["a", "b"]
