"""Tests for time-unit constants and conversions."""

import pytest

from repro.sim import timeunits as tu


class TestConstants:
    def test_ordering(self):
        assert (
            tu.NANOSECOND
            < tu.MICROSECOND
            < tu.MILLISECOND
            < tu.SECOND
            < tu.MINUTE
        )

    def test_second_is_1e9_ns(self):
        assert tu.SECOND == 1_000_000_000

    def test_minute(self):
        assert tu.MINUTE == 60 * tu.SECOND


class TestConversions:
    def test_ns_to_ms(self):
        assert tu.ns_to_ms(1_500_000) == pytest.approx(1.5)

    def test_ns_to_sec(self):
        assert tu.ns_to_sec(2_500_000_000) == pytest.approx(2.5)

    def test_ms_to_ns_roundtrip(self):
        assert tu.ms_to_ns(tu.ns_to_ms(123_456_789)) == 123_456_789

    def test_sec_to_ns(self):
        assert tu.sec_to_ns(0.001) == tu.MILLISECOND

    def test_ms_to_ns_rounds(self):
        assert tu.ms_to_ns(0.0000009) == 1  # 0.9 ns rounds to 1


class TestFormat:
    def test_ns(self):
        assert tu.format_ns(250) == "250ns"

    def test_us(self):
        assert tu.format_ns(2_500) == "2.500us"

    def test_ms(self):
        assert tu.format_ns(1_500_000) == "1.500ms"

    def test_sec(self):
        assert tu.format_ns(3 * tu.SECOND) == "3.000s"
