"""Tests for trace recording and replay."""

import types

import numpy as np
import pytest

from repro.harness.engine import QuantumEngine
from repro.sim.timeunits import MILLISECOND, SECOND
from repro.workloads.trace_io import (
    TRACE_FORMAT_VERSION,
    TraceRecorder,
    load_trace,
    load_trace_windows,
    save_trace,
    windows_to_phases,
)
from tests.conftest import make_kernel, make_process


def run_recorded(interval_ns=SECOND // 4, duration=SECOND):
    kernel = make_kernel(fast_pages=128, slow_pages=512)
    process = make_process(n_pages=128)
    kernel.register_process(process)
    kernel.allocate_initial_placement()
    engine = QuantumEngine(kernel, quantum_ns=50 * MILLISECOND)
    recorder = TraceRecorder(interval_ns=interval_ns)
    engine.run(
        duration,
        observer=recorder.observe,
        observe_every_ns=recorder.interval_ns,
    )
    return recorder, process


class TestRecorder:
    def test_records_windows(self):
        recorder, process = run_recorded()
        assert recorder.pids() == [process.pid]
        assert recorder.n_windows(process.pid) >= 3

    def test_windows_sum_to_total_traffic(self):
        recorder, process = run_recorded()
        windows = recorder._windows[process.pid]
        total = sum(w.sum() for w in windows)
        # Recorded windows cover everything up to the last observation.
        assert total <= process.stats.accesses + 1e-6
        assert total > 0.5 * process.stats.accesses

    def test_to_workload_replays_distribution(self):
        recorder, process = run_recorded()
        replay = recorder.to_workload(process.pid)
        probs = replay.access_distribution(now_ns=0)
        assert probs.sum() == pytest.approx(1.0)
        # The stub workload is front-loaded; the trace must be too.
        assert probs[:32].sum() > probs[32:].sum()

    def test_write_fraction_carried(self):
        recorder, process = run_recorded()
        replay = recorder.to_workload(process.pid)
        assert replay.write_fraction == (
            process.workload.write_fraction
        )

    def test_unknown_pid(self):
        recorder, _ = run_recorded()
        with pytest.raises(ValueError):
            recorder.to_workload(999)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            TraceRecorder(interval_ns=0)

    def test_observe_without_write_fraction(self):
        """Duck-typed workloads lacking a write mix get the default."""
        process = types.SimpleNamespace(
            pid=7,
            pages=types.SimpleNamespace(
                access_count=np.array([3.0, 1.0, 0.0])
            ),
            workload=object(),
        )
        engine = types.SimpleNamespace(
            kernel=types.SimpleNamespace(processes=[process])
        )
        recorder = TraceRecorder(interval_ns=SECOND)
        recorder.observe(engine, SECOND)
        replay = recorder.to_workload(7)
        assert replay.write_fraction == pytest.approx(0.05)

    def test_save_all(self, tmp_path):
        recorder, process = run_recorded()
        saved = recorder.save_all(tmp_path / "traces")
        assert set(saved) == {process.pid}
        assert saved[process.pid].name == f"trace_pid{process.pid}.npz"
        replay = load_trace(saved[process.pid])
        direct = recorder.to_workload(process.pid)
        np.testing.assert_allclose(
            replay.access_distribution(now_ns=0),
            direct.access_distribution(now_ns=0),
        )


class TestIdleWindows:
    def test_windows_to_phases_preserves_idle(self):
        windows = np.array([
            [2.0, 0.0],
            [0.0, 0.0],
            [0.0, 0.0],
            [0.0, 4.0],
        ])
        phases = windows_to_phases(windows, SECOND)
        durations = [d for d, _ in phases]
        masses = [float(w.sum()) for _, w in phases]
        # One busy phase, one coalesced 2-window idle phase, one busy.
        assert durations == [SECOND, 2 * SECOND, SECOND]
        assert masses[0] > 0 and masses[1] == 0.0 and masses[2] > 0

    def test_idle_roundtrip_keeps_cycle_length(self, tmp_path):
        windows = [
            np.array([1.0, 0.0]),
            np.zeros(2),
            np.array([0.0, 1.0]),
        ]
        path = tmp_path / "idle.npz"
        save_trace(path, windows, SECOND)
        replay = load_trace(path)
        # 3 recorded windows -> 3 seconds of replay cycle, idle kept.
        assert replay.stable_until_ns(0) is not None
        assert replay._cycle_ns == 3 * SECOND
        assert float(
            replay.access_distribution(now_ns=SECOND + 1).sum()
        ) == 0.0

    def test_zero_traffic_phase_runs_no_accesses(self):
        """An idle lead-in phase completes no accesses in the engine."""
        from repro.sim.rng import RngStreams
        from repro.vm.process import SimProcess
        from repro.workloads.base import TraceWorkload

        workload = TraceWorkload([
            (SECOND, np.zeros(64)),
            (SECOND, np.ones(64)),
        ])
        process = SimProcess(
            pid=0,
            workload=workload,
            rng=RngStreams(3).spawn("idle").get("access"),
        )
        kernel = make_kernel(fast_pages=64, slow_pages=256)
        kernel.register_process(process)
        kernel.allocate_initial_placement()
        engine = QuantumEngine(kernel, quantum_ns=50 * MILLISECOND)
        engine.run(SECOND // 2)
        assert process.stats.accesses == 0
        engine.run(2 * SECOND)
        assert process.stats.accesses > 0


class TestFormatVersions:
    def test_current_version_is_v2(self, tmp_path):
        path = tmp_path / "v2.npz"
        save_trace(path, [np.ones(4)], SECOND)
        with np.load(path) as data:
            assert int(data["version"]) == TRACE_FORMAT_VERSION == 2

    def test_v1_file_still_loads(self, tmp_path):
        path = tmp_path / "v1.npz"
        np.savez_compressed(
            path,
            version=np.int64(1),
            interval_ns=np.int64(SECOND),
            write_fraction=np.float64(0.1),
            windows=np.array([[1.0, 0.0], [0.0, 0.0], [0.0, 2.0]]),
        )
        windows, interval_ns, write_fraction = load_trace_windows(path)
        assert windows.shape == (3, 2)
        assert interval_ns == SECOND
        assert write_fraction == pytest.approx(0.1)
        replay = load_trace(path)
        # v1 readers dropped the idle window; v2 semantics keep it.
        assert replay._cycle_ns == 3 * SECOND


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        recorder, process = run_recorded()
        path = tmp_path / "trace.npz"
        recorder.save(path, process.pid)
        replay = load_trace(path)
        direct = recorder.to_workload(process.pid)
        np.testing.assert_allclose(
            replay.access_distribution(now_ns=0),
            direct.access_distribution(now_ns=0),
        )
        assert replay.write_fraction == direct.write_fraction

    def test_empty_trace_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(tmp_path / "x.npz", [], SECOND)

    def test_zero_traffic_trace_rejected(self, tmp_path):
        path = tmp_path / "zero.npz"
        save_trace(path, [np.zeros(8)], SECOND)
        with pytest.raises(ValueError):
            load_trace(path)

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            version=np.int64(99),
            interval_ns=np.int64(1),
            write_fraction=np.float64(0.1),
            windows=np.ones((1, 4)),
        )
        with pytest.raises(ValueError):
            load_trace(path)

    def test_replay_runs_in_engine(self, tmp_path):
        """A loaded trace drives a fresh simulation end to end."""
        from repro.sim.rng import RngStreams
        from repro.vm.process import SimProcess

        recorder, process = run_recorded()
        path = tmp_path / "trace.npz"
        recorder.save(path, process.pid)

        replayed = SimProcess(
            pid=5,
            workload=load_trace(path),
            rng=RngStreams(9).spawn("replay").get("access"),
        )
        kernel = make_kernel(fast_pages=128, slow_pages=512)
        kernel.register_process(replayed)
        kernel.allocate_initial_placement()
        engine = QuantumEngine(kernel, quantum_ns=50 * MILLISECOND)
        engine.run(SECOND)
        assert replayed.stats.accesses > 0
