"""Tests for trace recording and replay."""

import numpy as np
import pytest

from repro.harness.engine import QuantumEngine
from repro.sim.timeunits import MILLISECOND, SECOND
from repro.workloads.trace_io import (
    TraceRecorder,
    load_trace,
    save_trace,
)
from tests.conftest import make_kernel, make_process


def run_recorded(interval_ns=SECOND // 4, duration=SECOND):
    kernel = make_kernel(fast_pages=128, slow_pages=512)
    process = make_process(n_pages=128)
    kernel.register_process(process)
    kernel.allocate_initial_placement()
    engine = QuantumEngine(kernel, quantum_ns=50 * MILLISECOND)
    recorder = TraceRecorder(interval_ns=interval_ns)
    engine.run(
        duration,
        observer=recorder.observe,
        observe_every_ns=recorder.interval_ns,
    )
    return recorder, process


class TestRecorder:
    def test_records_windows(self):
        recorder, process = run_recorded()
        assert recorder.pids() == [process.pid]
        assert recorder.n_windows(process.pid) >= 3

    def test_windows_sum_to_total_traffic(self):
        recorder, process = run_recorded()
        windows = recorder._windows[process.pid]
        total = sum(w.sum() for w in windows)
        # Recorded windows cover everything up to the last observation.
        assert total <= process.stats.accesses + 1e-6
        assert total > 0.5 * process.stats.accesses

    def test_to_workload_replays_distribution(self):
        recorder, process = run_recorded()
        replay = recorder.to_workload(process.pid)
        probs = replay.access_distribution(now_ns=0)
        assert probs.sum() == pytest.approx(1.0)
        # The stub workload is front-loaded; the trace must be too.
        assert probs[:32].sum() > probs[32:].sum()

    def test_write_fraction_carried(self):
        recorder, process = run_recorded()
        replay = recorder.to_workload(process.pid)
        assert replay.write_fraction == (
            process.workload.write_fraction
        )

    def test_unknown_pid(self):
        recorder, _ = run_recorded()
        with pytest.raises(ValueError):
            recorder.to_workload(999)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            TraceRecorder(interval_ns=0)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        recorder, process = run_recorded()
        path = tmp_path / "trace.npz"
        recorder.save(path, process.pid)
        replay = load_trace(path)
        direct = recorder.to_workload(process.pid)
        np.testing.assert_allclose(
            replay.access_distribution(now_ns=0),
            direct.access_distribution(now_ns=0),
        )
        assert replay.write_fraction == direct.write_fraction

    def test_empty_trace_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(tmp_path / "x.npz", [], SECOND)

    def test_zero_traffic_trace_rejected(self, tmp_path):
        path = tmp_path / "zero.npz"
        save_trace(path, [np.zeros(8)], SECOND)
        with pytest.raises(ValueError):
            load_trace(path)

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            version=np.int64(99),
            interval_ns=np.int64(1),
            write_fraction=np.float64(0.1),
            windows=np.ones((1, 4)),
        )
        with pytest.raises(ValueError):
            load_trace(path)

    def test_replay_runs_in_engine(self, tmp_path):
        """A loaded trace drives a fresh simulation end to end."""
        from repro.sim.rng import RngStreams
        from repro.vm.process import SimProcess

        recorder, process = run_recorded()
        path = tmp_path / "trace.npz"
        recorder.save(path, process.pid)

        replayed = SimProcess(
            pid=5,
            workload=load_trace(path),
            rng=RngStreams(9).spawn("replay").get("access"),
        )
        kernel = make_kernel(fast_pages=128, slow_pages=512)
        kernel.register_process(replayed)
        kernel.allocate_initial_placement()
        engine = QuantumEngine(kernel, quantum_ns=50 * MILLISECOND)
        engine.run(SECOND)
        assert replayed.stats.accesses > 0
