"""Tests for the KV store's slab-scatter layout."""

import numpy as np
import pytest

from repro.workloads.kvstore import KVStoreWorkload, _scatter_by_slab


class TestScatterBySlab:
    def test_preserves_mass(self):
        weights = np.arange(100, dtype=np.float64)
        scattered = _scatter_by_slab(weights, slab_pages=4, seed=1)
        assert scattered.sum() == pytest.approx(weights.sum())
        assert scattered.size == weights.size

    def test_slabs_stay_contiguous(self):
        """Each 4-page slab appears intact somewhere in the output."""
        weights = np.arange(32, dtype=np.float64)
        scattered = _scatter_by_slab(weights, slab_pages=4, seed=2)
        original_slabs = {
            tuple(weights[i:i + 4]) for i in range(0, 32, 4)
        }
        scattered_slabs = {
            tuple(scattered[i:i + 4]) for i in range(0, 32, 4)
        }
        assert scattered_slabs == original_slabs

    def test_actually_scatters(self):
        weights = np.arange(64, dtype=np.float64)
        scattered = _scatter_by_slab(weights, slab_pages=4, seed=3)
        assert not np.array_equal(scattered, weights)

    def test_deterministic(self):
        weights = np.arange(64, dtype=np.float64)
        a = _scatter_by_slab(weights, 4, seed=5)
        b = _scatter_by_slab(weights, 4, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_partial_tail(self):
        weights = np.arange(10, dtype=np.float64)
        scattered = _scatter_by_slab(weights, slab_pages=4, seed=1)
        assert scattered.size == 10
        assert scattered.sum() == pytest.approx(weights.sum())


class TestFragmentedStore:
    def test_hotness_no_longer_contiguous(self):
        """With slab scatter, the hottest value pages spread across the
        region instead of clustering around the Gaussian centre."""
        contiguous = KVStoreWorkload(n_pages=800, slab_pages=0)
        scattered = KVStoreWorkload(n_pages=800, slab_pages=4)

        def hot_span(workload):
            probs = workload.access_distribution()
            values = probs[workload.n_index_pages:]
            top = np.argsort(values)[::-1][:50]
            return int(top.max() - top.min())

        assert hot_span(scattered) > 2 * hot_span(contiguous)

    def test_page_level_hotness_preserved(self):
        """Scattering moves pages around; it must not flatten the
        per-page hotness distribution itself."""
        contiguous = KVStoreWorkload(n_pages=800, slab_pages=0)
        scattered = KVStoreWorkload(n_pages=800, slab_pages=4)
        a = np.sort(contiguous.access_distribution())
        b = np.sort(scattered.access_distribution())
        np.testing.assert_allclose(a, b, rtol=1e-9)

    def test_index_region_untouched(self):
        workload = KVStoreWorkload(
            n_pages=800, slab_pages=4, index_traffic_share=0.3
        )
        probs = workload.access_distribution()
        index = probs[: workload.n_index_pages]
        np.testing.assert_allclose(index, index[0])
        assert index.sum() == pytest.approx(0.3)

    def test_negative_slab_rejected(self):
        with pytest.raises(ValueError):
            KVStoreWorkload(n_pages=100, slab_pages=-1)
