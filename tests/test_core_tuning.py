"""Tests for semi-automatic CIT-threshold tuning."""

import pytest

from repro.core.tuning import SemiAutoTuner


def make_tuner(threshold=10_000_000.0, delta=0.5):
    return SemiAutoTuner(threshold_ns=threshold, delta=delta)


class TestUpdateDirection:
    def test_excess_enqueue_shrinks_threshold(self):
        tuner = make_tuner()
        new = tuner.update(
            rate_limit_pages_per_sec=100, enqueue_rate_per_sec=200
        )
        # r = 0.5, factor = 1 - 0.5 + 0.25 = 0.75.
        assert new == pytest.approx(7_500_000.0)

    def test_scarce_enqueue_grows_threshold(self):
        tuner = make_tuner()
        new = tuner.update(100, 50)
        # r = 2, factor = 1 - 0.5 + 1 = 1.5.
        assert new == pytest.approx(15_000_000.0)

    def test_balanced_is_stable(self):
        tuner = make_tuner()
        assert tuner.update(100, 100) == pytest.approx(10_000_000.0)

    def test_delta_scales_step(self):
        gentle = make_tuner(delta=0.1)
        brisk = make_tuner(delta=0.9)
        gentle.update(100, 200)
        brisk.update(100, 200)
        assert gentle.threshold_ns > brisk.threshold_ns


class TestConvergence:
    def test_converges_to_rate_limit(self):
        """With enqueue rate proportional to threshold, the loop drives
        the enqueue rate to the limit (Section 3.2.1's claim)."""
        tuner = make_tuner(threshold=8_000_000.0)
        rate_limit = 100.0
        for _ in range(40):
            # Model: enqueue rate proportional to threshold.
            enqueue = tuner.threshold_ns / 10_000.0
            tuner.update(rate_limit, enqueue)
        final_enqueue = tuner.threshold_ns / 10_000.0
        assert final_enqueue == pytest.approx(rate_limit, rel=0.05)


class TestGuards:
    def test_zero_enqueue_clamped_growth(self):
        tuner = make_tuner()
        new = tuner.update(100, 0)
        # factor with clamped ratio 4: 1 - 0.5 + 2 = 2.5.
        assert new == pytest.approx(25_000_000.0)

    def test_step_ratio_clamped_both_ways(self):
        up = make_tuner()
        up.update(1_000_000, 1)  # enormous ratio
        assert up.threshold_ns == pytest.approx(25_000_000.0)
        down = make_tuner()
        down.update(1, 1_000_000)  # tiny ratio
        # factor = 1 - 0.5 + 0.5 * 0.25 = 0.625.
        assert down.threshold_ns == pytest.approx(6_250_000.0)

    def test_bounds_enforced(self):
        tuner = SemiAutoTuner(
            threshold_ns=2e6, min_threshold_ns=1e6, max_threshold_ns=4e6
        )
        for _ in range(10):
            tuner.update(100, 0)  # keeps growing
        assert tuner.threshold_ns == 4e6
        for _ in range(10):
            tuner.update(1, 1000)  # keeps shrinking
        assert tuner.threshold_ns == 1e6

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SemiAutoTuner(threshold_ns=0)
        with pytest.raises(ValueError):
            SemiAutoTuner(threshold_ns=1, delta=0)
        with pytest.raises(ValueError):
            SemiAutoTuner(threshold_ns=1, delta=1.5)
        with pytest.raises(ValueError):
            SemiAutoTuner(
                threshold_ns=1, min_threshold_ns=10, max_threshold_ns=5
            )
        with pytest.raises(ValueError):
            SemiAutoTuner(threshold_ns=1, max_step_ratio=1.0)

    def test_update_validation(self):
        tuner = make_tuner()
        with pytest.raises(ValueError):
            tuner.update(0, 10)
        with pytest.raises(ValueError):
            tuner.update(10, -1)
