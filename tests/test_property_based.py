"""Property-based tests (hypothesis) on core data structures and
invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.latency import LatencyMixture
from repro.analysis.metrics import f1_score, precision_recall
from repro.core.candidates import CandidateFilter
from repro.core.cit import (
    bucket_lower_bound_ns,
    bucket_upper_bound_ns,
    cit_bucket,
)
from repro.core.promotion import PromotionQueue
from repro.core.tuning import SemiAutoTuner
from repro.mem.tier import FAST_TIER, SLOW_TIER, MemoryTier, dram_spec
from repro.pebs.histogram import bin_of
from repro.sim.events import EventScheduler
from repro.vm.hugepage import aggregate_by_huge, n_huge_pages
from repro.vm.page_state import PageState
from tests.conftest import make_kernel, make_process


class TestCitBucketProperties:
    @given(st.integers(min_value=0, max_value=2**60))
    def test_value_within_its_bucket_bounds(self, cit_ns):
        bucket = int(cit_bucket(np.array([cit_ns]))[0])
        assert bucket_lower_bound_ns(bucket) <= cit_ns
        if bucket < 27:  # not the saturating bucket
            assert cit_ns < bucket_upper_bound_ns(bucket)

    @given(
        st.integers(min_value=0, max_value=2**50),
        st.integers(min_value=0, max_value=2**50),
    )
    def test_bucketing_is_monotone(self, a, b):
        low, high = sorted([a, b])
        buckets = cit_bucket(np.array([low, high]))
        assert buckets[0] <= buckets[1]

    @given(st.integers(min_value=1, max_value=26))
    def test_bounds_are_adjacent(self, bucket):
        assert bucket_upper_bound_ns(bucket - 1) == (
            bucket_lower_bound_ns(bucket)
        )


class TestPebsBinProperties:
    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_bins_monotone_in_counts(self, counts):
        values = np.sort(np.array(counts))
        bins = bin_of(values)
        assert (np.diff(bins) >= 0).all()


class TestLatencyMixtureProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=100_000),
                st.floats(min_value=0.01, max_value=1e6,
                          allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_mean_within_support_and_quantiles_monotone(self, points):
        mix = LatencyMixture()
        for latency, count in points:
            mix.add(latency, count)
        latencies = [p[0] for p in points]
        epsilon = 1e-9 * max(latencies)
        assert (
            min(latencies) - epsilon
            <= mix.mean()
            <= max(latencies) + epsilon
        )
        quantiles = [mix.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert quantiles == sorted(quantiles)
        assert mix.quantile(1.0) == max(latencies)


class TestMetricsProperties:
    @given(
        st.lists(st.booleans(), min_size=1, max_size=64),
        st.lists(st.booleans(), min_size=1, max_size=64),
    )
    def test_scores_bounded(self, truth, pred):
        n = min(len(truth), len(pred))
        t = np.array(truth[:n])
        p = np.array(pred[:n])
        precision, recall = precision_recall(t, p)
        assert 0.0 <= precision <= 1.0
        assert 0.0 <= recall <= 1.0
        assert 0.0 <= f1_score(t, p) <= 1.0

    @given(st.lists(st.booleans(), min_size=1, max_size=64))
    def test_perfect_prediction_is_one(self, truth):
        t = np.array(truth)
        if t.any():
            assert f1_score(t, t) == 1.0


class TestTierAccountingProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 50)),
            max_size=40,
        )
    )
    def test_used_pages_never_out_of_range(self, operations):
        tier = MemoryTier(tier_id=0, spec=dram_spec(100))
        for is_alloc, n in operations:
            if is_alloc:
                tier.allocate(n)
            else:
                tier.release(min(n, tier.used_pages))
            assert 0 <= tier.used_pages <= tier.capacity_pages
            assert tier.free_pages == (
                tier.capacity_pages - tier.used_pages
            )


class TestPromotionQueueProperties:
    @given(
        st.lists(st.integers(0, 63), min_size=1, max_size=100),
        st.integers(min_value=1, max_value=50),
    )
    def test_drain_conserves_pages(self, vpns, rate):
        process = make_process(n_pages=64)
        queue = PromotionQueue(float(rate))
        queue.enqueue(process, np.array(vpns))
        unique = len(set(vpns))
        assert len(queue) == unique
        drained = 0
        for _ in range(200):
            batches = queue.drain(elapsed_ns=10**9)
            drained += sum(v.size for _, v in batches)
            if len(queue) == 0:
                break
        assert drained == unique
        # No duplicates ever dequeued.
        assert queue.dequeued_total == unique


class TestCandidateFilterProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 31),
                st.integers(min_value=1, max_value=10**9),
            ),
            min_size=1,
            max_size=200,
        ),
        st.integers(min_value=2, max_value=3),
    )
    def test_ready_pages_saw_n_below_threshold_rounds(
        self, observations, n_rounds
    ):
        threshold = 10**6
        process = make_process(n_pages=32)
        filt = CandidateFilter(n_rounds=n_rounds)
        below_streak = {vpn: 0 for vpn in range(32)}
        for vpn, cit in observations:
            result = filt.observe(
                process, np.array([vpn]), np.array([cit]), threshold
            )
            if cit < threshold:
                below_streak[vpn] += 1
            else:
                below_streak[vpn] = 0
            for ready in result.ready_vpns:
                # A ready page's last n observations were all below the
                # threshold.
                assert below_streak[int(ready)] >= n_rounds
                below_streak[int(ready)] = 0
            assert filt.candidate_count(process) <= 32


class TestTunerProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=1e4,
                          allow_nan=False),
                st.floats(min_value=0.0, max_value=1e4,
                          allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_threshold_stays_in_bounds(self, updates):
        tuner = SemiAutoTuner(
            threshold_ns=5e6, min_threshold_ns=1e6, max_threshold_ns=1e8
        )
        for rate_limit, enqueue in updates:
            tuner.update(rate_limit, enqueue)
            assert 1e6 <= tuner.threshold_ns <= 1e8


class TestHugePageProperties:
    @given(
        st.integers(min_value=1, max_value=5000),
        st.sampled_from([2, 8, 64, 512]),
    )
    def test_aggregation_conserves_mass(self, n_pages, hp):
        rng = np.random.default_rng(n_pages)
        values = rng.random(n_pages)
        groups = aggregate_by_huge(values, hp)
        assert groups.size == n_huge_pages(n_pages, hp)
        assert groups.sum() == np.float64(groups.sum())
        np.testing.assert_allclose(groups.sum(), values.sum())


class TestSchedulerProperties:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=1000),
            min_size=1,
            max_size=60,
        )
    )
    def test_events_fire_in_time_order(self, times):
        scheduler = EventScheduler()
        fired = []
        for when in times:
            scheduler.schedule(when, fired.append)
        scheduler.run_due(2000)
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(
        st.integers(min_value=1, max_value=50),
        st.lists(
            st.integers(min_value=1, max_value=97),
            min_size=1,
            max_size=30,
        ),
    )
    def test_periodic_reschedule_is_drift_free(self, period, deltas):
        """A self-rescheduling daemon keeps an exact cadence no matter how
        coarsely (or unevenly) the clock advances."""
        scheduler = EventScheduler()
        fired = []

        def periodic(now):
            fired.append(now)
            scheduler.schedule(now + period, periodic)

        scheduler.schedule(0, periodic)
        now = 0
        for delta in deltas:
            now += delta
            scheduler.run_due(now)
        assert fired == list(range(0, now + 1, period))

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=500),
                st.booleans(),  # soft
                st.booleans(),  # cancelled
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_next_event_ns_consistent_with_run_due(self, specs):
        """``next_event_ns`` is exactly the first instant at which
        ``run_due`` would fire a hard event; soft and cancelled events
        never move it."""
        scheduler = EventScheduler()
        hard_fired = []
        for when, soft, cancelled in specs:
            if soft:
                event = scheduler.schedule(when, lambda t: None, soft=True)
            else:
                event = scheduler.schedule(when, hard_fired.append)
            if cancelled:
                event.cancel()
        live_hard = sorted(
            when for when, soft, cancelled in specs
            if not soft and not cancelled
        )
        horizon = scheduler.next_event_ns()
        assert horizon == (live_hard[0] if live_hard else None)
        if horizon is not None and horizon > 0:
            scheduler.run_due(horizon - 1)
            assert hard_fired == []
        scheduler.run_due(1000)
        assert hard_fired == live_hard

    @given(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("schedule"),
                    st.integers(min_value=0, max_value=50),
                ),
                st.tuples(
                    st.just("advance"),
                    st.integers(min_value=0, max_value=60),
                ),
            ),
            max_size=60,
        )
    )
    @settings(deadline=None)
    def test_interleaved_schedule_advance_never_fires_early(self, ops):
        """Arbitrary interleaving of scheduling (relative to *now*) and
        clock advances never runs a callback before its scheduled time,
        and never leaves a due event pending."""
        scheduler = EventScheduler()
        clock = {"now": 0}
        fired = []
        scheduled = 0

        def record(when):
            fired.append((when, clock["now"]))

        for op, value in ops:
            if op == "schedule":
                scheduler.schedule(clock["now"] + value, record)
                scheduled += 1
            else:
                clock["now"] += value
                scheduler.run_due(clock["now"])
        scheduler.run_due(clock["now"])
        for when, at in fired:
            assert when <= at  # never early
        remaining = scheduler.next_due()
        assert remaining is None or remaining > clock["now"]
        assert len(fired) + len(scheduler) == scheduled


class TestArenaMassRepairProperties:
    """Random multi-segment migration journals keep the arena's mass
    matrix consistent through the fused replay.

    ``_repair_mass_many`` folds several segments' journal entries in
    one pass, replacing the per-entry weighted ``bincount`` with two
    scalar updates when a batch is single-source; the sum-then-subtract
    rounding can drift a drained tier a few ulps below zero, and the
    replay must clamp that drift away (negative mass poisons the
    demand fold).  The replayed rows must also agree with a fresh
    recount to FP tolerance, and every repaired segment must land on
    its pages' epoch.
    """

    N_SEGS = 3
    N_PAGES = 32

    def _build_arena(self):
        from repro.harness.engine import QuantumEngine
        from repro.sim.timeunits import MILLISECOND

        kernel = make_kernel()
        processes = [
            make_process(pid=pid, n_pages=self.N_PAGES)
            for pid in range(1, self.N_SEGS + 1)
        ]
        for process in processes:
            kernel.register_process(process)
        kernel.allocate_initial_placement()
        engine = QuantumEngine(
            kernel, quantum_ns=10 * MILLISECOND, arena=True
        )
        engine._arena_step(0, 10 * MILLISECOND)
        return engine._arena, processes

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=N_SEGS - 1),
                st.lists(
                    st.integers(min_value=0, max_value=N_PAGES - 1),
                    min_size=1,
                    max_size=8,
                ),
                st.sampled_from([FAST_TIER, SLOW_TIER]),
            ),
            min_size=1,
            max_size=25,
        )
    )
    @settings(deadline=None, max_examples=25)
    def test_fused_replay_clamps_drift_and_tracks_recount(self, moves):
        arena, processes = self._build_arena()
        # Touch at least two segments so the repair takes the fused
        # multi-segment path rather than delegating to the sequential
        # single-segment replay.
        for seg in (0, 1):
            processes[seg].pages.move_to_tier(
                np.array([seg], dtype=np.int64), FAST_TIER
            )
        for seg, raw_vpns, tier in moves:
            processes[seg].pages.move_to_tier(
                np.unique(np.array(raw_vpns, dtype=np.int64)), tier
            )
        stale = [
            (i, process)
            for i, process in enumerate(processes)
            if arena.mass_epoch[i] != process.pages.epoch
        ]
        assert len(stale) >= 2
        arena._repair_mass_many(stale)
        assert (arena.mass >= 0.0).all()
        for i, process in enumerate(processes):
            assert arena.mass_epoch[i] == process.pages.epoch
            probs = arena.probs_refs[i]
            expected = np.bincount(
                process.pages.tier.astype(np.int64),
                weights=probs,
                minlength=arena.n_tiers,
            )
            np.testing.assert_allclose(
                arena.mass[i], expected, atol=1e-12
            )
            lo, hi = (
                int(arena.seg_starts[i]),
                int(arena.seg_starts[i + 1]),
            )
            np.testing.assert_array_equal(
                arena.concat_tier[lo:hi], process.pages.tier
            )


class TestPageProtectionInvariants:
    """Random protect / protect_at / unprotect / move_to_tier sequences
    keep the protection bookkeeping consistent.

    The engine's hot path trusts ``n_protected`` and the sorted
    ``protected_pages()`` cache instead of scanning ``prot_none``; any
    drift between the three representations silently corrupts fault
    sampling.
    """

    N_PAGES = 32

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["protect", "protect_at", "unprotect", "move"]
                ),
                st.lists(
                    st.integers(min_value=0, max_value=31),
                    min_size=1,
                    max_size=12,
                ),
            ),
            max_size=40,
        )
    )
    @settings(deadline=None)
    def test_counters_and_cache_track_the_bitmap(self, ops):
        pages = PageState(self.N_PAGES)
        now = 0
        for kind, raw_vpns in ops:
            now += 1
            vpns = np.array(raw_vpns, dtype=np.int64)
            if kind == "protect":
                pages.protect(vpns, now_ns=now)
            elif kind == "protect_at":
                pages.protect_at(
                    vpns, np.arange(vpns.size, dtype=np.int64) + now
                )
            elif kind == "unprotect":
                pages.unprotect(vpns)
            else:
                epoch_before = pages.epoch
                pages.move_to_tier(vpns, FAST_TIER)
                assert pages.epoch == epoch_before + 1
            assert pages.n_protected == int(pages.prot_none.sum())
            cached = pages.protected_pages()
            assert cached.size == pages.n_protected
            np.testing.assert_array_equal(
                cached, np.flatnonzero(pages.prot_none)
            )
