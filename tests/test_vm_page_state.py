"""Tests for the structure-of-arrays page state."""

import numpy as np
import pytest

from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.vm.page_state import NO_TIMESTAMP, PageState


class TestConstruction:
    def test_initial_state(self):
        pages = PageState(16)
        assert pages.n_pages == 16
        assert not pages.prot_none.any()
        assert not pages.accessed.any()
        assert (pages.scan_ts_ns == NO_TIMESTAMP).all()
        assert (pages.tier == SLOW_TIER).all()

    def test_zero_pages_is_legal(self):
        """A zero-page process (an empty arena segment) is valid; only
        negative sizes are rejected."""
        pages = PageState(0)
        assert pages.n_pages == 0
        assert pages.fast_page_fraction() == 0.0
        assert pages.protected_pages().size == 0
        with pytest.raises(ValueError):
            PageState(-1)


class TestProtection:
    def test_protect_stamps_time(self):
        pages = PageState(8)
        marked = pages.protect(np.array([1, 3]), now_ns=1000)
        assert marked == 2
        assert pages.prot_none[1] and pages.prot_none[3]
        assert pages.scan_ts_ns[1] == 1000
        assert pages.scan_ts_ns[2] == NO_TIMESTAMP

    def test_double_protect_keeps_first_timestamp(self):
        pages = PageState(8)
        pages.protect(np.array([2]), now_ns=100)
        marked = pages.protect(np.array([2]), now_ns=500)
        assert marked == 0
        assert pages.scan_ts_ns[2] == 100

    def test_unprotect(self):
        pages = PageState(8)
        pages.protect(np.array([4]), now_ns=10)
        pages.unprotect(np.array([4]))
        assert not pages.prot_none[4]
        # Scan timestamp survives the fault: CIT metadata is read later.
        assert pages.scan_ts_ns[4] == 10

    def test_protected_pages(self):
        pages = PageState(8)
        pages.protect(np.array([0, 5, 7]), now_ns=1)
        np.testing.assert_array_equal(pages.protected_pages(), [0, 5, 7])


class TestResidency:
    def test_move_to_tier(self):
        pages = PageState(8)
        pages.move_to_tier(np.array([0, 1]), FAST_TIER)
        assert pages.count_in_tier(FAST_TIER) == 2
        assert pages.count_in_tier(SLOW_TIER) == 6
        np.testing.assert_array_equal(pages.pages_in_tier(FAST_TIER), [0, 1])

    def test_fast_page_fraction(self):
        pages = PageState(10)
        pages.move_to_tier(np.arange(4), FAST_TIER)
        assert pages.fast_page_fraction() == pytest.approx(0.4)


class TestProtectAtDuplicates:
    def test_duplicate_vpns_count_once(self):
        """Regression: duplicated vpns in one protect_at batch must bump
        ``n_protected`` once per page, not once per occurrence."""
        pages = PageState(8)
        pages.protect_at(
            np.array([3, 3, 5, 3]), np.array([10, 20, 30, 40])
        )
        assert pages.n_protected == 2
        assert pages.n_protected == int(pages.prot_none.sum())
        np.testing.assert_array_equal(pages.protected_pages(), [3, 5])

    def test_last_duplicate_timestamp_wins(self):
        pages = PageState(8)
        pages.protect_at(
            np.array([3, 3, 5, 3]), np.array([10, 20, 30, 40])
        )
        assert pages.scan_ts_ns[3] == 40
        assert pages.scan_ts_ns[5] == 30

    def test_reprotect_overwrites_timestamp_without_recount(self):
        pages = PageState(8)
        pages.protect(np.array([2]), now_ns=100)
        pages.protect_at(np.array([2]), np.array([900]))
        assert pages.n_protected == 1
        assert pages.scan_ts_ns[2] == 900


class TestUnprotectResolved:
    def test_complementary_split_keeps_invariants(self):
        pages = PageState(16)
        pages.protect(np.array([1, 4, 7, 9, 12]), now_ns=5)
        snapshot = pages.protected_pages()
        touched = snapshot[[1, 3]]  # 4, 9
        remainder = snapshot[[0, 2, 4]]  # 1, 7, 12
        pages.unprotect_resolved(touched, remainder)
        assert pages.n_protected == 3
        assert not pages.prot_none[4] and not pages.prot_none[9]
        np.testing.assert_array_equal(
            pages.protected_pages(), [1, 7, 12]
        )
        np.testing.assert_array_equal(
            pages.protected_pages(), np.flatnonzero(pages.prot_none)
        )


class TestDeferredLedger:
    def test_defer_is_lazy_until_read(self):
        pages = PageState(8)
        probs = np.full(8, 1 / 8)
        pages.defer_accesses(probs, 100.0)
        assert pages.has_pending_accesses
        assert (pages._access_count == 0).all()  # not yet materialised
        np.testing.assert_allclose(pages.access_count, probs * 100.0)
        assert not pages.has_pending_accesses

    def test_same_distribution_runs_merge(self):
        pages = PageState(8)
        probs = np.full(8, 1 / 8)
        other = np.full(8, 1 / 8)
        pages.defer_accesses(probs, 10.0)
        pages.defer_accesses(probs, 20.0)  # same object: merges
        pages.defer_accesses(other, 5.0)  # equal values, new object
        assert len(pages._pending) == 2
        assert pages._pending[0][1] == 30.0

    def test_flush_is_idempotent(self):
        pages = PageState(8)
        probs = np.full(8, 1 / 8)
        pages.defer_accesses(probs, 16.0)
        pages.flush_accounting()
        pages.flush_accounting()
        np.testing.assert_allclose(pages.access_count, np.full(8, 2.0))


class TestMoveJournal:
    def test_epoch_bumps_once_per_move(self):
        pages = PageState(8)
        assert pages.epoch == 0
        pages.move_to_tier(np.array([0, 1, 2]), FAST_TIER)
        assert pages.epoch == 1
        pages.move_to_tier(np.array([1]), SLOW_TIER)
        assert pages.epoch == 2

    def test_moves_since_replays_deltas(self):
        pages = PageState(8)
        pages.move_to_tier(np.array([0, 1]), FAST_TIER)
        base = pages.epoch
        pages.move_to_tier(np.array([1, 2]), SLOW_TIER)
        entries = pages.moves_since(base)
        assert len(entries) == 1
        epoch, vpns, old_tiers, new_tier = entries[0]
        assert epoch == base + 1
        np.testing.assert_array_equal(vpns, [1, 2])
        np.testing.assert_array_equal(old_tiers, [FAST_TIER, SLOW_TIER])
        assert new_tier == SLOW_TIER

    def test_moves_since_current_epoch_is_empty(self):
        pages = PageState(8)
        pages.move_to_tier(np.array([3]), FAST_TIER)
        assert pages.moves_since(pages.epoch) == []

    def test_journal_caps_force_recount(self, monkeypatch):
        monkeypatch.setattr(PageState, "MOVE_LOG_CAP_PAGES", 4)
        pages = PageState(8)
        pages.move_to_tier(np.array([0, 1, 2]), FAST_TIER)
        pages.move_to_tier(np.array([3, 4]), FAST_TIER)
        # 5 journaled pages > cap 4: the oldest entry was dropped.
        assert pages.moves_since(0) is None
        assert pages.move_log_base == 1
        assert pages.moves_since(1) is not None

    def test_entry_cap_bounds_empty_moves(self, monkeypatch):
        monkeypatch.setattr(PageState, "MOVE_LOG_CAP_ENTRIES", 3)
        pages = PageState(8)
        for _ in range(10):
            pages.move_to_tier(np.empty(0, dtype=np.int64), FAST_TIER)
        assert len(pages._move_log) == 3
        assert pages.moves_since(0) is None


class TestWindowCounts:
    def test_clear(self):
        pages = PageState(4)
        pages.last_window_count[:] = 2.5
        pages.clear_window_counts()
        assert (pages.last_window_count == 0).all()

    def test_clear_flushes_pending_first(self):
        pages = PageState(4)
        probs = np.full(4, 0.25)
        pages.defer_accesses(probs, 8.0)
        pages.clear_window_counts()
        assert (pages.last_window_count == 0).all()
        # The closing window's accesses still reached the lifetime
        # counter before the window rolled.
        np.testing.assert_allclose(pages.access_count, np.full(4, 2.0))

    def test_sparse_clear_covers_candidate_set(self):
        pages = PageState(8)
        probs = np.zeros(8)
        probs[[2, 5]] = 0.5
        pages.defer_accesses(probs, 10.0)
        candidates = np.array([2, 5])  # covers every nonzero entry
        pages.clear_window_counts(candidates)
        assert (pages.last_window_count == 0).all()
        np.testing.assert_allclose(pages.access_count, probs * 10.0)

    def test_repr_mentions_counts(self):
        pages = PageState(4)
        assert "n_pages=4" in repr(pages)
