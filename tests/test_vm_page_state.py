"""Tests for the structure-of-arrays page state."""

import numpy as np
import pytest

from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.vm.page_state import NO_TIMESTAMP, PageState


class TestConstruction:
    def test_initial_state(self):
        pages = PageState(16)
        assert pages.n_pages == 16
        assert not pages.prot_none.any()
        assert not pages.accessed.any()
        assert (pages.scan_ts_ns == NO_TIMESTAMP).all()
        assert (pages.tier == SLOW_TIER).all()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PageState(0)


class TestProtection:
    def test_protect_stamps_time(self):
        pages = PageState(8)
        marked = pages.protect(np.array([1, 3]), now_ns=1000)
        assert marked == 2
        assert pages.prot_none[1] and pages.prot_none[3]
        assert pages.scan_ts_ns[1] == 1000
        assert pages.scan_ts_ns[2] == NO_TIMESTAMP

    def test_double_protect_keeps_first_timestamp(self):
        pages = PageState(8)
        pages.protect(np.array([2]), now_ns=100)
        marked = pages.protect(np.array([2]), now_ns=500)
        assert marked == 0
        assert pages.scan_ts_ns[2] == 100

    def test_unprotect(self):
        pages = PageState(8)
        pages.protect(np.array([4]), now_ns=10)
        pages.unprotect(np.array([4]))
        assert not pages.prot_none[4]
        # Scan timestamp survives the fault: CIT metadata is read later.
        assert pages.scan_ts_ns[4] == 10

    def test_protected_pages(self):
        pages = PageState(8)
        pages.protect(np.array([0, 5, 7]), now_ns=1)
        np.testing.assert_array_equal(pages.protected_pages(), [0, 5, 7])


class TestResidency:
    def test_move_to_tier(self):
        pages = PageState(8)
        pages.move_to_tier(np.array([0, 1]), FAST_TIER)
        assert pages.count_in_tier(FAST_TIER) == 2
        assert pages.count_in_tier(SLOW_TIER) == 6
        np.testing.assert_array_equal(pages.pages_in_tier(FAST_TIER), [0, 1])

    def test_fast_page_fraction(self):
        pages = PageState(10)
        pages.move_to_tier(np.arange(4), FAST_TIER)
        assert pages.fast_page_fraction() == pytest.approx(0.4)


class TestWindowCounts:
    def test_clear(self):
        pages = PageState(4)
        pages.last_window_count[:] = 2.5
        pages.clear_window_counts()
        assert (pages.last_window_count == 0).all()

    def test_repr_mentions_counts(self):
        pages = PageState(4)
        assert "n_pages=4" in repr(pages)
