"""Docs-consistency gate: the observability reference must be complete.

``docs/OBSERVABILITY.md`` promises to enumerate 100% of the event types
and metric names the code can emit.  These tests make that promise
load-bearing: adding an event or metric without documenting it fails CI,
as does leaving a stale name in the document after renaming it in the
catalogue.  A final check asserts every public definition under
``src/repro/obs/`` carries a docstring, backing the ruff pydocstyle
gate (which CI runs but local environments may lack).
"""

import ast
import re
from pathlib import Path

import pytest

from repro.obs.events import EVENT_SCHEMA, event_names
from repro.obs.metrics import METRIC_CATALOGUE, metric_names

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_PATH = REPO_ROOT / "docs" / "OBSERVABILITY.md"
OBS_SRC = REPO_ROOT / "src" / "repro" / "obs"
POLICY_SRC = REPO_ROOT / "src" / "repro" / "policies"

#: backticked names in the doc that look like catalogue entries
_DOTTED_NAME = re.compile(r"`([a-z_]+\.[a-z_]+)`")

#: dotted prefixes that are module/attribute references, not catalogue
#: names (e.g. ``repro.obs``, ``docs/OBSERVABILITY.md`` fragments)
_NON_CATALOGUE_PREFIXES = (
    "repro.", "docs.", "tests.", "scripts.", "np.", "numpy.",
    "tracer.", "result.", "hub.", "kernel.", "self.", "args.",
)


@pytest.fixture(scope="module")
def doc_text():
    """The observability reference document."""
    assert DOC_PATH.exists(), "docs/OBSERVABILITY.md is missing"
    return DOC_PATH.read_text(encoding="utf-8")


class TestEventCoverage:
    def test_every_event_type_documented(self, doc_text):
        missing = [
            name for name in event_names() if f"`{name}`" not in doc_text
        ]
        assert not missing, (
            f"events missing from docs/OBSERVABILITY.md: {missing}"
        )

    def test_every_event_field_documented(self, doc_text):
        missing = []
        for name, spec in EVENT_SCHEMA.items():
            # Each event's fields must appear after its heading, before
            # the next heading -- a field mentioned elsewhere does not
            # count as documenting this event.
            match = re.search(
                rf"### `{re.escape(name)}`\n(.*?)(?=\n### |\Z)",
                doc_text,
                re.DOTALL,
            )
            if match is None:
                missing.append((name, "<section>"))
                continue
            section = match.group(1)
            for field_name in spec.fields:
                if f"`{field_name}`" not in section:
                    missing.append((name, field_name))
        assert not missing, (
            f"event fields missing from their sections: {missing}"
        )

    def test_event_descriptions_have_modules(self):
        for name, spec in EVENT_SCHEMA.items():
            assert spec.module.startswith("repro."), name
            assert spec.description, name
            for field_name, field_spec in spec.fields.items():
                assert field_spec.unit, (name, field_name)
                assert field_spec.description, (name, field_name)


class TestMetricCoverage:
    def test_every_metric_documented(self, doc_text):
        missing = [
            name for name in metric_names() if f"`{name}`" not in doc_text
        ]
        assert not missing, (
            f"metrics missing from docs/OBSERVABILITY.md: {missing}"
        )

    def test_metric_specs_complete(self):
        for name, spec in METRIC_CATALOGUE.items():
            assert spec.kind in ("counter", "gauge", "histogram"), name
            assert spec.module.startswith("repro."), name
            assert spec.unit and spec.description, name
            if spec.kind == "histogram":
                assert len(spec.edges) >= 1, name

    def test_no_stale_names_in_doc(self, doc_text):
        """Dotted backticked names resembling catalogue entries must
        exist in a catalogue (catches renames that skip the doc)."""
        known = set(event_names()) | set(metric_names())
        prefixes = {name.split(".", 1)[0] for name in known}
        stale = []
        for candidate in set(_DOTTED_NAME.findall(doc_text)):
            if candidate in known:
                continue
            if candidate.startswith(_NON_CATALOGUE_PREFIXES):
                continue
            if candidate.split(".", 1)[0] in prefixes:
                stale.append(candidate)
        assert not stale, (
            f"docs/OBSERVABILITY.md mentions uncatalogued names: "
            f"{sorted(stale)}"
        )


class TestPolicyDocCoverage:
    """``docs/POLICIES.md`` documents exactly the registered policies."""

    @pytest.fixture(scope="class")
    def policies_doc(self):
        """The policy reference document."""
        path = REPO_ROOT / "docs" / "POLICIES.md"
        assert path.exists(), "docs/POLICIES.md is missing"
        return path.read_text(encoding="utf-8")

    @pytest.fixture(scope="class")
    def doc_sections(self, policies_doc):
        """Names carrying a ``### `name``` section in the document."""
        return re.findall(r"^### `([a-z0-9-]+)`$", policies_doc, re.M)

    def test_every_policy_has_a_section(self, doc_sections):
        from repro.policies.registry import policy_names

        missing = sorted(set(policy_names()) - set(doc_sections))
        assert not missing, (
            f"policies missing from docs/POLICIES.md: {missing}"
        )

    def test_every_section_names_a_policy(self, doc_sections):
        from repro.policies.registry import policy_names

        stale = sorted(set(doc_sections) - set(policy_names()))
        assert not stale, (
            f"docs/POLICIES.md documents unregistered policies: {stale}"
        )

    def test_sections_are_unique(self, doc_sections):
        assert len(doc_sections) == len(set(doc_sections))

    def test_linked_from_readme(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/POLICIES.md" in readme


class TestObsDocstrings:
    """Every public definition in repro.obs carries a docstring."""

    @staticmethod
    def _undocumented(path: Path):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        missing = []
        if ast.get_docstring(tree) is None:
            missing.append(f"{path.name}:module")

        def visit(node, qualname):
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    name = child.name
                    public = not name.startswith("_") or (
                        name.startswith("__") and name.endswith("__")
                    )
                    label = f"{qualname}{name}"
                    if public and ast.get_docstring(child) is None:
                        missing.append(f"{path.name}:{label}")
                    visit(child, f"{label}.")

        visit(tree, "")
        return missing

    def test_all_public_defs_documented(self):
        missing = []
        for path in sorted(OBS_SRC.glob("*.py")):
            missing.extend(self._undocumented(path))
        assert not missing, f"undocumented public APIs: {missing}"

    def test_all_public_policy_defs_documented(self):
        """The pydocstyle gate also covers ``src/repro/policies/``."""
        missing = []
        for path in sorted(POLICY_SRC.glob("*.py")):
            missing.extend(self._undocumented(path))
        assert not missing, f"undocumented policy APIs: {missing}"
