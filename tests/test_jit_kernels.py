"""The optional ``CHRONO_JIT`` kernels and their numpy fallbacks.

``repro.sim.jit`` resolves its kernel set lazily from the environment:
numpy is always the default and the reference; ``CHRONO_JIT=1`` swaps
in numba versions only when numba is importable, and degrades silently
to numpy when it is not (numba is never a required dependency).  When
the numba kernels are active they must be bit-identical to the numpy
path -- the ledger fold and the fault-partition bisect sit on the
engine's equivalence-gated trajectory.
"""

import numpy as np
import pytest

from repro.sim import jit

try:
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False


@pytest.fixture(autouse=True)
def _clean_resolution(monkeypatch):
    """Each test resolves the flag from its own environment."""
    jit.reset()
    yield
    jit.reset()


def sample_run(rng, n_pages=257):
    probs = rng.random(n_pages)
    probs /= probs.sum()
    access = rng.random(n_pages) * 100.0
    window = rng.random(n_pages) * 10.0
    return probs, access, window


class TestNumpyDefault:
    def test_flag_unset_uses_numpy(self, monkeypatch):
        monkeypatch.delenv("CHRONO_JIT", raising=False)
        assert not jit.jit_enabled()

    def test_flag_zero_uses_numpy(self, monkeypatch):
        monkeypatch.setenv("CHRONO_JIT", "0")
        assert not jit.jit_enabled()

    def test_ledger_fold_accumulates_both_counters(self, monkeypatch):
        monkeypatch.delenv("CHRONO_JIT", raising=False)
        rng = np.random.default_rng(0)
        probs, access, window = sample_run(rng)
        base_access, base_window = access.copy(), window.copy()
        buf = np.empty_like(probs)
        jit.ledger_fold(probs, 50.0, access, window, buf)
        np.testing.assert_array_equal(access, base_access + probs * 50.0)
        np.testing.assert_array_equal(window, base_window + probs * 50.0)

    def test_searchsorted_right_matches_numpy_contract(self, monkeypatch):
        monkeypatch.delenv("CHRONO_JIT", raising=False)
        cdf = np.array([0.1, 0.4, 0.4, 0.9, 1.0])
        values = np.array([0.0, 0.1, 0.4, 0.95, 1.0])
        np.testing.assert_array_equal(
            jit.searchsorted_right(cdf, values),
            np.searchsorted(cdf, values, side="right"),
        )

    def test_price_fold_masked_rows_only(self, monkeypatch):
        """The masked pricing fold writes exactly the indexed rows,
        with the reference tier-order accumulation (coef = rf*read +
        wf*write, then *mass, summed per tier)."""
        monkeypatch.delenv("CHRONO_JIT", raising=False)
        rng = np.random.default_rng(4)
        n_segs, n_tiers = 13, 3
        mass = rng.random((n_segs, n_tiers)) * 5.0
        wf = rng.random(n_segs)
        rf = 1.0 - wf
        read_lats = rng.random(n_tiers) * 100.0
        write_lats = rng.random(n_tiers) * 300.0
        idx = np.array([0, 2, 5, 11], dtype=np.int64)
        out = np.full(n_segs, -1.0)
        jit.price_fold(mass, rf, wf, read_lats, write_lats, idx, out)
        expected = np.full(n_segs, -1.0)
        acc = np.zeros(idx.size)
        for tier_id in range(n_tiers):
            coef = rf[idx] * read_lats[tier_id]
            coef += wf[idx] * write_lats[tier_id]
            coef *= mass[idx, tier_id]
            acc += coef
        expected[idx] = acc
        np.testing.assert_array_equal(out, expected)
        assert out[1] == -1.0  # untouched rows keep their value


class TestGracefulDegradation:
    @pytest.mark.skipif(
        HAVE_NUMBA, reason="degradation path needs numba absent"
    )
    def test_flag_without_numba_falls_back_to_numpy(self, monkeypatch):
        """CHRONO_JIT=1 on a machine without numba must not raise and
        must leave the numpy kernels active."""
        monkeypatch.setenv("CHRONO_JIT", "1")
        assert not jit.jit_enabled()
        rng = np.random.default_rng(1)
        probs, access, window = sample_run(rng)
        jit.ledger_fold(probs, 10.0, access, window, np.empty_like(probs))

    def test_reset_rereads_environment(self, monkeypatch):
        monkeypatch.setenv("CHRONO_JIT", "0")
        assert not jit.jit_enabled()
        monkeypatch.setenv("CHRONO_JIT", "1")
        # Cached resolution: the flag change is invisible until reset.
        assert not jit.jit_enabled()
        jit.reset()
        assert jit.jit_enabled() == HAVE_NUMBA


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestNumbaBitIdentity:
    """Active only when numba is importable (CI runs the suite once
    with CHRONO_JIT=1 when it is); the compiled kernels must reproduce
    the numpy results bit for bit."""

    def test_ledger_fold_bit_identical(self, monkeypatch):
        rng = np.random.default_rng(2)
        probs, access, window = sample_run(rng, n_pages=4_099)
        buf = np.empty_like(probs)
        ref_access, ref_window = access.copy(), window.copy()
        monkeypatch.setenv("CHRONO_JIT", "0")
        jit.ledger_fold(probs, 123.456, ref_access, ref_window, buf)
        jit.reset()
        monkeypatch.setenv("CHRONO_JIT", "1")
        assert jit.jit_enabled()
        jit.ledger_fold(probs, 123.456, access, window, buf)
        np.testing.assert_array_equal(access, ref_access)
        np.testing.assert_array_equal(window, ref_window)

    def test_searchsorted_right_bit_identical(self, monkeypatch):
        rng = np.random.default_rng(3)
        cdf = np.cumsum(rng.random(1_000))
        values = rng.random(10_000) * float(cdf[-1]) * 1.05
        monkeypatch.setenv("CHRONO_JIT", "1")
        assert jit.jit_enabled()
        np.testing.assert_array_equal(
            jit.searchsorted_right(cdf, values),
            np.searchsorted(cdf, values, side="right"),
        )

    def test_price_fold_bit_identical(self, monkeypatch):
        rng = np.random.default_rng(5)
        n_segs, n_tiers = 1_025, 4
        mass = rng.random((n_segs, n_tiers)) * 10.0
        wf = rng.random(n_segs)
        rf = 1.0 - wf
        read_lats = rng.random(n_tiers) * 100.0
        write_lats = rng.random(n_tiers) * 300.0
        idx = np.flatnonzero(rng.random(n_segs) < 0.5)
        ref = np.zeros(n_segs)
        out = np.zeros(n_segs)
        monkeypatch.setenv("CHRONO_JIT", "0")
        jit.price_fold(mass, rf, wf, read_lats, write_lats, idx, ref)
        jit.reset()
        monkeypatch.setenv("CHRONO_JIT", "1")
        assert jit.jit_enabled()
        jit.price_fold(mass, rf, wf, read_lats, write_lats, idx, out)
        np.testing.assert_array_equal(out, ref)
