"""Tests for the Kernel facade: registration, placement, daemons."""

import numpy as np
import pytest

from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.sim.timeunits import SECOND
from repro.vm.fault import FaultBatch
from tests.conftest import make_kernel, make_process


class RecordingPolicy:
    """Policy stub that records the hooks the kernel invokes."""

    name = "recording"

    def __init__(self):
        self.attached = None
        self.faults = []
        self.ages = []
        self.started = False

    def attach(self, kernel):
        self.attached = kernel

    def start(self):
        self.started = True

    def on_fault(self, process, batch):
        self.faults.append((process.pid, batch.n_faults))

    def on_lru_age(self, process, touched, now_ns):
        self.ages.append((process.pid, now_ns))


class TestRegistration:
    def test_register(self, kernel, process):
        kernel.register_process(process)
        assert kernel.processes == [process]

    def test_duplicate_pid_rejected(self, kernel):
        kernel.register_process(make_process(pid=1))
        with pytest.raises(ValueError):
            kernel.register_process(make_process(pid=1))

    def test_register_with_cgroup(self, kernel):
        process = make_process()
        kernel.register_process(process, cgroup="tenant-1")
        assert kernel.cgroups.get("tenant-1").processes == [process]


class TestInitialPlacement:
    def test_fast_tier_filled_to_watermark(self):
        kernel = make_kernel(fast_pages=100, slow_pages=400)
        process = make_process(n_pages=300)
        kernel.register_process(process)
        kernel.allocate_initial_placement(chunk_pages=10)
        fast_used = kernel.machine.fast.used_pages
        assert fast_used == 100 - kernel.watermarks.high_pages
        assert process.pages.count_in_tier(FAST_TIER) == fast_used
        assert kernel.machine.slow.used_pages == 300 - fast_used

    def test_round_robin_is_fair(self):
        kernel = make_kernel(fast_pages=100, slow_pages=400)
        a = make_process(pid=1, n_pages=120)
        b = make_process(pid=2, n_pages=120)
        kernel.register_process(a)
        kernel.register_process(b)
        kernel.allocate_initial_placement(chunk_pages=4)
        fast_a = a.pages.count_in_tier(FAST_TIER)
        fast_b = b.pages.count_in_tier(FAST_TIER)
        assert abs(fast_a - fast_b) <= 4

    def test_oversubscription_rejected(self):
        kernel = make_kernel(fast_pages=10, slow_pages=10)
        kernel.register_process(make_process(n_pages=100))
        with pytest.raises(MemoryError):
            kernel.allocate_initial_placement()

    def test_bad_chunk_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.allocate_initial_placement(chunk_pages=0)

    def test_frame_accounting_consistent(self):
        kernel = make_kernel(fast_pages=64, slow_pages=256)
        procs = [make_process(pid=i, n_pages=50) for i in range(4)]
        for proc in procs:
            kernel.register_process(proc)
        kernel.allocate_initial_placement()
        fast_resident = sum(
            p.pages.count_in_tier(FAST_TIER) for p in procs
        )
        slow_resident = sum(
            p.pages.count_in_tier(SLOW_TIER) for p in procs
        )
        assert fast_resident == kernel.machine.fast.used_pages
        assert slow_resident == kernel.machine.slow.used_pages


class TestPolicyPlumbing:
    def test_set_policy_attaches(self, kernel):
        policy = RecordingPolicy()
        kernel.set_policy(policy)
        assert policy.attached is kernel

    def test_start_starts_policy(self, kernel):
        policy = RecordingPolicy()
        kernel.set_policy(policy)
        kernel.start()
        assert policy.started

    def test_start_idempotent(self, kernel):
        kernel.start()
        pending = len(kernel.scheduler)
        kernel.start()
        assert len(kernel.scheduler) == pending

    def test_deliver_faults_accounts_and_forwards(self, kernel):
        policy = RecordingPolicy()
        kernel.set_policy(policy)
        process = make_process()
        kernel.register_process(process)
        batch = FaultBatch(
            pid=process.pid,
            vpns=np.array([1, 2]),
            fault_ts_ns=np.array([10, 20]),
            cit_ns=np.array([5, 5]),
        )
        kernel.deliver_faults(process, batch)
        assert kernel.stats.hint_faults == 2
        assert process.stats.hint_faults == 2
        assert process.pending_kernel_ns > 0
        assert policy.faults == [(process.pid, 2)]

    def test_empty_fault_batch_is_noop(self, kernel):
        policy = RecordingPolicy()
        kernel.set_policy(policy)
        process = make_process()
        kernel.register_process(process)
        kernel.deliver_faults(process, FaultBatch.empty(process.pid))
        assert policy.faults == []


class TestAgingDaemon:
    def test_aging_fires_and_notifies_policy(self):
        kernel = make_kernel(aging_period_ns=SECOND)
        policy = RecordingPolicy()
        kernel.set_policy(policy)
        process = make_process()
        kernel.register_process(process)
        kernel.start()
        kernel.advance_to(2 * SECOND + 1)
        assert [pid for pid, _ in policy.ages] == [process.pid] * 2

    def test_aging_charges_kernel_time(self):
        kernel = make_kernel(aging_period_ns=SECOND)
        process = make_process()
        kernel.register_process(process)
        kernel.start()
        kernel.advance_to(SECOND + 1)
        assert kernel.stats.kernel_time_ns > 0


class TestAdvanceTo:
    def test_fires_events_in_time_order(self, kernel):
        fired = []
        kernel.scheduler.schedule(100, lambda t: fired.append(t))
        kernel.scheduler.schedule(50, lambda t: fired.append(t))
        kernel.advance_to(200)
        assert fired == [50, 100]
        assert kernel.clock.now == 200

    def test_clock_does_not_pass_target(self, kernel):
        kernel.scheduler.schedule(300, lambda t: None)
        kernel.advance_to(200)
        assert kernel.clock.now == 200
        assert len(kernel.scheduler) == 1
