"""Tests for vmstat counters and time-series recorders."""

import pytest

from repro.kernel.stats import GlobalStats, SeriesBank, TimeSeries


class TestGlobalStats:
    def test_snapshot_roundtrip(self):
        stats = GlobalStats()
        stats.pgpromote = 10
        stats.kernel_time_ns = 123.0
        snap = stats.snapshot()
        assert snap["pgpromote"] == 10
        assert snap["kernel_time_ns"] == 123.0

    def test_snapshot_is_copy(self):
        stats = GlobalStats()
        snap = stats.snapshot()
        stats.pgpromote = 5
        assert snap["pgpromote"] == 0


class TestTimeSeries:
    def test_record_and_read(self):
        series = TimeSeries("x")
        series.record(0, 1.0)
        series.record(10, 2.0)
        assert len(series) == 2
        assert series.times == (0, 10)
        assert series.values == (1.0, 2.0)

    def test_monotonic_time_enforced(self):
        series = TimeSeries("x")
        series.record(10, 1.0)
        with pytest.raises(ValueError):
            series.record(5, 2.0)

    def test_equal_times_allowed(self):
        series = TimeSeries("x")
        series.record(10, 1.0)
        series.record(10, 2.0)
        assert len(series) == 2

    def test_last(self):
        series = TimeSeries("x")
        series.record(3, 7.0)
        assert series.last() == (3, 7.0)

    def test_last_empty_raises(self):
        with pytest.raises(IndexError):
            TimeSeries("x").last()

    def test_mean(self):
        series = TimeSeries("x")
        for i in range(4):
            series.record(i, float(i))
        assert series.mean() == pytest.approx(1.5)

    def test_mean_empty(self):
        assert TimeSeries("x").mean() == 0.0

    def test_tail_mean_converged_value(self):
        series = TimeSeries("x")
        # Transient then convergence to 100.
        for i, value in enumerate([500, 400, 300, 100, 100, 100, 100, 100]):
            series.record(i, value)
        assert series.tail_mean(0.5) == pytest.approx(100.0)

    def test_tail_mean_bad_fraction(self):
        with pytest.raises(ValueError):
            TimeSeries("x").tail_mean(0)


class TestSeriesBank:
    def test_created_on_first_use(self):
        bank = SeriesBank()
        bank.record("a", 0, 1.0)
        assert "a" in bank
        assert bank.series("a").values == (1.0,)

    def test_names_sorted(self):
        bank = SeriesBank()
        bank.record("z", 0, 1.0)
        bank.record("a", 0, 1.0)
        assert bank.names() == ["a", "z"]

    def test_same_series_returned(self):
        bank = SeriesBank()
        assert bank.series("s") is bank.series("s")
