"""Tests for the shared-memory table transport.

The arena must round-trip arrays bit-exactly through segments, honour
the inline-size threshold and the ``CHRONO_NO_SHM`` kill switch, and
seed the worker-side table cache so attached workloads skip rebuilds.
"""

import numpy as np
import pytest

from repro.harness.shm import (
    DEFAULT_SHM_MIN_BYTES,
    SharedTableArena,
    attach_tables,
    shm_disabled_by_env,
    shm_min_bytes,
)
from repro.workloads.base import (
    cached_tables,
    reset_table_cache,
    table_cache_stats,
    table_key,
)


@pytest.fixture(autouse=True)
def clean_table_cache():
    reset_table_cache()
    yield
    reset_table_cache()


def make_entries():
    return {
        table_key("fake", n=1): {
            "big": np.arange(4096, dtype=np.float64),
            "small": np.array([1.0, 2.0, 3.0]),
        }
    }


class TestArenaExport:
    def test_threshold_splits_shm_and_inline(self):
        arena = SharedTableArena()
        try:
            manifest = arena.export(make_entries(), min_bytes=1024)
            by_name = {item["name"]: item for item in manifest}
            assert "shm" in by_name["big"]
            assert "data" in by_name["small"]
            assert arena.n_segments == 1
            assert arena.shared_bytes == 4096 * 8
            assert arena.inline_bytes == 3 * 8
        finally:
            arena.close()

    def test_everything_inline_below_threshold(self):
        arena = SharedTableArena()
        try:
            manifest = arena.export(
                make_entries(), min_bytes=10**9
            )
            assert all("data" in item for item in manifest)
            assert arena.n_segments == 0
        finally:
            arena.close()

    def test_no_shm_env_forces_inline(self, monkeypatch):
        monkeypatch.setenv("CHRONO_NO_SHM", "1")
        assert shm_disabled_by_env()
        arena = SharedTableArena()
        try:
            manifest = arena.export(make_entries(), min_bytes=0)
            assert all("data" in item for item in manifest)
            assert arena.n_segments == 0
        finally:
            arena.close()

    def test_min_bytes_env(self, monkeypatch):
        monkeypatch.setenv("CHRONO_SHM_MIN_BYTES", "123")
        assert shm_min_bytes() == 123
        monkeypatch.setenv("CHRONO_SHM_MIN_BYTES", "junk")
        assert shm_min_bytes() == DEFAULT_SHM_MIN_BYTES

    def test_close_is_idempotent(self):
        arena = SharedTableArena()
        arena.export(make_entries(), min_bytes=0)
        arena.close()
        arena.close()
        assert arena.n_segments == 0


class TestAttach:
    def test_roundtrip_seeds_table_cache(self):
        entries = make_entries()
        [key] = entries
        arena = SharedTableArena()
        try:
            manifest = arena.export(entries, min_bytes=1024)
            reset_table_cache()
            mapped = attach_tables(manifest)
            assert mapped == 4096 * 8
            assert table_cache_stats()["entries"] == 1

            # The attached tables are served as cache hits, bit-exact.
            calls = []

            def builder():
                calls.append(1)
                return {}

            tables = cached_tables(key, builder)
            assert calls == []  # never rebuilt
            np.testing.assert_array_equal(
                tables["big"], entries[key]["big"]
            )
            np.testing.assert_array_equal(
                tables["small"], entries[key]["small"]
            )
            assert not tables["big"].flags.writeable
        finally:
            arena.close()

    def test_inline_manifest_attaches_without_segments(self):
        entries = make_entries()
        [key] = entries
        arena = SharedTableArena()
        try:
            manifest = arena.export(entries, min_bytes=10**9)
            reset_table_cache()
            assert attach_tables(manifest) == 0
            tables = cached_tables(key, lambda: {})
            np.testing.assert_array_equal(
                tables["big"], entries[key]["big"]
            )
        finally:
            arena.close()

    def test_missing_segment_skips_entry(self):
        manifest = [
            {
                "key": "k",
                "name": "gone",
                "shm": "chrono-test-no-such-segment",
                "dtype": "<f8",
                "shape": [4],
            }
        ]
        reset_table_cache()
        assert attach_tables(manifest) == 0
        assert table_cache_stats()["entries"] == 0
