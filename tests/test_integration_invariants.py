"""End-to-end invariant tests: full runs under every policy must keep the
machine's books consistent."""

import numpy as np
import pytest

from repro.harness.experiments import (
    EVALUATED_POLICIES,
    StandardSetup,
    pmbench_processes,
)
from repro.harness.runner import run_experiment
from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.sim.timeunits import SECOND


def small_setup():
    return StandardSetup(
        fast_pages=512,
        slow_pages=4_096,
        duration_ns=6 * SECOND,
        page_scale=8,
        seed=3,
    )


@pytest.fixture(scope="module", params=EVALUATED_POLICIES)
def run_result(request):
    setup = small_setup()
    processes = pmbench_processes(
        setup, n_procs=3, pages_per_proc=512
    )
    return run_experiment(
        processes,
        setup.build_policy(request.param),
        setup.run_config(),
    )


class TestFrameConservation:
    def test_tier_usage_matches_residency(self, run_result):
        kernel = run_result.kernel
        for tier_id in (FAST_TIER, SLOW_TIER):
            resident = sum(
                p.pages.count_in_tier(tier_id)
                for p in kernel.processes
            )
            assert resident == kernel.machine.tiers[tier_id].used_pages

    def test_every_page_resides_somewhere(self, run_result):
        for process in run_result.kernel.processes:
            tiers = process.pages.tier
            assert np.isin(tiers, [FAST_TIER, SLOW_TIER]).all()

    def test_fast_tier_never_oversubscribed(self, run_result):
        fast = run_result.kernel.machine.fast
        assert 0 <= fast.used_pages <= fast.capacity_pages


class TestAccountingConsistency:
    def test_promotions_and_demotions_match_process_stats(
        self, run_result
    ):
        kernel = run_result.kernel
        assert kernel.stats.pgpromote == sum(
            p.stats.pages_promoted for p in kernel.processes
        )
        assert kernel.stats.pgdemote == sum(
            p.stats.pages_demoted for p in kernel.processes
        )

    def test_fmar_bounds(self, run_result):
        assert 0.0 <= run_result.fmar <= 1.0
        for entry in run_result.per_process:
            assert 0.0 <= entry["fmar"] <= 1.0

    def test_time_budget_respected(self, run_result):
        """Per-process CPU time never exceeds wall time (single thread
        per process)."""
        wall = run_result.duration_ns
        for process in run_result.kernel.processes:
            assert process.stats.total_time_ns <= wall * 1.02

    def test_hint_faults_match(self, run_result):
        kernel = run_result.kernel
        assert kernel.stats.hint_faults == sum(
            p.stats.hint_faults for p in kernel.processes
        )

    def test_latency_mass_matches_accesses(self, run_result):
        total_accesses = sum(
            p.stats.accesses for p in run_result.kernel.processes
        )
        assert run_result.engine.latency.total == pytest.approx(
            total_accesses, rel=1e-6
        )


class TestDeterminism:
    def test_same_seed_same_result(self):
        def one():
            setup = small_setup()
            processes = pmbench_processes(
                setup, n_procs=2, pages_per_proc=256
            )
            return run_experiment(
                processes,
                setup.build_policy("chrono"),
                setup.run_config(),
            )

        a, b = one(), one()
        assert a.throughput_per_sec == b.throughput_per_sec
        assert a.fmar == b.fmar
        assert a.stats == b.stats

    def test_different_seed_differs(self):
        def one(seed):
            setup = small_setup()
            setup.seed = seed
            processes = pmbench_processes(
                setup, n_procs=2, pages_per_proc=256
            )
            return run_experiment(
                processes,
                setup.build_policy("chrono"),
                setup.run_config(),
            )

        assert one(1).throughput_per_sec != one(2).throughput_per_sec
