"""Tests for identification-quality metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    f1_score,
    fast_tier_access_ratio,
    normalized,
    page_promotion_ratio,
    precision_recall,
    top_fraction_mask,
)


class TestPrecisionRecall:
    def test_perfect(self):
        truth = np.array([True, True, False, False])
        assert precision_recall(truth, truth) == (1.0, 1.0)

    def test_half_precision(self):
        truth = np.array([True, False, False, False])
        pred = np.array([True, True, False, False])
        precision, recall = precision_recall(truth, pred)
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(1.0)

    def test_half_recall(self):
        truth = np.array([True, True, False, False])
        pred = np.array([True, False, False, False])
        precision, recall = precision_recall(truth, pred)
        assert precision == pytest.approx(1.0)
        assert recall == pytest.approx(0.5)

    def test_weights_shift_score(self):
        truth = np.array([True, False])
        pred = np.array([True, True])
        weights = np.array([9.0, 1.0])
        precision, _ = precision_recall(truth, pred, weights)
        assert precision == pytest.approx(0.9)

    def test_empty_prediction(self):
        truth = np.array([True, False])
        pred = np.array([False, False])
        precision, recall = precision_recall(truth, pred)
        assert precision == 0.0 and recall == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            precision_recall(np.array([True]), np.array([True, False]))


class TestF1:
    def test_perfect(self):
        truth = np.array([True, False])
        assert f1_score(truth, truth) == pytest.approx(1.0)

    def test_zero_when_no_overlap(self):
        truth = np.array([True, False])
        pred = np.array([False, True])
        assert f1_score(truth, pred) == 0.0

    def test_harmonic_mean(self):
        truth = np.array([True, True, False, False])
        pred = np.array([True, False, True, False])
        # precision = recall = 0.5 -> F1 = 0.5
        assert f1_score(truth, pred) == pytest.approx(0.5)


class TestRatios:
    def test_ppr(self):
        assert page_promotion_ratio(25, 100) == pytest.approx(0.25)

    def test_ppr_zero_denominator(self):
        assert page_promotion_ratio(5, 0) == 0.0

    def test_ppr_negative_rejected(self):
        with pytest.raises(ValueError):
            page_promotion_ratio(-1, 10)

    def test_fmar(self):
        assert fast_tier_access_ratio(77, 100) == pytest.approx(0.77)

    def test_fmar_zero(self):
        assert fast_tier_access_ratio(0, 0) == 0.0

    def test_fmar_overflow_rejected(self):
        with pytest.raises(ValueError):
            fast_tier_access_ratio(11, 10)


class TestHelpers:
    def test_top_fraction_mask(self):
        mask = top_fraction_mask(np.array([5.0, 1.0, 9.0, 2.0]), 0.5)
        np.testing.assert_array_equal(mask, [True, False, True, False])

    def test_top_fraction_at_least_one(self):
        assert top_fraction_mask(np.ones(100), 0.001).sum() == 1

    def test_top_fraction_bad(self):
        with pytest.raises(ValueError):
            top_fraction_mask(np.ones(4), 0)

    def test_normalized(self):
        np.testing.assert_allclose(
            normalized([2.0, 4.0, 6.0]), [1.0, 2.0, 3.0]
        )

    def test_normalized_other_baseline(self):
        np.testing.assert_allclose(
            normalized([2.0, 4.0], baseline_index=1), [0.5, 1.0]
        )

    def test_normalized_zero_baseline(self):
        with pytest.raises(ValueError):
            normalized([0.0, 1.0])
