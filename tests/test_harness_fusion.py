"""Quantum fusion: fused stepping matches per-quantum stepping.

The engine may merge a run of steady-state quanta into one macro-quantum
(see ``docs/SIMULATION.md``).  The equivalence contract has two levels:

1. when fusion never engages (a ``needs_per_quantum`` policy, or hard
   events every quantum), the fused engine executes the exact
   per-quantum code path -- results are *bit-identical* to
   ``fusion=False``;
2. when fusion does engage, the Poisson-merged fault draw and folded
   ledger runs are exact in distribution but consume the random stream
   differently -- headline metrics must agree within the same tolerance
   the fast/reference path comparison uses.
"""

import pytest

from repro.harness.experiments import StandardSetup, build_fleet
from repro.harness.runner import run_experiment
from repro.obs import ObsHub
from repro.sim.timeunits import SECOND

ALL_POLICIES = [
    "linux-nb",
    "tpp",
    "multiclock",
    "memtis",
    "telescope",
    "chrono",
    "nomad",
    "tierbpf",
    "arms",
    "jenga",
]


def run_policy(policy_name, fusion, obs=None, needs_per_quantum=False):
    setup = StandardSetup(duration_ns=2 * SECOND)
    policy = setup.build_policy(policy_name)
    if needs_per_quantum:
        policy.needs_per_quantum = True
    processes = build_fleet(
        setup, "pmbench", n_procs=2, pages_per_proc=1024
    )
    return run_experiment(
        processes, policy, setup.run_config(fusion=fusion), obs=obs
    )


class TestFusedVsPerQuantum:
    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    def test_statistical_equivalence(self, policy_name):
        """Fused and per-quantum runs agree on the headline metrics
        within the engine-equivalence tolerance for every policy."""
        fused = run_policy(policy_name, fusion=True)
        stepped = run_policy(policy_name, fusion=False)
        assert fused.throughput_per_sec == pytest.approx(
            stepped.throughput_per_sec, rel=0.02
        )
        assert fused.fmar == pytest.approx(
            stepped.fmar, rel=0.02, abs=1e-4
        )


class TestBitIdentityWhenDisengaged:
    def test_needs_per_quantum_policy_is_bitwise_identical(self):
        """A ``needs_per_quantum`` policy never fuses: the engine runs
        the exact per-quantum path, so the trajectory is bit-identical
        to an explicit ``fusion=False`` run."""
        hub = ObsHub.create(metrics=True)
        fused = run_policy(
            "memtis", fusion=True, obs=hub, needs_per_quantum=True
        )
        stepped = run_policy("memtis", fusion=False)
        assert (
            fused.throughput_per_sec == stepped.throughput_per_sec
        )
        assert fused.fmar == stepped.fmar
        counters = fused.metrics["counters"]
        assert counters.get("engine.fused_quanta", 0) == 0

    def test_telescope_window_never_fuses(self):
        """The standard telescope config schedules a profiling event
        every quantum, capping the horizon at 1 -- fusion stays
        disengaged and the run is bit-identical."""
        hub = ObsHub.create(metrics=True)
        fused = run_policy("telescope", fusion=True, obs=hub)
        stepped = run_policy("telescope", fusion=False)
        assert (
            fused.throughput_per_sec == stepped.throughput_per_sec
        )
        assert fused.fmar == stepped.fmar
        assert (
            fused.metrics["counters"].get("engine.fused_quanta", 0) == 0
        )


class TestFusionEngagement:
    def test_memtis_steady_state_fuses(self):
        """Memtis on stationary pmbench reaches steady state quickly;
        the engine must actually merge quanta, and the obs counters
        must reconcile (steps + extra fused quanta == total quanta)."""
        hub = ObsHub.create(metrics=True)
        result = run_policy("memtis", fusion=True, obs=hub)
        counters = result.metrics["counters"]
        fused_quanta = counters.get("engine.fused_quanta", 0)
        fused_steps = counters.get("engine.fused_steps", 0)
        assert fused_quanta > 0
        assert 0 < fused_steps < fused_quanta
        gauges = result.metrics["gauges"]
        assert 0 < gauges["engine.fusion_ratio"] <= 1

    def test_no_fusion_flag_disables_fusion(self):
        hub = ObsHub.create(metrics=True)
        result = run_policy("memtis", fusion=False, obs=hub)
        assert (
            result.metrics["counters"].get("engine.fused_quanta", 0)
            == 0
        )
