"""Tests for the NUMA-hint fault path and CIT computation."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams
from repro.vm.fault import FaultBatch, take_hint_faults
from tests.conftest import make_process


@pytest.fixture
def rng():
    return RngStreams(123).get("faults")


class TestFaultBatch:
    def test_empty(self):
        batch = FaultBatch.empty(pid=7)
        assert batch.n_faults == 0
        assert batch.pid == 7

    def test_parallel_arrays_enforced(self):
        with pytest.raises(ValueError):
            FaultBatch(
                pid=1,
                vpns=np.array([1, 2]),
                fault_ts_ns=np.array([5]),
                cit_ns=np.array([1, 2]),
            )


class TestTakeHintFaults:
    def test_no_touched_pages(self, process, rng):
        batch = take_hint_faults(process, np.array([]), 0, 1000, rng)
        assert batch.n_faults == 0

    def test_cit_is_fault_minus_scan(self, process, rng):
        process.pages.protect(np.array([3]), now_ns=1_000)
        batch = take_hint_faults(
            process, np.array([3]), quantum_start_ns=5_000,
            quantum_len_ns=1_000, rng=rng,
        )
        assert batch.n_faults == 1
        assert batch.cit_ns[0] == batch.fault_ts_ns[0] - 1_000
        assert 5_000 <= batch.fault_ts_ns[0] < 6_000

    def test_fault_clears_protection_and_sets_accessed(self, process, rng):
        process.pages.protect(np.array([2, 4]), now_ns=0)
        take_hint_faults(process, np.array([2, 4]), 100, 50, rng)
        assert not process.pages.prot_none[[2, 4]].any()
        assert process.pages.accessed[[2, 4]].all()

    def test_unscanned_page_gets_sentinel_cit(self, process, rng):
        # A page touched while protected but never stamped (no scan ts).
        process.pages.prot_none[5] = True  # bypass protect() on purpose
        batch = take_hint_faults(process, np.array([5]), 100, 50, rng)
        assert batch.cit_ns[0] == -1

    def test_fault_times_within_quantum(self, process, rng):
        vpns = np.arange(10)
        process.pages.protect(vpns, now_ns=0)
        batch = take_hint_faults(process, vpns, 1_000, 500, rng)
        assert (batch.fault_ts_ns >= 1_000).all()
        assert (batch.fault_ts_ns < 1_500).all()

    def test_cit_statistics_uniform_over_period(self, rng):
        """Scanning at a random point of a page's access period yields CIT
        values spread over the quantum -- the statistical basis of CIT."""
        process = make_process(n_pages=512)
        vpns = np.arange(512)
        process.pages.protect(vpns, now_ns=0)
        batch = take_hint_faults(process, vpns, 0, 10_000, rng)
        # Mean of Uniform[0, 10000) is ~5000.
        assert 4_000 < batch.cit_ns.mean() < 6_000
