"""Cross-process arena stepping: equivalence with the per-process path.

The arena (``repro.harness.arena``) executes each quantum as one
batched array program over the concatenated fleet.  Its equivalence
contract (``docs/SIMULATION.md`` section 7) has two levels:

1. a *single-process* arena executes the same IEEE-754 operations in
   the same order as the per-process fast path -- bit-identical;
2. *multi-process* arenas share one aggregate fault stream (the
   ``engine.arena`` RNG) instead of per-process streams, and deliver
   every segment's faults at the quantum boundary -- statistically
   equivalent (same laws), not bit for bit.
"""

import numpy as np
import pytest

from repro.harness.engine import QuantumEngine
from repro.harness.experiments import StandardSetup, build_fleet
from repro.harness.runner import run_experiment
from repro.obs import ObsHub
from repro.policies.base import TieringPolicy
from repro.sim.rng import RngStreams
from repro.sim.timeunits import MILLISECOND, SECOND
from repro.vm.process import SimProcess
from tests.conftest import make_kernel, make_process

#: every registered policy (the Table 1 roster): single-process arena
#: bit-identity and multi-process statistical equivalence must hold for
#: all of them
ALL_POLICIES = [
    "linux-nb",
    "autotiering",
    "tpp",
    "multiclock",
    "memtis",
    "telescope",
    "flexmem",
    "chrono",
    "nomad",
    "tierbpf",
    "arms",
    "jenga",
]


def run_policy(
    policy_name,
    arena,
    n_procs=2,
    pages_per_proc=1024,
    fusion=False,
    obs=None,
    seed=0,
):
    setup = StandardSetup(duration_ns=2 * SECOND, seed=seed)
    policy = setup.build_policy(policy_name)
    processes = build_fleet(
        setup, "pmbench", n_procs=n_procs, pages_per_proc=pages_per_proc
    )
    return run_experiment(
        processes,
        policy,
        setup.run_config(arena=arena, fusion=fusion),
        obs=obs,
    )


class TestSingleProcessBitIdentity:
    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    def test_single_segment_matches_reference_exactly(self, policy_name):
        """A one-process arena delegates fault draws to the process's
        own stream and prices one segment element-wise: the trajectory
        is bit-identical to the per-process fast path."""
        arena = run_policy(policy_name, arena=True, n_procs=1)
        reference = run_policy(policy_name, arena=False, n_procs=1)
        assert arena.throughput_per_sec == reference.throughput_per_sec
        assert arena.fmar == reference.fmar
        assert arena.latency_summary == reference.latency_summary
        assert arena.stats == reference.stats


class TestMultiProcessEquivalence:
    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    def test_headline_metrics_agree(self, policy_name):
        """Multi-process arenas draw faults from one aggregate stream,
        so trajectories diverge stochastically; headline metrics must
        agree within the natural spread across process-RNG seeds."""
        arena = run_policy(policy_name, arena=True, n_procs=4)
        reference = run_policy(policy_name, arena=False, n_procs=4)
        assert arena.throughput_per_sec == pytest.approx(
            reference.throughput_per_sec, rel=0.05
        )
        assert arena.fmar == pytest.approx(
            reference.fmar, rel=0.05, abs=1e-4
        )

    def test_arena_steps_counted(self):
        result = run_policy("memtis", arena=True, n_procs=2)
        assert result.engine.arena_steps == result.engine.steps_run
        reference = run_policy("memtis", arena=False, n_procs=2)
        assert reference.engine.arena_steps == 0


class TestFusionComposition:
    def test_arena_fuses_and_stays_equivalent(self):
        """Fusion composes with the arena: the witness lives in the
        arena's per-segment epoch vectors, macro-quanta still engage,
        and the fused arena matches the per-quantum arena within the
        fusion tolerance."""
        hub = ObsHub.create(metrics=True)
        fused = run_policy("memtis", arena=True, fusion=True, obs=hub)
        stepped = run_policy("memtis", arena=True, fusion=False)
        assert hub.snapshot()["counters"]["engine.fused_quanta"] > 0
        assert fused.throughput_per_sec == pytest.approx(
            stepped.throughput_per_sec, rel=0.02
        )
        assert fused.fmar == pytest.approx(
            stepped.fmar, rel=0.02, abs=1e-4
        )


class ZeroPageWorkload:
    """A process with no pages: empty distribution, nothing to access."""

    name = "zero"
    n_pages = 0
    write_fraction = 0.0
    delay_ns_per_access = 0.0

    def __init__(self):
        self._probs = np.zeros(0, dtype=np.float64)

    def access_distribution(self, now_ns=0):
        return self._probs

    def advance(self, now_ns):
        pass


def build_engine(processes, fast_pages=256, slow_pages=768, arena=True):
    kernel = make_kernel(fast_pages=fast_pages, slow_pages=slow_pages)
    for process in processes:
        kernel.register_process(process)
    kernel.allocate_initial_placement()
    return kernel, QuantumEngine(
        kernel, quantum_ns=10 * MILLISECOND, arena=arena
    )


class TestZeroPageSegment:
    def test_empty_segment_is_priced_to_zero(self):
        empty = SimProcess(
            pid=1,
            workload=ZeroPageWorkload(),
            rng=RngStreams(0).spawn("zero").get("access"),
        )
        busy = make_process(pid=2, n_pages=64)
        _, engine = build_engine([empty, busy])
        engine.run(SECOND)
        assert empty.stats.accesses == 0.0
        assert busy.stats.accesses > 0.0

    def test_all_empty_arena_runs(self):
        empty = SimProcess(
            pid=1,
            workload=ZeroPageWorkload(),
            rng=RngStreams(0).spawn("zero").get("access"),
        )
        _, engine = build_engine([empty])
        end = engine.run(SECOND)
        assert end == SECOND
        assert empty.stats.accesses == 0.0


class TestSegmentRetirement:
    def test_finished_process_is_retired_mid_run(self):
        """A process hitting its access target mid-run is marked
        finished, drops out of the hot-loop rows, and stops
        accumulating while the rest of the fleet keeps running."""
        quick = make_process(pid=1, n_pages=64)
        steady = make_process(pid=2, n_pages=64)
        quick.target_accesses = 1_000.0
        _, engine = build_engine([quick, steady])
        engine.run(SECOND)
        assert quick.finished
        assert not steady.finished
        # Overshoots by at most the quantum it finished in, then stops
        # accumulating while the steady process runs the full second.
        assert quick.stats.accesses >= quick.target_accesses
        assert quick.stats.accesses < steady.stats.accesses / 10
        # The live row set no longer carries the finished segment.
        rows = engine._arena._rows if engine._arena else []
        assert all(row[1] is not quick for row in rows)

    def test_retirement_matches_reference_mode(self):
        results = []
        for arena in (True, False):
            quick = make_process(pid=1, n_pages=64)
            quick.target_accesses = 1_000.0
            _, engine = build_engine([quick], arena=arena)
            engine.run(SECOND)
            results.append(quick.stats.accesses)
        assert results[0] == results[1]


class TestLedgerLaziness:
    def test_open_run_drains_on_first_counter_read(self):
        """The arena accumulates each segment's ledger share in the
        concatenated open run; a segment drains into its PageState
        only when a consumer reads the counters."""
        process = make_process(pid=1, n_pages=64)
        _, engine = build_engine([process])
        demand = engine._arena_step(0, 10 * MILLISECOND)
        assert demand.shape == (2,)
        arena = engine._arena
        assert arena.open_n[0] > 0.0
        assert process.pages.has_pending_accesses
        expected = float(arena.open_n[0])
        counts = process.pages.access_count
        assert arena.open_n[0] == 0.0
        assert counts.sum() == pytest.approx(expected)

    def test_detach_drains_and_unhooks(self):
        """Detaching closes the arena's open run into the PageState's
        own pending ledger (still lazy there) and unhooks the ledger
        source, so counters stay readable after the arena is gone."""
        process = make_process(pid=1, n_pages=64)
        _, engine = build_engine([process])
        engine._arena_step(0, 10 * MILLISECOND)
        arena = engine._arena
        expected = float(arena.open_n[0])
        arena.detach()
        assert arena.open_n[0] == 0.0
        assert process.pages.access_count.sum() == pytest.approx(expected)
        assert not process.pages.has_pending_accesses


class _NoHookPolicy(TieringPolicy):
    name = "no-hook"

    def _configure(self, kernel):
        pass


class _HookPolicy(TieringPolicy):
    name = "hook"

    def __init__(self):
        super().__init__()
        self.calls = 0

    def _configure(self, kernel):
        pass

    def on_quantum(self, process, probs, n_accesses, start_ns, quantum_ns):
        self.calls += 1


class TestPolicyHookSkip:
    def test_base_no_op_hook_is_skipped(self):
        process = make_process(pid=1, n_pages=64)
        kernel, engine = build_engine([process])
        kernel.set_policy(_NoHookPolicy())
        engine._arena_step(0, 10 * MILLISECOND)
        assert engine._arena._resolve_policy_hook(kernel.policy) is None

    def test_overridden_hook_is_called_per_live_segment(self):
        process = make_process(pid=1, n_pages=64)
        kernel, engine = build_engine([process])
        policy = _HookPolicy()
        kernel.set_policy(policy)
        engine._arena_step(0, 10 * MILLISECOND)
        engine._arena_step(10 * MILLISECOND, 10 * MILLISECOND)
        assert policy.calls == 2


class TestWorkloadContract:
    def test_profile_scalars_refresh_on_distribution_swap(self):
        """A workload that changes its write fraction must swap its
        distribution object (the identity contract); the arena picks
        the new scalars up on the swap."""
        process = make_process(pid=1, n_pages=64)
        _, engine = build_engine([process])
        engine._arena_step(0, 10 * MILLISECOND)
        arena = engine._arena
        workload = process.workload
        workload.write_fraction = 0.75
        workload._probs = workload._probs.copy()  # new identity
        engine._arena_step(10 * MILLISECOND, 10 * MILLISECOND)
        assert arena._wf[0] == 0.75
