"""Tests for the n-round candidate filter."""

import numpy as np
import pytest

from repro.core.candidates import CandidateFilter
from tests.conftest import make_process

THRESHOLD = 1_000_000  # 1 ms


@pytest.fixture
def process():
    return make_process(n_pages=64)


class TestTwoRoundFilter:
    def test_first_pass_creates_candidate(self, process):
        filt = CandidateFilter(n_rounds=2)
        result = filt.observe(
            process, np.array([3]), np.array([100]), THRESHOLD
        )
        assert result.ready_vpns.size == 0
        assert result.new_candidates == 1
        assert process.pages.candidate[3]
        assert filt.candidate_count(process) == 1

    def test_second_pass_promotes(self, process):
        filt = CandidateFilter(n_rounds=2)
        filt.observe(process, np.array([3]), np.array([100]), THRESHOLD)
        result = filt.observe(
            process, np.array([3]), np.array([200]), THRESHOLD
        )
        np.testing.assert_array_equal(result.ready_vpns, [3])
        assert not process.pages.candidate[3]
        assert filt.candidate_count(process) == 0

    def test_over_threshold_second_round_evicts(self, process):
        filt = CandidateFilter(n_rounds=2)
        filt.observe(process, np.array([3]), np.array([100]), THRESHOLD)
        result = filt.observe(
            process, np.array([3]), np.array([THRESHOLD + 1]), THRESHOLD
        )
        assert result.ready_vpns.size == 0
        assert result.rejected == 1
        assert filt.candidate_count(process) == 0

    def test_max_of_two_semantics(self, process):
        """Passing requires BOTH samples below threshold -- thresholding
        the max (Appendix B.1's estimator)."""
        filt = CandidateFilter(n_rounds=2)
        filt.observe(
            process, np.array([1, 2]), np.array([100, 100]), THRESHOLD
        )
        result = filt.observe(
            process,
            np.array([1, 2]),
            np.array([500, THRESHOLD + 5]),
            THRESHOLD,
        )
        np.testing.assert_array_equal(result.ready_vpns, [1])

    def test_candidate_cit_records_max(self, process):
        filt = CandidateFilter(n_rounds=2)
        filt.observe(process, np.array([7]), np.array([900]), THRESHOLD)
        assert process.pages.candidate_cit_ns[7] == 900

    def test_over_threshold_first_round_is_noop(self, process):
        filt = CandidateFilter(n_rounds=2)
        result = filt.observe(
            process, np.array([3]), np.array([THRESHOLD + 1]), THRESHOLD
        )
        assert result.new_candidates == 0
        assert result.rejected == 0
        assert filt.candidate_count(process) == 0


class TestRoundCounts:
    def test_one_round_promotes_immediately(self, process):
        filt = CandidateFilter(n_rounds=1)
        result = filt.observe(
            process, np.array([5]), np.array([10]), THRESHOLD
        )
        np.testing.assert_array_equal(result.ready_vpns, [5])

    def test_three_rounds(self, process):
        filt = CandidateFilter(n_rounds=3)
        for _ in range(2):
            result = filt.observe(
                process, np.array([5]), np.array([10]), THRESHOLD
            )
            assert result.ready_vpns.size == 0
        result = filt.observe(
            process, np.array([5]), np.array([10]), THRESHOLD
        )
        np.testing.assert_array_equal(result.ready_vpns, [5])

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            CandidateFilter(n_rounds=0)


class TestGranularity:
    def test_group_slots(self, process):
        filt = CandidateFilter(n_rounds=2, granularity_pages=16)
        # 64 pages / 16 per group = 4 slots.
        filt.observe(process, np.array([0]), np.array([10]), THRESHOLD)
        assert filt.candidate_count(process) == 1
        # Page flags untouched in group mode.
        assert not process.pages.candidate.any()

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            CandidateFilter(granularity_pages=0)


class TestHousekeeping:
    def test_drop(self, process):
        filt = CandidateFilter(n_rounds=2)
        filt.observe(
            process, np.array([1, 2]), np.array([10, 10]), THRESHOLD
        )
        filt.drop(process, np.array([1]))
        assert filt.candidate_count(process) == 1
        assert not process.pages.candidate[1]

    def test_footprint_bounded(self, process):
        filt = CandidateFilter(n_rounds=2)
        vpns = np.arange(10)
        filt.observe(process, vpns, np.full(10, 10), THRESHOLD)
        assert filt.footprint_bytes(process) == 10 * 16

    def test_parallel_array_validation(self, process):
        filt = CandidateFilter()
        with pytest.raises(ValueError):
            filt.observe(
                process, np.array([1, 2]), np.array([10]), THRESHOLD
            )

    def test_threshold_validation(self, process):
        filt = CandidateFilter()
        with pytest.raises(ValueError):
            filt.observe(process, np.array([1]), np.array([10]), 0)
