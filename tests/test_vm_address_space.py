"""Tests for VMAs and the scan cursor."""

import numpy as np
import pytest

from repro.vm.address_space import AddressSpace, VMArea


class TestVMArea:
    def test_basic(self):
        vma = VMArea(0, 10)
        assert vma.n_pages == 10
        assert vma.contains(0) and vma.contains(9)
        assert not vma.contains(10)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            VMArea(5, 5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            VMArea(-1, 5)


class TestAddressSpace:
    def test_linear(self):
        aspace = AddressSpace.linear(100)
        assert aspace.total_pages == 100
        np.testing.assert_array_equal(aspace.all_vpns(), np.arange(100))

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            AddressSpace([VMArea(0, 10), VMArea(5, 15)])

    def test_empty_space_is_legal(self):
        """A zero-page process has an empty address space: scans see
        empty windows that always complete a pass."""
        aspace = AddressSpace([])
        assert aspace.total_pages == 0
        assert aspace.all_vpns().size == 0
        window, wrapped = aspace.next_scan_window(16)
        assert window.size == 0
        assert wrapped

    def test_sorts_vmas(self):
        aspace = AddressSpace([VMArea(10, 20), VMArea(0, 5)])
        np.testing.assert_array_equal(
            aspace.all_vpns(),
            np.concatenate([np.arange(0, 5), np.arange(10, 20)]),
        )


class TestScanCursor:
    def test_sequential_windows(self):
        aspace = AddressSpace.linear(10)
        window, wrapped = aspace.next_scan_window(4)
        np.testing.assert_array_equal(window, [0, 1, 2, 3])
        assert not wrapped
        window, wrapped = aspace.next_scan_window(4)
        np.testing.assert_array_equal(window, [4, 5, 6, 7])
        assert not wrapped

    def test_wraparound(self):
        aspace = AddressSpace.linear(10)
        aspace.next_scan_window(8)
        window, wrapped = aspace.next_scan_window(4)
        assert wrapped
        np.testing.assert_array_equal(window, [8, 9, 0, 1])

    def test_full_pass_covers_every_page(self):
        aspace = AddressSpace.linear(10)
        seen = []
        for _ in range(5):
            window, _ = aspace.next_scan_window(2)
            seen.extend(window.tolist())
        assert sorted(seen) == list(range(10))

    def test_window_larger_than_space(self):
        aspace = AddressSpace.linear(4)
        window, wrapped = aspace.next_scan_window(100)
        assert wrapped
        np.testing.assert_array_equal(np.sort(window), np.arange(4))

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            AddressSpace.linear(4).next_scan_window(0)

    def test_reset(self):
        aspace = AddressSpace.linear(10)
        aspace.next_scan_window(5)
        aspace.reset_cursor()
        window, _ = aspace.next_scan_window(3)
        np.testing.assert_array_equal(window, [0, 1, 2])
