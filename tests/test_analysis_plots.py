"""Tests for the terminal plotting helpers."""

import pytest

from repro.analysis.plots import (
    hbar_chart,
    heat_map_rows,
    series_panel,
    sparkline,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3], ascii_only=True)
        assert len(line) == 4
        assert line[0] == " " and line[-1] == "@"

    def test_downsamples_to_width(self):
        line = sparkline(list(range(1000)), width=20)
        assert len(line) == 20

    def test_all_zero(self):
        assert sparkline([0, 0, 0], ascii_only=True) == "   "

    def test_bad_width(self):
        with pytest.raises(ValueError):
            sparkline([1], width=0)


class TestHbar:
    def test_bars_scale(self):
        chart = hbar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10
        assert "2" in lines[1]

    def test_unit_suffix(self):
        chart = hbar_chart(["x"], [3.0], unit="ms")
        assert "3ms" in chart

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            hbar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert hbar_chart([], []) == ""


class TestHeatMapRows:
    def test_folds_tail(self):
        rows = heat_map_rows(
            [1.0] * 20, [f"b{i}" for i in range(20)], max_rows=5
        )
        lines = rows.splitlines()
        assert len(lines) == 5
        assert "(colder)" in lines[-1]
        assert "16" in lines[-1]  # folded mass

    def test_short_map_unfolded(self):
        rows = heat_map_rows([1.0, 2.0], ["a", "b"], max_rows=5)
        assert len(rows.splitlines()) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            heat_map_rows([1.0], ["a", "b"])
        with pytest.raises(ValueError):
            heat_map_rows([1.0], ["a"], max_rows=1)


class TestSeriesPanel:
    def test_panel_lines(self):
        panel = series_panel(
            {"threshold": [1, 2, 3], "rate": [3, 2, 1]},
            ascii_only=True,
        )
        lines = panel.splitlines()
        assert len(lines) == 2
        assert "min 1" in lines[0] and "max 3" in lines[0]

    def test_empty_series(self):
        panel = series_panel({"x": []})
        assert "(empty)" in panel
