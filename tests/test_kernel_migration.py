"""Tests for the migration engine."""

import numpy as np
import pytest

from repro.mem.tier import FAST_TIER, SLOW_TIER
from tests.conftest import make_kernel, make_process


@pytest.fixture
def setup():
    kernel = make_kernel(fast_pages=32, slow_pages=128)
    process = make_process(n_pages=64)
    kernel.register_process(process)
    # All pages start on the slow tier; account the frames.
    kernel.machine.slow.allocate(64)
    return kernel, process


class TestPromotion:
    def test_promote_moves_pages_and_frames(self, setup):
        kernel, process = setup
        moved = kernel.migration.promote(process, np.array([0, 1, 2]))
        assert moved.size == 3
        assert (process.pages.tier[[0, 1, 2]] == FAST_TIER).all()
        assert kernel.machine.fast.used_pages == 3
        assert kernel.machine.slow.used_pages == 61
        assert kernel.stats.pgpromote == 3
        assert process.stats.pages_promoted == 3

    def test_promotion_activates_pages(self, setup):
        kernel, process = setup
        kernel.clock.advance(500)
        kernel.migration.promote(process, np.array([5]))
        assert process.pages.lru_active[5]
        assert process.pages.lru_gen[5] == 500

    def test_promote_skips_already_fast(self, setup):
        kernel, process = setup
        kernel.migration.promote(process, np.array([0]))
        moved = kernel.migration.promote(process, np.array([0]))
        assert moved.size == 0
        assert kernel.stats.pgpromote == 1

    def test_capacity_limit_drops_overflow(self, setup):
        kernel, process = setup
        moved = kernel.migration.promote(process, np.arange(64))
        assert moved.size == 32  # fast tier only holds 32
        assert kernel.stats.promotion_dropped == 32

    def test_promotion_clears_demoted_flag(self, setup):
        kernel, process = setup
        process.pages.demoted[7] = True
        kernel.migration.promote(process, np.array([7]))
        assert not process.pages.demoted[7]

    def test_charges_kernel_time(self, setup):
        kernel, process = setup
        kernel.migration.promote(process, np.array([0, 1]))
        assert process.pending_kernel_ns > 0
        assert kernel.stats.migration_time_ns > 0


class TestDemotion:
    def test_demote_counts_and_flags(self, setup):
        kernel, process = setup
        kernel.migration.promote(process, np.array([0, 1]))
        moved = kernel.migration.migrate(
            process, np.array([0]), SLOW_TIER, mark_demoted=True
        )
        assert moved.size == 1
        assert process.pages.demoted[0]
        assert kernel.stats.pgdemote == 1
        assert process.stats.pages_demoted == 1

    def test_demote_without_mark(self, setup):
        kernel, process = setup
        kernel.migration.promote(process, np.array([0]))
        kernel.migration.migrate(process, np.array([0]), SLOW_TIER)
        assert not process.pages.demoted[0]

    def test_demotion_deactivates(self, setup):
        kernel, process = setup
        kernel.migration.promote(process, np.array([3]))
        kernel.migration.migrate(process, np.array([3]), SLOW_TIER)
        assert not process.pages.lru_active[3]


class _RecordingTier:
    """Counts ``release`` calls -- the only surface the helper touches."""

    def __init__(self):
        self.released = 0
        self.calls = 0

    def release(self, n):
        self.released += int(n)
        self.calls += 1


def _release_source_frames_reference(tiers, src_tiers):
    """The pre-vectorization sequential per-tier loop, kept as the oracle."""
    for tier_id, tier in enumerate(tiers):
        n = int((src_tiers == tier_id).sum())
        if n:
            tier.release(n)


class TestReleaseSourceFrames:
    def _assert_equivalent(self, n_tiers, src_tiers):
        from repro.kernel.migration import _release_source_frames

        src_tiers = np.asarray(src_tiers, dtype=np.int64)
        got = [_RecordingTier() for _ in range(n_tiers)]
        want = [_RecordingTier() for _ in range(n_tiers)]
        _release_source_frames(got, src_tiers)
        _release_source_frames_reference(want, src_tiers)
        assert [t.released for t in got] == [t.released for t in want]
        # Each populated tier gets exactly one batched release.
        assert all(t.calls <= 1 for t in got)

    def test_empty_batch_releases_nothing(self):
        from repro.kernel.migration import _release_source_frames

        tiers = [_RecordingTier(), _RecordingTier()]
        _release_source_frames(tiers, np.array([], dtype=np.int64))
        assert all(t.calls == 0 for t in tiers)

    def test_single_source_fast_path(self):
        self._assert_equivalent(2, [1, 1, 1, 1])

    def test_mixed_sources(self):
        self._assert_equivalent(3, [0, 2, 0, 1, 2, 2])

    def test_unpopulated_tiers_untouched(self):
        from repro.kernel.migration import _release_source_frames

        tiers = [_RecordingTier() for _ in range(4)]
        _release_source_frames(tiers, np.array([1, 3, 1]))
        assert [t.released for t in tiers] == [0, 2, 0, 1]
        assert [t.calls for t in tiers] == [0, 1, 0, 1]

    def test_randomized_equivalence(self):
        rng = np.random.default_rng(4242)
        for _ in range(50):
            n_tiers = int(rng.integers(1, 5))
            size = int(rng.integers(0, 40))
            src = rng.integers(0, n_tiers, size=size)
            self._assert_equivalent(n_tiers, src)


class TestAccounting:
    def test_empty_batch(self, setup):
        kernel, process = setup
        moved = kernel.migration.promote(process, np.array([], dtype=int))
        assert moved.size == 0
        assert kernel.stats.pgpromote == 0

    def test_migration_bandwidth_charged(self, setup):
        kernel, process = setup
        kernel.migration.promote(process, np.array([0, 1]))
        assert kernel.machine.fast.consume_migration_bytes() == 2 * 4096
        assert kernel.machine.slow.consume_migration_bytes() == 2 * 4096

    def test_context_switches_recorded(self, setup):
        kernel, process = setup
        kernel.migration.promote(process, np.array([0]))
        assert kernel.stats.context_switches >= 1
