"""Integration tests: the observability layer against real runs.

The acceptance invariant: aggregating a run's trace into per-epoch
promotion/demotion counts reproduces the run's ``pgpromote``/``pgdemote``
counters exactly, because every migration funnels through the one engine
that emits ``migration.complete``.
"""

import json

import pytest

from repro.harness.experiments import StandardSetup, pmbench_processes
from repro.harness.runner import RunSummary, run_experiment
from repro.obs import ObsHub
from repro.obs.tracefile import epoch_migrations, read_events, summarize
from repro.sim.timeunits import SECOND


def small_setup(**overrides):
    defaults = dict(
        fast_pages=512,
        slow_pages=4_096,
        duration_ns=6 * SECOND,
        page_scale=8,
        seed=3,
    )
    defaults.update(overrides)
    return StandardSetup(**defaults)


def run_with_hub(hub, policy="chrono", **overrides):
    setup = small_setup(**overrides)
    processes = pmbench_processes(setup, n_procs=3, pages_per_proc=512)
    result = run_experiment(
        processes, setup.build_policy(policy), setup.run_config(), obs=hub
    )
    hub.close()
    return result


@pytest.fixture(scope="module")
def traced_run():
    hub = ObsHub.create(trace=True, metrics=True)
    result = run_with_hub(hub)
    return hub, result


class TestEventFlow:
    def test_core_event_types_present(self, traced_run):
        hub, _ = traced_run
        types = {event["type"] for event in hub.tracer.events()}
        assert {
            "engine.quantum", "scan.window", "fault.batch", "cit.sample",
            "dcsc.probe", "promotion.decision", "migration.issue",
            "migration.complete", "reclaim.wake", "watermark.cross",
            "aging.pass", "tune.update",
        } <= types

    def test_events_time_ordered_per_type(self, traced_run):
        hub, result = traced_run
        times = [event["t"] for event in hub.tracer.events()
                 if event["type"] == "engine.quantum"]
        assert times == sorted(times)
        assert times[-1] <= result.duration_ns

    def test_migration_events_match_run_counters(self, traced_run):
        hub, result = traced_run
        events = hub.tracer.events()
        promoted = sum(
            event["n_moved"] for event in events
            if event["type"] == "migration.complete" and event["promotion"]
        )
        demoted = sum(
            event["n_moved"] for event in events
            if event["type"] == "migration.complete"
            and not event["promotion"]
        )
        assert promoted == result.stats["pgpromote"]
        assert demoted == result.stats["pgdemote"]

    def test_metrics_match_run_counters(self, traced_run):
        hub, result = traced_run
        counters = hub.snapshot()["counters"]
        assert counters["migration.promoted_pages"] == (
            result.stats["pgpromote"]
        )
        assert counters["migration.demoted_pages"] == (
            result.stats["pgdemote"]
        )
        assert counters["fault.hint_faults"] == result.stats["hint_faults"]
        assert counters["engine.quanta"] > 0
        assert result.metrics == hub.snapshot()

    def test_unobserved_run_is_unchanged(self):
        baseline = run_with_hub(ObsHub.create(trace=True, metrics=True))
        setup = small_setup()
        plain = run_experiment(
            pmbench_processes(setup, n_procs=3, pages_per_proc=512),
            setup.build_policy("chrono"),
            setup.run_config(),
        )
        # Observation must not perturb the simulation itself.
        assert plain.stats == baseline.stats
        assert plain.throughput_per_sec == baseline.throughput_per_sec
        assert plain.metrics is None


class TestEpochAggregation:
    def test_epoch_totals_equal_run_summary(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        hub = ObsHub.create(trace_sink=path, metrics=True)
        result = run_with_hub(hub)
        rows = epoch_migrations(read_events(path), SECOND)
        assert sum(r["promoted"] for r in rows) == result.stats["pgpromote"]
        assert sum(r["demoted"] for r in rows) == result.stats["pgdemote"]
        assert sum(r["faults"] for r in rows) == result.stats["hint_faults"]
        summary = summarize(read_events(path))
        assert summary["total"] == hub.tracer.emitted

    def test_summary_metrics_survive_json(self, traced_run):
        _, result = traced_run
        summary = result.to_summary()
        round_trip = RunSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert round_trip.metrics == summary.metrics
        assert round_trip.metrics["counters"]["migration.promoted_pages"] \
            == result.stats["pgpromote"]


class TestPebsPoliciesEmit:
    def test_memtis_run_emits_pebs_events(self):
        hub = ObsHub.create(trace=True, metrics=True)
        run_with_hub(hub, policy="memtis", duration_ns=3 * SECOND)
        counters = hub.snapshot()["counters"]
        assert counters["pebs.samples"] > 0
        assert counters["pebs.overhead_ns"] > 0
        types = {event["type"] for event in hub.tracer.events()}
        assert "pebs.window" in types
