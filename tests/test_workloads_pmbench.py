"""Tests for the pmbench workload generator."""

import numpy as np
import pytest

from repro.workloads.pmbench import DELAY_UNIT_NS, PmbenchWorkload


class TestPatterns:
    def test_normal_peaks_at_center(self):
        workload = PmbenchWorkload(n_pages=101, pattern="normal")
        probs = workload.access_distribution()
        assert probs.argmax() == 50
        assert probs[50] > probs[0]

    def test_normal_central_25_has_majority_mass(self):
        """Sigma default puts ~68% of accesses in the central quarter --
        the paper's hot-region construction."""
        workload = PmbenchWorkload(n_pages=1000, pattern="normal")
        mask = workload.center_region_mask(0.25)
        mass = workload.access_distribution()[mask].sum()
        assert 0.6 < mass < 0.75

    def test_uniform(self):
        workload = PmbenchWorkload(n_pages=10, pattern="uniform")
        np.testing.assert_allclose(
            workload.access_distribution(), np.full(10, 0.1)
        )

    def test_linear_decreasing(self):
        workload = PmbenchWorkload(n_pages=10, pattern="linear")
        probs = workload.access_distribution()
        assert (np.diff(probs) < 0).all()

    def test_zipf_head_heavy(self):
        workload = PmbenchWorkload(n_pages=100, pattern="zipf")
        probs = workload.access_distribution()
        assert probs[0] > 10 * probs[99]

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            PmbenchWorkload(n_pages=10, pattern="nope")

    def test_distribution_sums_to_one(self):
        for pattern in PmbenchWorkload.PATTERNS:
            workload = PmbenchWorkload(n_pages=64, pattern=pattern)
            assert workload.access_distribution().sum() == pytest.approx(1.0)


class TestStride:
    def test_stride_2_skips_odd_pages(self):
        workload = PmbenchWorkload(n_pages=10, pattern="uniform", stride=2)
        probs = workload.access_distribution()
        assert (probs[1::2] == 0).all()
        assert (probs[0::2] > 0).all()

    def test_stride_preserves_normalization(self):
        workload = PmbenchWorkload(n_pages=100, pattern="normal", stride=2)
        assert workload.access_distribution().sum() == pytest.approx(1.0)

    def test_bad_stride(self):
        with pytest.raises(ValueError):
            PmbenchWorkload(n_pages=10, stride=0)


class TestKnobs:
    def test_read_write_ratio_to_write_fraction(self):
        workload = PmbenchWorkload(n_pages=10, read_write_ratio=0.95)
        assert workload.write_fraction == pytest.approx(0.05)

    def test_bad_ratio(self):
        with pytest.raises(ValueError):
            PmbenchWorkload(n_pages=10, read_write_ratio=2.0)

    def test_delay_units(self):
        workload = PmbenchWorkload(n_pages=10, delay_units=3)
        assert workload.delay_ns_per_access == pytest.approx(
            3 * DELAY_UNIT_NS
        )

    def test_delay_unit_is_50_cycles_at_2_6_ghz(self):
        assert DELAY_UNIT_NS == pytest.approx(19.23, abs=0.01)

    def test_negative_delay(self):
        with pytest.raises(ValueError):
            PmbenchWorkload(n_pages=10, delay_units=-1)


class TestHotMask:
    def test_normal_hot_mask_is_center_region(self):
        workload = PmbenchWorkload(n_pages=100, pattern="normal")
        mask = workload.hot_page_mask(0.25)
        assert mask[37:62].all()
        assert not mask[:30].any() and not mask[70:].any()

    def test_stride_excluded_from_hot_mask(self):
        workload = PmbenchWorkload(n_pages=100, pattern="normal", stride=2)
        mask = workload.hot_page_mask(0.25)
        assert not mask[1::2].any()

    def test_center_region_bad_fraction(self):
        workload = PmbenchWorkload(n_pages=100)
        with pytest.raises(ValueError):
            workload.center_region_mask(0)
