"""Tests for the tiered machine model and access pricing."""

import numpy as np
import pytest

from repro.mem.machine import (
    MachineSpec,
    TieredMachine,
    default_machine_spec,
)
from repro.mem.migration_cost import MigrationCostModel
from repro.mem.tier import FAST_TIER, SLOW_TIER, dram_spec, optane_spec


@pytest.fixture
def machine():
    return TieredMachine(default_machine_spec(fast_pages=1000, slow_pages=3000))


class TestMachineSpec:
    def test_default_fast_ratio_is_25_percent(self):
        machine = TieredMachine()
        assert machine.fast_tier_ratio() == pytest.approx(0.25)

    def test_needs_two_tiers(self):
        with pytest.raises(ValueError):
            MachineSpec(tiers=(dram_spec(10),))

    def test_needs_cpus(self):
        with pytest.raises(ValueError):
            MachineSpec(
                tiers=(dram_spec(10), optane_spec(10)), cpu_cores=0
            )


class TestAccessPricing:
    def test_vectorised_latency(self, machine):
        tiers = np.array([FAST_TIER, SLOW_TIER, SLOW_TIER])
        writes = np.array([False, False, True])
        lat = machine.access_latency_ns(tiers, writes)
        assert lat[0] == machine.fast.spec.read_latency_ns
        assert lat[1] == machine.slow.spec.read_latency_ns
        assert lat[2] == machine.slow.spec.write_latency_ns
        assert lat[2] > lat[1] > lat[0]

    def test_mean_cost_pure_fast_reads(self, machine):
        cost = machine.mean_access_cost_ns(
            np.array([100.0, 0.0]), write_fraction=0.0
        )
        assert cost == pytest.approx(machine.fast.spec.read_latency_ns)

    def test_mean_cost_mixed(self, machine):
        cost = machine.mean_access_cost_ns(
            np.array([50.0, 50.0]), write_fraction=0.0
        )
        expected = 0.5 * (
            machine.fast.spec.read_latency_ns
            + machine.slow.spec.read_latency_ns
        )
        assert cost == pytest.approx(expected)

    def test_mean_cost_writes_cost_more_on_slow(self, machine):
        reads = machine.mean_access_cost_ns(np.array([0.0, 1.0]), 0.0)
        writes = machine.mean_access_cost_ns(np.array([0.0, 1.0]), 1.0)
        assert writes > reads

    def test_mean_cost_empty_mix(self, machine):
        assert machine.mean_access_cost_ns(np.array([0.0, 0.0]), 0.5) > 0


class TestContention:
    def test_negligible_at_low_utilization(self, machine):
        assert machine.contention_multiplier(FAST_TIER, 0.0) == 1.0
        capacity = machine.bandwidth_bytes[FAST_TIER]
        low = machine.contention_multiplier(FAST_TIER, 0.01 * capacity)
        assert low == pytest.approx(1.0, abs=0.02)

    def test_queueing_curve(self, machine):
        capacity = machine.bandwidth_bytes[SLOW_TIER]
        half = machine.contention_multiplier(SLOW_TIER, 0.5 * capacity)
        assert half == pytest.approx(2.0)
        deep = machine.contention_multiplier(SLOW_TIER, 0.8 * capacity)
        assert deep == pytest.approx(5.0)

    def test_monotone_in_demand(self, machine):
        capacity = machine.bandwidth_bytes[SLOW_TIER]
        values = [
            machine.contention_multiplier(SLOW_TIER, frac * capacity)
            for frac in (0.0, 0.3, 0.6, 0.9, 1.5)
        ]
        assert values == sorted(values)

    def test_capped_at_saturation(self, machine):
        capacity = machine.bandwidth_bytes[SLOW_TIER]
        assert (
            machine.contention_multiplier(SLOW_TIER, 5 * capacity)
            == machine.MAX_CONTENTION
        )

    def test_negative_demand_rejected(self, machine):
        with pytest.raises(ValueError):
            machine.contention_multiplier(SLOW_TIER, -1.0)


class TestMigrationCostModel:
    def test_cost_scales_with_pages(self):
        model = MigrationCostModel()
        one = model.migrate_cost_ns(1, 1e9, 1e9)
        ten = model.migrate_cost_ns(10, 1e9, 1e9)
        assert ten == 10 * one

    def test_zero_pages_zero_cost(self):
        assert MigrationCostModel().migrate_cost_ns(0, 1e9, 1e9) == 0

    def test_bottleneck_is_slower_side(self):
        model = MigrationCostModel()
        slow_src = model.migrate_cost_ns(1, 1e9, 100e9)
        slow_dst = model.migrate_cost_ns(1, 100e9, 1e9)
        assert slow_src == slow_dst

    def test_copy_time_included(self):
        model = MigrationCostModel(page_size=4096, fixed_kernel_ns=0)
        # 4096 bytes at 4.096 GB/s = 1000 ns
        assert model.migrate_cost_ns(1, 4.096e9, 4.096e9) == 1000

    def test_negative_pages_rejected(self):
        with pytest.raises(ValueError):
            MigrationCostModel().migrate_cost_ns(-1, 1e9, 1e9)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            MigrationCostModel().page_copy_ns(0)

    def test_migrate_bytes(self):
        assert MigrationCostModel(page_size=4096).migrate_bytes(3) == 12288
