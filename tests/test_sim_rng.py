"""Tests for deterministic named RNG streams."""

import numpy as np

from repro.sim.rng import RngStreams, _stable_hash


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RngStreams(42).get("workload").random(8)
        b = RngStreams(42).get("workload").random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("workload").random(8)
        b = RngStreams(2).get("workload").random(8)
        assert not np.array_equal(a, b)

    def test_different_names_differ(self):
        streams = RngStreams(7)
        a = streams.get("alpha").random(8)
        b = streams.get("beta").random(8)
        assert not np.array_equal(a, b)

    def test_creation_order_does_not_matter(self):
        forward = RngStreams(5)
        x1 = forward.get("x").random(4)
        forward.get("y").random(4)

        backward = RngStreams(5)
        backward.get("y").random(4)
        x2 = backward.get("x").random(4)
        np.testing.assert_array_equal(x1, x2)

    def test_get_returns_same_generator(self):
        streams = RngStreams(0)
        assert streams.get("a") is streams.get("a")


class TestSpawn:
    def test_spawn_deterministic(self):
        a = RngStreams(3).spawn("proc-1").get("access").random(4)
        b = RngStreams(3).spawn("proc-1").get("access").random(4)
        np.testing.assert_array_equal(a, b)

    def test_spawn_namespaces_differ(self):
        root = RngStreams(3)
        a = root.spawn("proc-1").get("access").random(4)
        b = root.spawn("proc-2").get("access").random(4)
        assert not np.array_equal(a, b)


class TestStableHash:
    def test_stable_across_calls(self):
        assert _stable_hash("chrono") == _stable_hash("chrono")

    def test_distinct_inputs(self):
        assert _stable_hash("a") != _stable_hash("b")

    def test_64_bit_range(self):
        for name in ["", "x", "a-long-stream-name"]:
            value = _stable_hash(name)
            assert 0 <= value < 2**64
