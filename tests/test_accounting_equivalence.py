"""Deferred ground-truth accounting is exact, and the optimized engine
path agrees with the reference path.

The engine no longer materialises expected access counts every quantum;
it appends ``(probs, n_accesses)`` runs to a per-process ledger that is
flushed when a consumer reads the counters.  These tests pin down the
equivalence contract at three levels:

1. ledger semantics: flushing after every deferral reproduces the eager
   per-quantum accumulation *bit for bit*;
2. whole-simulation: a run whose ledger is flushed after every deferral
   matches a stock (lazily flushed) run;
3. engine paths: the optimized fast path and the reference per-page
   path (``fast_path=False``) agree statistically on throughput and
   FMAR across policies -- they draw different random streams for hint
   faults, so the comparison is tolerance-based, not bitwise.
"""

import numpy as np
import pytest

from repro.harness.experiments import StandardSetup, build_fleet
from repro.harness.runner import run_experiment
from repro.sim.timeunits import SECOND
from repro.vm.page_state import PageState


def _distributions(n_pages, n_dists, seed):
    rng = np.random.default_rng(seed)
    dists = []
    for _ in range(n_dists):
        weights = rng.random(n_pages) ** 3
        dists.append(weights / weights.sum())
    return dists


class TestLedgerExactness:
    def test_flush_per_defer_is_bitwise_eager(self):
        """Flushing after every deferral == the old eager accumulation.

        With one run per flush there is no run merging, so the flush
        performs exactly the multiply-and-add the eager engine did each
        quantum -- the counters must match bit for bit.
        """
        n_pages = 257
        dists = _distributions(n_pages, 4, seed=1)
        rng = np.random.default_rng(2)

        pages = PageState(n_pages)
        eager = np.zeros(n_pages)
        for _ in range(50):
            probs = dists[rng.integers(len(dists))]
            n = float(rng.integers(1, 10_000))
            pages.defer_accesses(probs, n)
            pages.flush_accounting()
            eager += probs * n
        assert np.array_equal(pages.access_count, eager)

    def test_merged_runs_collapse_to_one_multiply(self):
        """Same-distribution quanta merge into a single ``probs * n``.

        This is the documented deferral semantics: ``k`` consecutive
        quanta over one distribution cost one multiply at flush time,
        and the result is the single-multiply expectation bit for bit.
        """
        n_pages = 64
        (probs,) = _distributions(n_pages, 1, seed=3)
        pages = PageState(n_pages)
        for n in (100.0, 250.0, 7.5):
            pages.defer_accesses(probs, n)
        assert np.array_equal(pages.access_count, probs * 357.5)

    def test_lifetime_and_window_counters_share_the_ledger(self):
        n_pages = 32
        (probs,) = _distributions(n_pages, 1, seed=4)
        pages = PageState(n_pages)
        pages.defer_accesses(probs, 10.0)
        assert pages.has_pending_accesses
        np.testing.assert_array_equal(
            pages.last_window_count, pages.access_count
        )
        assert not pages.has_pending_accesses
        # The window rolls; the lifetime counter keeps accumulating.
        pages.clear_window_counts()
        pages.defer_accesses(probs, 5.0)
        np.testing.assert_array_equal(pages.last_window_count, probs * 5.0)
        # Two flushed runs accumulate as two multiply-adds (eager
        # semantics), not as one ``probs * 15`` multiply.
        np.testing.assert_array_equal(
            pages.access_count, probs * 10.0 + probs * 5.0
        )


class TestWholeRunEquivalence:
    @pytest.mark.parametrize(
        "policy_name",
        ["linux-nb", "multiclock", "memtis", "telescope", "chrono"],
    )
    def test_eager_flush_regime_matches_lazy(
        self, policy_name, monkeypatch
    ):
        """A run flushed after every deferral == a stock lazy run.

        Forcing a flush per quantum degenerates the ledger to the old
        eager engine; both regimes must produce the same ground-truth
        counters and the same headline metrics for an identical
        (policy, workload, seed) configuration.
        """

        def run_once(eager):
            if eager:
                original = PageState.defer_accesses

                def eager_defer(self, probs, n_accesses):
                    original(self, probs, n_accesses)
                    self.flush_accounting()

                monkeypatch.setattr(
                    PageState, "defer_accesses", eager_defer
                )
            setup = StandardSetup(duration_ns=2 * SECOND)
            policy = setup.build_policy(policy_name)
            processes = build_fleet(
                setup, "pmbench", n_procs=2, pages_per_proc=512
            )
            result = run_experiment(
                processes, policy, setup.run_config()
            )
            counts = [
                np.array(p.pages.access_count) for p in processes
            ]
            if eager:
                monkeypatch.undo()
            return result, counts

        lazy_result, lazy_counts = run_once(eager=False)
        eager_result, eager_counts = run_once(eager=True)

        # Flush timing must not leak into the simulation: the
        # trajectories are bit-for-bit identical.
        assert (
            eager_result.throughput_per_sec
            == lazy_result.throughput_per_sec
        )
        assert eager_result.fmar == lazy_result.fmar
        # The counters themselves are exact up to float reassociation:
        # merging k same-distribution runs materialises ``probs * Σn``
        # in one multiply where the eager regime did k multiply-adds.
        for eager_arr, lazy_arr in zip(eager_counts, lazy_counts):
            np.testing.assert_allclose(
                eager_arr, lazy_arr, rtol=1e-12, atol=0
            )


class TestFastVsReferencePath:
    @pytest.mark.parametrize(
        "policy_name", ["linux-nb", "multiclock", "memtis", "chrono"]
    )
    def test_paths_agree_statistically(self, policy_name):
        """Optimized vs reference engine path: same physics, different
        random streams for hint faults -- headline metrics must agree
        within a small tolerance."""

        def run_once(fast_path):
            setup = StandardSetup(duration_ns=2 * SECOND)
            policy = setup.build_policy(policy_name)
            processes = build_fleet(
                setup, "pmbench", n_procs=2, pages_per_proc=1024
            )
            return run_experiment(
                processes, policy, setup.run_config(),
                fast_path=fast_path,
            )

        fast = run_once(fast_path=True)
        reference = run_once(fast_path=False)
        assert fast.throughput_per_sec == pytest.approx(
            reference.throughput_per_sec, rel=0.02
        )
        assert fast.fmar == pytest.approx(
            reference.fmar, rel=0.02, abs=1e-4
        )
