"""Tests for the experiment runner and standard setups."""

import pytest

from repro.harness.experiments import (
    EVALUATED_POLICIES,
    StandardSetup,
    graph500_processes,
    kvstore_processes,
    pmbench_processes,
    run_policy_comparison,
)
from repro.harness.runner import RunConfig, run_experiment
from repro.harness.reporting import (
    attribution_table,
    format_table,
    latency_table,
    throughput_table,
)
from repro.policies import make_policy
from repro.sim.timeunits import SECOND
from tests.conftest import make_process


def tiny_setup(**overrides):
    defaults = dict(
        fast_pages=512,
        slow_pages=4096,
        duration_ns=3 * SECOND,
        page_scale=8,
        seed=1,
    )
    defaults.update(overrides)
    return StandardSetup(**defaults)


class TestRunConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunConfig(fast_pages=0)
        with pytest.raises(ValueError):
            RunConfig(duration_ns=0)
        with pytest.raises(ValueError):
            RunConfig(page_scale=0)

    def test_machine_built_with_scale(self):
        config = RunConfig(page_scale=16)
        machine = config.build_machine()
        assert machine.spec.page_scale == 16


class TestRunExperiment:
    def test_end_to_end_smoke(self):
        processes = [make_process(pid=i, n_pages=128) for i in range(2)]
        result = run_experiment(
            processes,
            make_policy("linux-nb", scan_period_ns=SECOND,
                        scan_step_pages=64),
            RunConfig(fast_pages=128, slow_pages=512,
                      duration_ns=2 * SECOND),
        )
        assert result.policy_name == "linux-nb"
        assert result.throughput_per_sec > 0
        assert 0 <= result.fmar <= 1
        assert len(result.per_process) == 2

    def test_requires_processes(self):
        with pytest.raises(ValueError):
            run_experiment([], make_policy("multiclock"))

    def test_cgroup_parallel_check(self):
        with pytest.raises(ValueError):
            run_experiment(
                [make_process()], make_policy("multiclock"),
                cgroups=["a", "b"],
            )

    def test_normalized_to(self):
        processes = lambda: [make_process(pid=0, n_pages=128)]
        config = RunConfig(
            fast_pages=128, slow_pages=512, duration_ns=SECOND
        )
        a = run_experiment(processes(), make_policy("multiclock"), config)
        b = run_experiment(processes(), make_policy("multiclock"), config)
        assert a.normalized_to(b) == pytest.approx(1.0, rel=0.05)


class TestStandardSetup:
    def test_builders_produce_fresh_processes(self):
        setup = tiny_setup()
        a = pmbench_processes(setup, n_procs=2, pages_per_proc=128)
        b = pmbench_processes(setup, n_procs=2, pages_per_proc=128)
        assert a[0] is not b[0]
        assert a[0].pid == b[0].pid

    def test_policy_builders(self):
        setup = tiny_setup()
        for name in EVALUATED_POLICIES:
            policy = setup.build_policy(name)
            assert policy is not None

    def test_chrono_gets_scaled_dcsc(self):
        setup = tiny_setup()
        policy = setup.build_policy("chrono")
        assert policy.dcsc_config.cit_unit_ns == setup.cit_unit_ns

    def test_graph_and_kv_builders(self):
        setup = tiny_setup()
        graphs = graph500_processes(setup, n_procs=1, pages_per_proc=64)
        assert graphs[0].workload.name == "graph500"
        kvs = kvstore_processes(
            setup, flavor="redis", n_procs=1, pages_per_proc=128
        )
        assert kvs[0].workload.flavor == "redis"


class TestComparison:
    def test_comparison_runs_selected_policies(self):
        setup = tiny_setup()
        results = run_policy_comparison(
            setup,
            lambda: pmbench_processes(setup, n_procs=2, pages_per_proc=256),
            policies=("linux-nb", "chrono"),
        )
        assert set(results) == {"linux-nb", "chrono"}
        for result in results.values():
            assert result.throughput_per_sec > 0


class TestReporting:
    def test_format_table(self):
        text = format_table(
            ["a", "b"], [["x", 1.5], ["y", 0.001]], title="T"
        )
        assert "T" in text and "x" in text and "0.001" in text

    def test_tables_render(self):
        setup = tiny_setup()
        results = run_policy_comparison(
            setup,
            lambda: pmbench_processes(setup, n_procs=1, pages_per_proc=256),
            policies=("linux-nb", "multiclock"),
        )
        assert "vs linux-nb" in throughput_table(results, "fig")
        assert "p99" in latency_table(results, "fig")
        assert "FMAR" in attribution_table(results, "fig")
