"""Tests for the pro-watermark sizing, thrashing monitor, and Chrono's
huge-page scaling."""

import numpy as np
import pytest

from repro.core.demotion import ThrashingMonitor, pro_watermark_gap_pages
from repro.core.hugepage import (
    HUGE_2MB_BUCKET_SHIFT,
    distribute_huge_buckets,
    scaled_threshold_ns,
    threshold_1gb_ns,
    threshold_2mb_ns,
)
from repro.sim.timeunits import SECOND


class TestProGap:
    def test_two_scan_intervals_of_promotions(self):
        # 60 s scan, 100 pages/s -> 12000 pages of headroom.
        gap = pro_watermark_gap_pages(60 * SECOND, 100.0)
        assert gap == 12_000

    def test_validation(self):
        with pytest.raises(ValueError):
            pro_watermark_gap_pages(0, 100)
        with pytest.raises(ValueError):
            pro_watermark_gap_pages(SECOND, 0)


class TestThrashingMonitor:
    def test_ratio(self):
        monitor = ThrashingMonitor()
        monitor.record_promotions(100)
        monitor.record_thrash(25)
        assert monitor.thrash_ratio() == pytest.approx(0.25)

    def test_no_promotions_zero_ratio(self):
        assert ThrashingMonitor().thrash_ratio() == 0.0

    def test_halves_rate_above_threshold(self):
        monitor = ThrashingMonitor(threshold_ratio=0.20)
        monitor.record_promotions(100)
        monitor.record_thrash(30)
        assert monitor.end_window(200.0) == pytest.approx(100.0)

    def test_keeps_rate_below_threshold(self):
        monitor = ThrashingMonitor(threshold_ratio=0.20)
        monitor.record_promotions(100)
        monitor.record_thrash(10)
        assert monitor.end_window(200.0) == 200.0

    def test_window_resets_counters(self):
        monitor = ThrashingMonitor()
        monitor.record_promotions(10)
        monitor.record_thrash(9)
        monitor.end_window(100.0)
        assert monitor.promotions == 0
        assert monitor.thrash_events == 0
        assert monitor.total_thrash_events == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            ThrashingMonitor(threshold_ratio=0)
        with pytest.raises(ValueError):
            ThrashingMonitor(backoff_factor=1.0)
        with pytest.raises(ValueError):
            ThrashingMonitor(window_ns=0)
        monitor = ThrashingMonitor()
        with pytest.raises(ValueError):
            monitor.record_promotions(-1)
        with pytest.raises(ValueError):
            monitor.record_thrash(-1)
        with pytest.raises(ValueError):
            monitor.end_window(0)


class TestHugePageThresholds:
    def test_2mb_scaling(self):
        # TH_2MB = TH_4KB / 512.
        assert threshold_2mb_ns(512_000.0) == pytest.approx(1_000.0)

    def test_1gb_scaling(self):
        assert threshold_1gb_ns(512 * 512 * 7.0) == pytest.approx(7.0)

    def test_generic(self):
        assert scaled_threshold_ns(800.0, 8) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            scaled_threshold_ns(0, 512)
        with pytest.raises(ValueError):
            scaled_threshold_ns(100, 0)


class TestBucketDistribution:
    def test_shift_is_log2_512(self):
        assert HUGE_2MB_BUCKET_SHIFT == 9

    def test_huge_page_counts_as_512_base_pages(self):
        contribution = distribute_huge_buckets(
            np.array([3]), n_buckets=28
        )
        assert contribution[3 + 9] == 512.0
        assert contribution.sum() == 512.0

    def test_saturates_at_last_bucket(self):
        contribution = distribute_huge_buckets(
            np.array([27]), n_buckets=28
        )
        assert contribution[27] == 512.0

    def test_custom_group_size(self):
        contribution = distribute_huge_buckets(
            np.array([2]), n_buckets=16, hp_pages=8
        )
        # shift = log2(8) = 3.
        assert contribution[5] == 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            distribute_huge_buckets(np.array([0]), n_buckets=1)
        with pytest.raises(ValueError):
            distribute_huge_buckets(np.array([0]), n_buckets=4, hp_pages=0)
        with pytest.raises(ValueError):
            distribute_huge_buckets(np.array([-1]), n_buckets=4)
