"""Tests for watermarks and the proactive-demotion reclaim daemon."""

import numpy as np
import pytest

from repro.kernel.reclaim import ReclaimDaemon, Watermarks
from repro.mem.tier import FAST_TIER, SLOW_TIER
from tests.conftest import make_kernel, make_process


class TestWatermarks:
    def test_ordering(self):
        marks = Watermarks(capacity_pages=1000)
        assert marks.min_pages <= marks.low_pages <= marks.high_pages

    def test_pro_defaults_to_high(self):
        marks = Watermarks(capacity_pages=1000)
        assert marks.pro_pages == marks.high_pages

    def test_pro_gap_raises_target(self):
        marks = Watermarks(capacity_pages=1000)
        marks.set_pro_gap(30)
        assert marks.pro_pages == marks.high_pages + 30

    def test_pro_gap_clamped_to_max_fraction(self):
        marks = Watermarks(capacity_pages=1000)
        marks.set_pro_gap(900)
        assert marks.pro_pages <= int(
            1000 * Watermarks.MAX_PRO_FRACTION
        )

    def test_negative_gap_rejected(self):
        marks = Watermarks(capacity_pages=1000)
        with pytest.raises(ValueError):
            marks.set_pro_gap(-1)

    def test_invalid_fracs_rejected(self):
        with pytest.raises(ValueError):
            Watermarks(capacity_pages=100, min_frac=0.5, low_frac=0.1)


def make_pressured_kernel(fast_pages=64, slow_pages=256, n_pages=128):
    """A kernel whose fast tier is full of a process's coldest-ranked
    pages, so reclaim has work to do."""
    kernel = make_kernel(fast_pages=fast_pages, slow_pages=slow_pages)
    process = make_process(n_pages=n_pages)
    kernel.register_process(process)
    process.pages.tier[:fast_pages] = FAST_TIER
    process.pages.tier[fast_pages:] = SLOW_TIER
    kernel.machine.fast.allocate(fast_pages)
    kernel.machine.slow.allocate(n_pages - fast_pages)
    process.pages.lru_active[:] = False
    process.pages.lru_gen[:] = np.arange(n_pages)
    return kernel, process


class TestReclaim:
    def test_no_demotion_above_high(self):
        kernel, _ = make_pressured_kernel()
        kernel.machine.fast.release(32)  # plenty free
        assert kernel.reclaim.run_once(now_ns=0) == 0

    def test_demotes_to_target_under_pressure(self):
        kernel, process = make_pressured_kernel()
        demoted = kernel.reclaim.run_once(now_ns=0)
        assert demoted == kernel.watermarks.high_pages
        assert kernel.machine.fast.free_pages == kernel.watermarks.high_pages

    def test_demotes_coldest_first(self):
        kernel, process = make_pressured_kernel()
        kernel.reclaim.run_once(now_ns=0)
        demoted_vpns = np.flatnonzero(
            process.pages.tier[:64] == SLOW_TIER
        )
        # Generations were ascending with vpn, so lowest vpns go first.
        expected = np.arange(kernel.watermarks.high_pages)
        np.testing.assert_array_equal(demoted_vpns, expected)

    def test_pro_watermark_demotes_more(self):
        setup = dict(fast_pages=512, slow_pages=2048, n_pages=1024)
        plain_kernel, _ = make_pressured_kernel(**setup)
        plain = plain_kernel.reclaim.run_once(now_ns=0)

        pro_kernel, _ = make_pressured_kernel(**setup)
        pro_kernel.watermarks.set_pro_gap(10)
        pro = pro_kernel.reclaim.run_once(now_ns=0)
        assert pro == plain + 10

    def test_falls_back_to_active_pages(self):
        kernel, process = make_pressured_kernel()
        process.pages.lru_active[:] = True  # nothing inactive
        demoted = kernel.reclaim.run_once(now_ns=0)
        assert demoted > 0

    def test_mark_demoted_flag(self):
        kernel, process = make_pressured_kernel()
        kernel.reclaim.mark_demoted = True
        kernel.reclaim.run_once(now_ns=0)
        assert process.pages.demoted.any()

    def test_slow_tier_full_blocks_demotion(self):
        kernel, process = make_pressured_kernel(slow_pages=64)
        kernel.machine.slow.allocate(kernel.machine.slow.free_pages)
        assert kernel.reclaim.run_once(now_ns=0) == 0

    def test_periodic_daemon_runs(self):
        kernel, _ = make_pressured_kernel()
        kernel.reclaim.start()
        kernel.advance_to(kernel.reclaim.period_ns + 1)
        assert kernel.stats.pgdemote > 0

    def test_bad_period_rejected(self):
        kernel, _ = make_pressured_kernel()
        with pytest.raises(ValueError):
            ReclaimDaemon(kernel, kernel.watermarks, period_ns=0)


class _FakeProcess:
    def __init__(self, pid):
        self.pid = pid


def _merge_victims_reference(first, second):
    """The pre-vectorization sequential merge, kept as the oracle.

    Zero-victim entries are filtered: migrating an empty vpn array
    moves nothing, so an entry without pages is behaviourally inert
    and the vectorized merge is free to drop it.
    """
    merged = {}
    order = []
    for process, vpns in first + second:
        if process.pid not in merged:
            merged[process.pid] = (process, set())
            order.append(process.pid)
        merged[process.pid][1].update(int(v) for v in vpns)
    return [
        (merged[pid][0], np.array(sorted(merged[pid][1]), dtype=np.int64))
        for pid in order
        if merged[pid][1]
    ]


class TestMergeVictims:
    def _assert_equivalent(self, first, second):
        from repro.kernel.reclaim import _merge_victims

        got = _merge_victims(first, second)
        want = _merge_victims_reference(first, second)
        assert [p.pid for p, _ in got] == [p.pid for p, _ in want]
        for (gp, gv), (wp, wv) in zip(got, want):
            assert gp is wp  # same live object, not a copy
            np.testing.assert_array_equal(
                np.asarray(gv, dtype=np.int64), wv
            )

    def test_overlapping_lists_deduplicate(self):
        a, b = _FakeProcess(1), _FakeProcess(2)
        first = [(a, np.array([5, 3])), (b, np.array([7]))]
        second = [(b, np.array([7, 2])), (a, np.array([3, 9]))]
        self._assert_equivalent(first, second)

    def test_disjoint_processes(self):
        a, b = _FakeProcess(1), _FakeProcess(2)
        self._assert_equivalent(
            [(a, np.array([1, 2]))], [(b, np.array([0]))]
        )

    def test_empty_and_single_entry(self):
        from repro.kernel.reclaim import _merge_victims

        a = _FakeProcess(1)
        assert _merge_victims([], []) == []
        # A lone entry still gets the sort+dedup the full merge applies.
        [(process, vpns)] = _merge_victims(
            [(a, np.array([4, 1, 4]))], []
        )
        assert process is a
        np.testing.assert_array_equal(vpns, [1, 4])

    def test_empty_vpn_arrays(self):
        a, b = _FakeProcess(1), _FakeProcess(2)
        first = [(a, np.array([], dtype=np.int64))]
        second = [(b, np.array([3])), (a, np.array([], dtype=np.int64))]
        self._assert_equivalent(first, second)

    def test_randomized_equivalence(self):
        rng = np.random.default_rng(1234)
        processes = [_FakeProcess(pid) for pid in (11, 3, 7, 20)]
        for _ in range(50):
            def victim_list():
                chosen = rng.permutation(len(processes))[
                    : rng.integers(0, len(processes) + 1)
                ]
                return [
                    (
                        processes[i],
                        rng.integers(0, 500, size=rng.integers(0, 40)),
                    )
                    for i in chosen
                ]

            self._assert_equivalent(victim_list(), victim_list())
