"""Tests for the rival policies: Nomad, TierBPF, ARMS, and Jenga.

Also pins the 12-row characteristics table (the extended Table 1) with
an exact snapshot, so a row edit or reorder is a deliberate act.
"""

import numpy as np
import pytest

from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.policies import (
    ARMSPolicy,
    JengaPolicy,
    NomadPolicy,
    TierBPFPolicy,
)
from repro.policies.registry import (
    POLICY_CHARACTERISTICS,
    characteristics_table,
)
from repro.sim.timeunits import SECOND
from repro.vm.fault import FaultBatch
from tests.conftest import make_kernel, make_process


def attach(policy, fast_pages=256, slow_pages=768, n_pages=128,
           **workload_kwargs):
    kernel = make_kernel(fast_pages=fast_pages, slow_pages=slow_pages)
    process = make_process(n_pages=n_pages, **workload_kwargs)
    kernel.register_process(process)
    kernel.allocate_initial_placement()
    kernel.set_policy(policy)
    # Fill the promotion token bucket (bound empty at attach time).
    kernel.clock.advance(SECOND)
    return kernel, process


def make_slow(kernel, process, n):
    """Demote the first ``n`` fast pages; return their vpns."""
    fast = np.flatnonzero(process.pages.tier == FAST_TIER)
    vpns = fast[:n]
    moved = kernel.migration.migrate(process, vpns, SLOW_TIER)
    assert moved.size == n
    return vpns


def fault_batch(process, vpns, cits=None, now=SECOND):
    vpns = np.asarray(vpns, dtype=np.int64)
    if cits is None:
        cits = np.full(vpns.size, 100, dtype=np.int64)
    return FaultBatch(
        pid=process.pid,
        vpns=vpns,
        fault_ts_ns=np.full(vpns.size, now, dtype=np.int64),
        cit_ns=np.asarray(cits, dtype=np.int64),
    )


class TestCharacteristicsTable:
    EXPECTED = [
        "Solution       Type           Migration Criterion        "
        "Effective Frequency Scale  Default Page Size",
        "-------------  -------------  -------------------------  "
        "-------------------------  -----------------",
        "Linux-NB       System-wide    Page fault (MRU)           "
        "0~1 access/min             Base page",
        "Auto-Tiering   System-wide    Page-fault counters        "
        "0~1 access/min             Base page",
        "Multi-Clock    System-wide    Multi-level LRU lists      "
        "0~1 access/min             Base page",
        "Telescope      System-wide    Tree-structured PTE bits   "
        "0~5 access/sec             Base page",
        "TPP            System-wide    Page-fault + LRU lists     "
        "0~2 access/min             Base page",
        "Memtis         Process level  PEBS stats + Ratio config  "
        "0~10 access/sec            Huge page",
        "FlexMem        Process level  PEBS stats + Page fault    "
        "0~10 access/sec            Huge page",
        "Nomad          System-wide    Transactional migration    "
        "0~2 access/min             Base page",
        "TierBPF        System-wide    Payback admission control  "
        "0~2 access/min             Base page",
        "ARMS           System-wide    Drift-tuned thresholds     "
        "0~2 access/min             Base page",
        "Jenga          System-wide    Demotion-damped faults     "
        "0~2 access/min             Base page",
        "Chrono [Ours]  System-wide    Dynamic CIT stats          "
        "0~1000 access/sec          Base page",
    ]

    def test_twelve_rows(self):
        assert len(POLICY_CHARACTERISTICS) == 12

    def test_snapshot(self):
        """The rendered table matches line for line (padding aside)."""
        lines = [
            line.rstrip()
            for line in characteristics_table().splitlines()
        ]
        assert lines == self.EXPECTED

    def test_chrono_is_last(self):
        assert POLICY_CHARACTERISTICS[-1].solution == "Chrono [Ours]"


class TestNomad:
    def test_all_writes_abort_everything(self):
        """write_fraction=1 with a wide copy window aborts every
        transaction: full cost charged, nothing promoted."""
        policy = NomadPolicy(abort_window_ns=SECOND)
        kernel, process = attach(policy, write_fraction=1.0)
        vpns = make_slow(kernel, process, 8)
        policy.on_fault(process, fault_batch(process, vpns, cits=[100] * 8))
        assert policy.aborted_pages == 8
        assert policy.committed_pages == 0
        assert np.all(process.pages.tier[vpns] == SLOW_TIER)
        assert kernel.stats.migration_time_ns > 0

    def test_commit_takes_shadow_frames(self):
        """A read-only workload commits every transaction; the released
        source frames are re-taken as shadows (non-exclusive residency),
        so slow-tier occupancy does not drop."""
        policy = NomadPolicy()
        kernel, process = attach(policy, write_fraction=0.0)
        vpns = make_slow(kernel, process, 8)
        free_before = kernel.machine.slow.free_pages
        policy.on_fault(process, fault_batch(process, vpns))
        assert policy.committed_pages == 8
        assert policy.aborted_pages == 0
        assert np.all(process.pages.tier[vpns] == FAST_TIER)
        assert policy.shadow_mask(process).sum() == 8
        # promote released 8 slow frames, shadows re-took all 8
        assert kernel.machine.slow.free_pages == free_before

    def test_reconcile_credits_zero_copy_demotions(self):
        """A shadowed page demoted back to the slow tier frees its
        shadow frame at the next reconcile pass (the zero-copy path)."""
        policy = NomadPolicy()
        kernel, process = attach(policy, write_fraction=0.0)
        vpns = make_slow(kernel, process, 8)
        policy.on_fault(process, fault_batch(process, vpns))
        kernel.migration.migrate(process, vpns, SLOW_TIER)
        free_before = kernel.machine.slow.free_pages
        policy._reconcile(kernel.clock.now)
        assert policy.shadow_free_demotions == 8
        assert policy.shadow_mask(process).sum() == 0
        assert kernel.machine.slow.free_pages == free_before + 8

    def test_reconcile_reclaims_under_pressure(self):
        """When slow-tier free pages dip below the reserve, shadows are
        reclaimed first."""
        policy = NomadPolicy()
        kernel, process = attach(policy, write_fraction=0.0)
        vpns = make_slow(kernel, process, 8)
        policy.on_fault(process, fault_batch(process, vpns))
        assert policy.shadow_mask(process).sum() == 8
        policy.shadow_reserve_pages = (
            kernel.machine.slow.free_pages + 4
        )
        policy._reconcile(kernel.clock.now)
        assert policy.shadow_mask(process).sum() == 4

    def test_abort_probability_increases_with_heat(self):
        policy = NomadPolicy(abort_window_ns=1000)
        attach(policy, write_fraction=0.5)
        window = float(policy.abort_window_ns)
        hot = 0.5 * -np.expm1(-window / 100.0)
        cold = 0.5 * -np.expm1(-window / 1e9)
        assert hot > cold


class TestTierBPF:
    def test_hot_pages_admitted(self):
        """A tiny CIT predicts enough re-accesses to amortize the copy:
        the page is admitted and its requeue debt cleared."""
        policy = TierBPFPolicy()
        kernel, process = attach(policy)
        vpns = make_slow(kernel, process, 4)
        policy.rejection_counts(process)[vpns] = 3
        policy.on_fault(process, fault_batch(process, vpns, cits=[1] * 4))
        assert policy.admitted_pages == 4
        assert np.all(process.pages.tier[vpns] == FAST_TIER)
        assert np.all(policy.rejection_counts(process)[vpns] == 0)

    def test_cold_pages_rejected_and_requeued(self):
        """A CIT as long as the payback horizon prices the benefit at
        one access's latency gain -- far below the migration cost."""
        policy = TierBPFPolicy(requeue_boost=0.0)
        kernel, process = attach(policy)
        assert policy._gain_per_access_ns < policy._cost_per_page_ns
        vpns = make_slow(kernel, process, 4)
        cold = [policy.payback_horizon_ns] * 4
        policy.on_fault(process, fault_batch(process, vpns, cits=cold))
        assert policy.rejected_pages == 4
        assert np.all(process.pages.tier[vpns] == SLOW_TIER)
        assert np.all(policy.rejection_counts(process)[vpns] == 1)

    def test_requeue_boost_eventually_admits(self):
        """Each rejection is fresh evidence: with a large boost the
        second fault of the same page passes the admission test."""
        policy = TierBPFPolicy(requeue_boost=1e9)
        kernel, process = attach(policy)
        vpns = make_slow(kernel, process, 2)
        cold = [policy.payback_horizon_ns] * 2
        policy.on_fault(process, fault_batch(process, vpns, cits=cold))
        assert policy.rejected_pages == 2
        policy.on_fault(process, fault_batch(process, vpns, cits=cold))
        assert policy.admitted_pages == 2
        assert np.all(process.pages.tier[vpns] == FAST_TIER)

    def test_rejection_counter_capped(self):
        policy = TierBPFPolicy(requeue_boost=0.0, max_requeues=2)
        kernel, process = attach(policy)
        vpns = make_slow(kernel, process, 2)
        cold = [policy.payback_horizon_ns] * 2
        for _ in range(5):
            policy.on_fault(
                process, fault_batch(process, vpns, cits=cold)
            )
        assert np.all(policy.rejection_counts(process)[vpns] == 2)


class TestARMS:
    def test_threshold_gates_promotion(self):
        policy = ARMSPolicy(initial_threshold_ns=1000)
        kernel, process = attach(policy)
        vpns = make_slow(kernel, process, 2)
        policy.on_fault(
            process, fault_batch(process, vpns, cits=[100, 5000])
        )
        assert process.pages.tier[vpns[0]] == FAST_TIER
        assert process.pages.tier[vpns[1]] == SLOW_TIER

    def test_drift_resets_threshold(self):
        """A fault-rate step larger than drift_ratio x the long-horizon
        EWMA restores the initial threshold instead of walking there."""
        policy = ARMSPolicy(initial_threshold_ns=1000)
        kernel, _ = attach(policy)
        policy._faults_since_tune = 100
        policy._tune(kernel.clock.now)  # seeds both EWMAs
        policy.tuner.threshold_ns = 123.0  # drifted operating point
        policy._faults_since_tune = 100_000
        policy._tune(kernel.clock.now)
        assert policy.drift_resets == 1
        assert policy.threshold_ns == 1000.0

    def test_steady_rate_tunes_instead(self):
        """Without drift the multiplicative controller walks the
        threshold -- no reset, threshold moves off its initial value."""
        policy = ARMSPolicy(initial_threshold_ns=1000)
        kernel, _ = attach(policy)
        policy._faults_since_tune = 100
        policy._tune(kernel.clock.now)
        policy._faults_since_tune = 100
        policy._tune(kernel.clock.now)
        assert policy.drift_resets == 0
        assert policy.threshold_ns != 1000.0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            ARMSPolicy(short_alpha=0.1, long_alpha=0.5)


class TestJenga:
    def test_refractory_window_blocks_repromotion(self):
        policy = JengaPolicy(refractory_ns=10 * SECOND)
        kernel, process = attach(policy)
        vpns = make_slow(kernel, process, 4)
        policy.last_demote_ns(process)[vpns] = kernel.clock.now
        policy.on_fault(process, fault_batch(process, vpns))
        assert policy.damped_pages == 4
        assert np.all(process.pages.tier[vpns] == SLOW_TIER)

    def test_demotion_pressure_damps_promotion(self):
        """Heavy recent demotion traffic shrinks the admissible share
        of a fault batch toward (but never to) zero."""
        policy = JengaPolicy()
        kernel, process = attach(policy)
        policy.recent_demotions = 1e12
        assert policy.damping_factor() < 1e-6
        vpns = make_slow(kernel, process, 8)
        policy.on_fault(process, fault_batch(process, vpns))
        # ceil keeps one page admissible even under extreme pressure
        assert policy.damped_pages == 7
        assert np.count_nonzero(
            process.pages.tier[vpns] == FAST_TIER
        ) == 1

    def test_quiet_history_promotes_eagerly(self):
        policy = JengaPolicy()
        kernel, process = attach(policy)
        assert policy.damping_factor() == 1.0
        vpns = make_slow(kernel, process, 8)
        policy.on_fault(process, fault_batch(process, vpns))
        assert policy.damped_pages == 0
        assert np.all(process.pages.tier[vpns] == FAST_TIER)

    def test_background_pass_demotes_toward_headroom(self):
        policy = JengaPolicy(demote_batch_pages=8)
        kernel, process = attach(policy)
        policy.headroom_pages = kernel.machine.fast.free_pages + 8
        fast_before = np.count_nonzero(
            process.pages.tier == FAST_TIER
        )
        policy._background_pass(kernel.clock.now)
        fast_after = np.count_nonzero(process.pages.tier == FAST_TIER)
        assert fast_after == fast_before - 8
        assert policy.recent_demotions == 8.0
        demoted = np.flatnonzero(
            np.isfinite(policy.last_demote_ns(process))
        )
        assert demoted.size == 8

    def test_background_pass_demotes_coldest_first(self):
        policy = JengaPolicy(demote_batch_pages=4)
        kernel, process = attach(policy)
        policy.headroom_pages = kernel.machine.fast.free_pages + 4
        heat = policy.heat(process)
        fast = np.flatnonzero(process.pages.tier == FAST_TIER)
        heat[fast] = 10.0
        cold = fast[:4]
        heat[cold] = 0.0
        policy._background_pass(kernel.clock.now)
        assert np.all(process.pages.tier[cold] == SLOW_TIER)
