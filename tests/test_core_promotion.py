"""Tests for the rate-limited promotion queue."""

import numpy as np
import pytest

from repro.core.promotion import PromotionQueue
from repro.sim.timeunits import SECOND
from tests.conftest import make_process


@pytest.fixture
def process():
    return make_process(n_pages=64)


class TestEnqueue:
    def test_enqueue_counts(self, process):
        queue = PromotionQueue(100.0)
        added = queue.enqueue(process, np.array([1, 2, 3]))
        assert added == 3
        assert len(queue) == 3
        assert queue.enqueued_total == 3

    def test_duplicates_ignored(self, process):
        queue = PromotionQueue(100.0)
        queue.enqueue(process, np.array([1, 2]))
        added = queue.enqueue(process, np.array([2, 3]))
        assert added == 1
        assert len(queue) == 3

    def test_remove(self, process):
        queue = PromotionQueue(100.0)
        queue.enqueue(process, np.array([1, 2, 3]))
        removed = queue.remove(process, np.array([2, 9]))
        assert removed == 1
        assert len(queue) == 2

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PromotionQueue(0)

    def test_set_rate_limit(self):
        queue = PromotionQueue(100.0)
        queue.set_rate_limit(50.0)
        assert queue.rate_limit_pages_per_sec == 50.0
        with pytest.raises(ValueError):
            queue.set_rate_limit(-1)


class TestDrain:
    def test_budget_respected(self, process):
        queue = PromotionQueue(rate_limit_pages_per_sec=10.0)
        queue.enqueue(process, np.arange(20))
        batches = queue.drain(elapsed_ns=SECOND)
        total = sum(v.size for _, v in batches)
        assert total == 10
        assert len(queue) == 10
        assert queue.dequeued_total == 10

    def test_fifo_order(self, process):
        queue = PromotionQueue(10.0)
        queue.enqueue(process, np.array([5, 1, 9]))
        ((_, vpns),) = queue.drain(elapsed_ns=SECOND)
        np.testing.assert_array_equal(vpns, [5, 1, 9])

    def test_fractional_budget_carries_over(self, process):
        queue = PromotionQueue(rate_limit_pages_per_sec=1.0)
        queue.enqueue(process, np.arange(4))
        assert queue.drain(SECOND // 2) == []
        batches = queue.drain(SECOND // 2)
        total = sum(v.size for _, v in batches)
        assert total == 1

    def test_carry_resets_when_queue_drained(self, process):
        queue = PromotionQueue(1000.0)
        queue.enqueue(process, np.array([1]))
        queue.drain(SECOND)
        # Queue empty; a long idle gap must not accumulate burst credit
        # beyond the available work.
        queue.enqueue(process, np.array([2]))
        batches = queue.drain(SECOND)
        assert sum(v.size for _, v in batches) == 1

    def test_multiple_processes_batched_separately(self):
        a, b = make_process(pid=1), make_process(pid=2)
        queue = PromotionQueue(100.0)
        queue.enqueue(a, np.array([1]))
        queue.enqueue(b, np.array([2]))
        queue.enqueue(a, np.array([3]))
        batches = queue.drain(SECOND)
        assert [(p.pid, v.tolist()) for p, v in batches] == [
            (1, [1, 3]),
            (2, [2]),
        ]

    def test_negative_elapsed_rejected(self, process):
        queue = PromotionQueue(10.0)
        with pytest.raises(ValueError):
            queue.drain(-1)


class TestEnqueueRate:
    def test_rate_over_window(self, process):
        queue = PromotionQueue(100.0)
        queue.enqueue(process, np.arange(50))
        rate = queue.enqueue_rate_per_sec(window_ns=SECOND // 2)
        assert rate == pytest.approx(100.0)

    def test_window_resets(self, process):
        queue = PromotionQueue(100.0)
        queue.enqueue(process, np.arange(10))
        queue.enqueue_rate_per_sec(SECOND)
        assert queue.enqueue_rate_per_sec(SECOND) == 0.0

    def test_bad_window(self, process):
        queue = PromotionQueue(100.0)
        with pytest.raises(ValueError):
            queue.enqueue_rate_per_sec(0)
