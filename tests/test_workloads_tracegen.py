"""Tests for the fleet traffic generator."""

import numpy as np
import pytest

from repro.sim.timeunits import SECOND
from repro.workloads.base import TraceWorkload
from repro.workloads.compile import StationaryTableWorkload
from repro.workloads.tracegen import (
    make_traffic_processes,
    pattern_table,
    tenant_user_shares,
)


def small_fleet(**kwargs):
    defaults = dict(
        n_tenants=16,
        n_users=10_000,
        pages_per_tenant=64,
        n_patterns=4,
        duration_ns=2 * SECOND,
        seed=7,
    )
    defaults.update(kwargs)
    return make_traffic_processes(**defaults)


class TestShares:
    def test_zipf_shares_sum_to_one_and_decrease(self):
        shares = tenant_user_shares(100, zipf_s=1.1)
        assert shares.sum() == pytest.approx(1.0)
        assert np.all(np.diff(shares) < 0)

    def test_no_tenants_rejected(self):
        with pytest.raises(ValueError):
            tenant_user_shares(0, zipf_s=1.0)


class TestPatternTables:
    def test_same_pattern_shares_one_frozen_array(self):
        a = pattern_table(64, pattern=1, n_patterns=4)
        b = pattern_table(64, pattern=1, n_patterns=4)
        assert a is b
        assert not a.flags.writeable
        assert a.sum() == pytest.approx(1.0)

    def test_distinct_patterns_hit_distinct_hot_pages(self):
        a = pattern_table(64, pattern=0, n_patterns=4)
        b = pattern_table(64, pattern=2, n_patterns=4)
        assert int(np.argmax(a)) != int(np.argmax(b))


class TestFleet:
    def test_stationary_fleet_is_internable(self):
        processes = small_fleet()
        assert len(processes) == 16
        tables = {
            id(p.workload.access_distribution()) for p in processes
        }
        # 16 tenants present at most n_patterns distinct table
        # identities: the arena interning key.
        assert len(tables) <= 4
        assert all(
            isinstance(p.workload, StationaryTableWorkload)
            for p in processes
        )

    def test_deterministic_under_seed(self):
        a = small_fleet()
        b = small_fleet()
        assert [p.workload.delay_ns_per_access for p in a] == [
            p.workload.delay_ns_per_access for p in b
        ]
        for pa, pb in zip(a, b):
            assert pa.workload.access_distribution() is (
                pb.workload.access_distribution()
            )

    def test_delay_ladder_is_geometric_and_bucketed(self):
        processes = small_fleet(base_delay_units=100)
        base_ns = processes[0].workload.delay_ns_per_access
        ratios = {
            p.workload.delay_ns_per_access / base_ns
            for p in processes
        }
        # Every tenant pair sits a whole power-of-two apart on the
        # ladder, so interning classes stay coarse.
        assert all(
            np.isclose(r, 2.0 ** round(np.log2(r)), rtol=1e-9)
            for r in ratios
        )

    def test_churn_split_between_exiters_and_spawners(self):
        processes = small_fleet(churn_fraction=0.5)
        exiters = [
            p for p in processes if p.target_accesses is not None
        ]
        spawners = [
            p for p in processes
            if isinstance(p.workload, TraceWorkload)
            and float(
                p.workload.access_distribution(now_ns=0).sum()
            ) == 0.0
        ]
        assert len(exiters) == 4
        assert len(spawners) == 4
        assert all(p.target_accesses >= 1.0 for p in exiters)

    def test_spawner_lead_in_then_pattern(self):
        processes = small_fleet(churn_fraction=0.5)
        spawner = next(
            p for p in processes
            if isinstance(p.workload, TraceWorkload)
            and float(
                p.workload.access_distribution(now_ns=0).sum()
            ) == 0.0
        )
        horizon = spawner.workload.stable_until_ns(0)
        # Idle until the arrival instant, busy pattern afterwards.
        assert 0 < horizon < 2 * SECOND
        after = spawner.workload.access_distribution(now_ns=horizon)
        assert float(after.sum()) == pytest.approx(1.0)

    def test_shifters_cycle_two_patterns(self):
        processes = small_fleet(phase_shift_fraction=0.25)
        shifters = [
            p for p in processes
            if isinstance(p.workload, TraceWorkload)
            and float(
                p.workload.access_distribution(now_ns=0).sum()
            ) > 0.0
        ]
        assert len(shifters) == 4
        workload = shifters[0].workload
        first = workload.access_distribution(now_ns=0)
        second = workload.access_distribution(
            now_ns=workload.stable_until_ns(0)
        )
        assert first is not second
        assert float(np.abs(first - second).sum()) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            small_fleet(churn_fraction=1.5)
        with pytest.raises(ValueError):
            small_fleet(churn_fraction=0.6, phase_shift_fraction=0.6)
        with pytest.raises(ValueError):
            small_fleet(n_users=0)
        with pytest.raises(ValueError):
            small_fleet(base_delay_units=0)

    def test_obs_emission(self):
        from repro.obs import ObsHub

        hub = ObsHub.create(trace=True, metrics=True)
        small_fleet(churn_fraction=0.25, obs=hub)
        events = [
            e for e in hub.tracer.events()
            if e["type"] == "tracegen.fleet"
        ]
        assert len(events) == 1
        assert events[0]["n_tenants"] == 16
        assert events[0]["n_churn"] == 4
        snapshot = hub.snapshot()
        assert snapshot["gauges"]["tracegen.tenants"] == 16.0


class TestFleetRuns:
    def test_churny_fleet_runs_and_exiters_finish(self):
        from repro.harness.experiments import StandardSetup
        from repro.harness.runner import run_experiment

        setup = StandardSetup(duration_ns=2 * SECOND)
        processes = small_fleet(
            churn_fraction=0.25, base_delay_units=50
        )
        policy = setup.build_policy("linux-nb")
        result = run_experiment(
            processes, policy, setup.run_config(arena=True)
        )
        assert result.throughput_per_sec > 0
        exiters = [
            p for p in processes if p.target_accesses is not None
        ]
        assert exiters
        assert any(
            p.stats.accesses >= p.target_accesses for p in exiters
        )

    def test_traffic_builder_registered(self):
        from repro.harness.experiments import StandardSetup, build_fleet

        setup = StandardSetup(duration_ns=SECOND)
        processes = build_fleet(
            setup, "traffic", n_tenants=8, pages_per_tenant=64
        )
        assert len(processes) == 8
