"""Tests for the chrono-sim command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

FAST_ARGS = [
    "--duration", "3",
    "--procs", "2",
    "--pages", "256",
    "--fast-pages", "256",
    "--slow-pages", "1024",
    "--page-scale", "8",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "chrono"
        assert args.workload == "pmbench"
        assert args.duration == 60.0

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "nope"])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "spec"])


class TestRun:
    def test_run_text_output(self, capsys):
        assert main(["run", "--policy", "multiclock"] + FAST_ARGS) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "FMAR" in out

    def test_run_json_output(self, capsys):
        assert (
            main(["run", "--policy", "multiclock", "--json"] + FAST_ARGS)
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "multiclock"
        assert payload["throughput_per_sec"] > 0
        assert 0 <= payload["fmar"] <= 1
        assert "p99" in payload["latency_ns"]

    @pytest.mark.parametrize(
        "workload",
        ["graph500", "memcached", "redis", "shifting-hotspot"],
    )
    def test_run_other_workloads(self, workload, capsys):
        assert (
            main(
                ["run", "--policy", "multiclock",
                 "--workload", workload] + FAST_ARGS
            )
            == 0
        )
        assert "throughput" in capsys.readouterr().out


class TestCompare:
    def test_compare_two_policies(self, capsys):
        code = main(
            ["compare", "--policies", "linux-nb", "multiclock"]
            + FAST_ARGS
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "vs linux-nb" in out
        assert "multiclock" in out

    def test_baseline_must_be_compared(self, capsys):
        code = main(
            ["compare", "--policies", "multiclock", "--baseline",
             "linux-nb"] + FAST_ARGS
        )
        assert code == 2
        assert "baseline" in capsys.readouterr().err


class TestInfoCommands:
    def test_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "Chrono [Ours]" in out
        assert "chrono-full" in out

    def test_defaults(self, capsys):
        assert main(["defaults"]) == 0
        out = capsys.readouterr().out
        assert "chrono.scan_period_sec" in out
        assert "chrono.p_victim" in out
