"""Tests for the chrono-sim command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

FAST_ARGS = [
    "--duration", "3",
    "--procs", "2",
    "--pages", "256",
    "--fast-pages", "256",
    "--slow-pages", "1024",
    "--page-scale", "8",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "chrono"
        assert args.workload == "pmbench"
        assert args.duration == 60.0

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "nope"])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "spec"])


class TestRun:
    def test_run_text_output(self, capsys):
        assert main(["run", "--policy", "multiclock"] + FAST_ARGS) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "FMAR" in out

    def test_run_json_output(self, capsys):
        assert (
            main(["run", "--policy", "multiclock", "--json"] + FAST_ARGS)
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "multiclock"
        assert payload["throughput_per_sec"] > 0
        assert 0 <= payload["fmar"] <= 1
        assert "p99" in payload["latency_ns"]

    @pytest.mark.parametrize(
        "workload",
        ["graph500", "memcached", "redis", "shifting-hotspot"],
    )
    def test_run_other_workloads(self, workload, capsys):
        assert (
            main(
                ["run", "--policy", "multiclock",
                 "--workload", workload] + FAST_ARGS
            )
            == 0
        )
        assert "throughput" in capsys.readouterr().out


class TestRunObservability:
    def test_trace_writes_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "out.jsonl"
        code = main(
            ["run", "--policy", "chrono", "--trace", str(trace)]
            + FAST_ARGS
        )
        assert code == 0
        assert f"trace written to {trace}" in capsys.readouterr().out
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert events
        assert all("type" in e and "t" in e for e in events)
        assert any(e["type"] == "engine.quantum" for e in events)

    def test_metrics_text_output(self, capsys):
        code = main(
            ["run", "--policy", "chrono", "--metrics"] + FAST_ARGS
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics: counters" in out
        assert "engine.quanta" in out
        assert "metrics: gauges" in out

    def test_metrics_json_output(self, capsys):
        code = main(
            ["run", "--policy", "chrono", "--metrics", "--json"]
            + FAST_ARGS
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        metrics = payload["metrics"]
        assert metrics["counters"]["engine.quanta"] > 0
        assert "promotion.queue_depth" in metrics["gauges"]
        assert "fault.cit_ns" in metrics["histograms"]

    def test_observe_implies_all_three(self, tmp_path, capsys):
        trace = tmp_path / "obs.jsonl"
        code = main(
            ["run", "--policy", "chrono", "--observe", str(trace)]
            + FAST_ARGS
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wall-time profile" in out
        assert "metrics: counters" in out
        assert trace.exists()

    def test_profile_rows_sorted_descending(self, capsys):
        code = main(
            ["run", "--policy", "chrono", "--profile"] + FAST_ARGS
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = out.split("wall-time profile")[1].strip().splitlines()
        seconds = [
            float(line.split()[1]) for line in lines[2:] if line.strip()
        ]
        assert seconds == sorted(seconds, reverse=True)


class TestTraceCommand:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert (
            main(
                ["run", "--policy", "chrono", "--trace", str(path)]
                + FAST_ARGS
            )
            == 0
        )
        return path

    def test_summary_and_epochs(self, trace_path, capsys):
        capsys.readouterr()
        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "engine.quantum" in out

    def test_json_epochs(self, trace_path, capsys):
        capsys.readouterr()
        assert (
            main(["trace", str(trace_path), "--epoch-sec", "0.5",
                  "--json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["total"] > 0
        assert all("promoted" in row for row in payload["epochs"])

    def test_page_timeline(self, trace_path, capsys):
        capsys.readouterr()
        events = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        fault = next(e for e in events if e["type"] == "fault.batch")
        page = f"{fault['pid']}:{fault['vpns'][0]}"
        assert main(["trace", str(trace_path), "--page", page]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out
        assert "fault.batch" in out

    def test_page_timeline_no_events(self, trace_path, capsys):
        capsys.readouterr()
        assert (
            main(["trace", str(trace_path), "--page", "999:999"]) == 0
        )
        assert "no events" in capsys.readouterr().out

    def test_bad_page_arg(self, trace_path):
        with pytest.raises(SystemExit):
            main(["trace", str(trace_path), "--page", "nonsense"])


class TestCompare:
    def test_compare_two_policies(self, capsys):
        code = main(
            ["compare", "--policies", "linux-nb", "multiclock"]
            + FAST_ARGS
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "vs linux-nb" in out
        assert "multiclock" in out

    def test_baseline_must_be_compared(self, capsys):
        code = main(
            ["compare", "--policies", "multiclock", "--baseline",
             "linux-nb"] + FAST_ARGS
        )
        assert code == 2
        assert "baseline" in capsys.readouterr().err


class TestInfoCommands:
    def test_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "Chrono [Ours]" in out
        assert "chrono-full" in out

    def test_defaults(self, capsys):
        assert main(["defaults"]) == 0
        out = capsys.readouterr().out
        assert "chrono.scan_period_sec" in out
        assert "chrono.p_victim" in out


REPLAY_MACHINE = [
    "--fast-pages", "256",
    "--slow-pages", "1024",
    "--page-scale", "8",
]

FIXTURE_CSV = "tests/data/sample_events.csv"
FIXTURE_NPZ = "tests/data/sample_trace.npz"


class TestReplay:
    def test_replay_csv_fixture(self, capsys):
        code = main(
            ["replay", FIXTURE_CSV, "--policy", "multiclock"]
            + REPLAY_MACHINE
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fusion ratio" in out
        assert "compiled traces" in out

    def test_replay_json(self, capsys):
        code = main(
            ["replay", FIXTURE_NPZ, FIXTURE_CSV, "--json"]
            + REPLAY_MACHINE
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "chrono"
        assert payload["throughput_per_sec"] > 0
        assert 0.0 <= payload["fusion_ratio"] <= 1.0
        # One window-format trace plus two event-stream pids.
        assert len(payload["traces"]) == 3
        assert any(t["n_idle_windows"] >= 1 for t in payload["traces"])

    def test_replay_duration_override(self, capsys):
        code = main(
            ["replay", FIXTURE_CSV, "--duration", "2", "--no-fusion"]
            + REPLAY_MACHINE
        )
        assert code == 0
        payload_out = capsys.readouterr().out
        assert "2.0 s" in payload_out

    def test_replay_missing_file(self):
        with pytest.raises(FileNotFoundError):
            main(["replay", "no/such/file.npz"] + REPLAY_MACHINE)


class TestTraffic:
    TRAFFIC_ARGS = [
        "--tenants", "8",
        "--users", "1000",
        "--pages", "64",
        "--patterns", "4",
        "--duration", "2",
    ] + REPLAY_MACHINE

    def test_traffic_text_output(self, capsys):
        code = main(["traffic", "--policy", "linux-nb"]
                    + self.TRAFFIC_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "tenants           8" in out
        assert "interned" in out

    def test_traffic_json_with_churn(self, capsys):
        code = main(
            ["traffic", "--json", "--churn-fraction", "0.25",
             "--shift-fraction", "0.25"] + self.TRAFFIC_ARGS
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_tenants"] == 8
        assert payload["throughput_per_sec"] > 0
        assert payload["interned_segments"] >= 0
