"""Tests for the quantum execution engine."""

import numpy as np
import pytest

from repro.harness.engine import QuantumEngine
from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.sim.timeunits import MILLISECOND, SECOND
from tests.conftest import make_kernel, make_process


def build(n_procs=1, n_pages=128, fast_pages=64, slow_pages=512,
          quantum_ns=10 * MILLISECOND, **workload_kwargs):
    kernel = make_kernel(fast_pages=fast_pages, slow_pages=slow_pages)
    processes = [
        make_process(pid=i, n_pages=n_pages, **workload_kwargs)
        for i in range(n_procs)
    ]
    for process in processes:
        kernel.register_process(process)
    kernel.allocate_initial_placement()
    engine = QuantumEngine(kernel, quantum_ns=quantum_ns)
    return kernel, engine, processes


class TestRunBasics:
    def test_time_advances_to_duration(self):
        kernel, engine, _ = build()
        end = engine.run(SECOND)
        assert end == SECOND
        assert kernel.clock.now == SECOND

    def test_accesses_accumulate(self):
        _, engine, (process,) = build()
        engine.run(SECOND)
        assert process.stats.accesses > 0
        assert process.stats.user_time_ns > 0

    def test_throughput_scales_with_placement(self):
        # All-fast placement beats all-slow placement.
        kernel_fast, engine_fast, (p_fast,) = build(
            n_pages=32, fast_pages=64
        )
        p_fast.pages.move_to_tier(np.arange(32), FAST_TIER)
        engine_fast.run(SECOND)

        kernel_slow, engine_slow, (p_slow,) = build(
            n_pages=32, fast_pages=64
        )
        p_slow.pages.move_to_tier(np.arange(32), SLOW_TIER)
        engine_slow.run(SECOND)
        assert p_fast.stats.accesses > 1.5 * p_slow.stats.accesses

    def test_delay_throttles_throughput(self):
        _, engine_fast, (quick,) = build()
        engine_fast.run(SECOND)
        _, engine_slow, (slowed,) = build(delay_ns=5_000)
        engine_slow.run(SECOND)
        assert quick.stats.accesses > 10 * slowed.stats.accesses

    def test_rejects_bad_params(self):
        kernel, engine, _ = build()
        with pytest.raises(ValueError):
            QuantumEngine(kernel, quantum_ns=0)
        with pytest.raises(ValueError):
            engine.run(0)


class TestFaultGeneration:
    def test_protected_hot_pages_fault(self):
        kernel, engine, (process,) = build()
        process.pages.protect(np.arange(16), now_ns=0)  # hot stub pages
        engine.run(200 * MILLISECOND)
        assert kernel.stats.hint_faults > 0
        assert not process.pages.prot_none[:16].all()

    def test_fault_costs_charged(self):
        kernel, engine, (process,) = build()
        process.pages.protect(np.arange(16), now_ns=0)
        engine.run(200 * MILLISECOND)
        assert process.stats.kernel_time_ns > 0

    def test_never_accessed_pages_do_not_fault(self):
        kernel, engine, (process,) = build()
        # Stub workload touches every page; zero out the tail.
        probs = process.workload._probs
        probs[-16:] = 0
        probs /= probs.sum()
        process.pages.protect(
            np.arange(process.n_pages - 16, process.n_pages), now_ns=0
        )
        engine.run(SECOND)
        assert process.pages.prot_none[-16:].all()

    def test_ground_truth_counters_accumulate(self):
        _, engine, (process,) = build()
        engine.run(SECOND)
        counts = process.pages.access_count
        assert counts.sum() == pytest.approx(
            process.stats.accesses, rel=1e-6
        )
        # Stub workload: first quarter of pages is hot.
        assert counts[:16].mean() > counts[32:].mean()


class TestObservers:
    def test_observer_called_each_quantum_by_default(self):
        _, engine, _ = build(quantum_ns=100 * MILLISECOND)
        ticks = []
        engine.run(SECOND, observer=lambda e, now: ticks.append(now))
        assert len(ticks) == 10

    def test_observe_every(self):
        _, engine, _ = build(quantum_ns=100 * MILLISECOND)
        ticks = []
        engine.run(
            SECOND,
            observer=lambda e, now: ticks.append(now),
            observe_every_ns=500 * MILLISECOND,
        )
        assert len(ticks) == 2

    def test_stop_when_finished(self):
        kernel, engine, (process,) = build()
        process.target_accesses = 1000.0
        end = engine.run(60 * SECOND, stop_when_finished=True)
        assert process.finished
        assert end < 60 * SECOND


class TestLatencyAccounting:
    def test_mixture_populated(self):
        _, engine, (process,) = build()
        engine.run(SECOND)
        assert engine.latency.total > 0
        assert process.pid in engine.latency_by_pid
        summary = engine.latency.summary()
        assert summary["p99"] >= summary["median"]

    def test_slow_heavy_placement_raises_latency(self):
        _, engine_a, (pa,) = build(n_pages=32)
        pa.pages.move_to_tier(np.arange(32), FAST_TIER)
        engine_a.run(SECOND)
        _, engine_b, (pb,) = build(n_pages=32)
        pb.pages.move_to_tier(np.arange(32), SLOW_TIER)
        engine_b.run(SECOND)
        assert engine_b.latency.mean() > engine_a.latency.mean()


class TestContentionFeedback:
    def test_demand_tracked(self):
        _, engine, _ = build(n_procs=4)
        engine.run(SECOND)
        assert engine._prev_demand_bytes_per_sec.sum() > 0

    def test_write_heavy_mix_raises_slow_demand(self):
        _, engine_r, _ = build(n_procs=4, write_fraction=0.0)
        engine_r.run(SECOND)
        _, engine_w, _ = build(n_procs=4, write_fraction=1.0)
        engine_w.run(SECOND)
        # Optane write weighting triples the charged bytes per access.
        read_demand = engine_r._prev_demand_bytes_per_sec[SLOW_TIER]
        write_demand = engine_w._prev_demand_bytes_per_sec[SLOW_TIER]
        assert write_demand > 1.5 * read_demand
