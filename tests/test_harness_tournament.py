"""Tests for the cross-policy tournament harness."""

import json
import math

import pytest

from repro.harness.tournament import (
    REFERENCE_LABEL,
    _geomean,
    reference_cell,
    run_tournament,
    tournament_cells,
)
from repro.obs import ObsHub
from repro.sim.timeunits import SECOND

#: small-but-real cell parameters shared by the end-to-end tests
SETUP = {"duration_ns": 2 * SECOND, "fast_pages": 256}
WORKLOAD_KWARGS = {
    "pmbench": {"n_procs": 1, "pages_per_proc": 512},
}


class TestGeomean:
    def test_known_values(self):
        assert _geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert _geomean([3.0]) == pytest.approx(3.0)

    def test_empty_is_nan(self):
        assert math.isnan(_geomean([]))

    def test_non_finite_dropped(self):
        assert _geomean([4.0, float("inf"), -1.0]) == pytest.approx(4.0)
        assert math.isnan(_geomean([float("nan"), 0.0]))


class TestGrid:
    def test_references_come_first(self):
        cells = tournament_cells(
            policies=("linux-nb", "tpp"),
            workloads=("pmbench",),
            seeds=(0, 1),
            setup_kwargs=SETUP,
            workload_kwargs=WORKLOAD_KWARGS,
        )
        assert len(cells) == 2 + 2 * 2  # refs + policies x seeds
        refs, rest = cells[:2], cells[2:]
        assert all(c.label == REFERENCE_LABEL for c in refs)
        assert all(c.label == c.policy for c in rest)
        assert {c.seed for c in refs} == {0, 1}

    def test_reference_machine_holds_working_set(self):
        cell = reference_cell(
            "pmbench",
            seed=0,
            setup_kwargs=SETUP,
            workload_kwargs=WORKLOAD_KWARGS["pmbench"],
        )
        assert cell.policy == "linux-nb"
        assert cell.label == REFERENCE_LABEL
        # 512 working-set pages + the reference headroom
        assert cell.setup_kwargs["fast_pages"] == 512 + 1024

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            run_tournament(policies=())
        with pytest.raises(ValueError):
            run_tournament(workloads=())
        with pytest.raises(ValueError):
            run_tournament(seeds=())


class TestRunTournament:
    @pytest.fixture(scope="class")
    def result(self):
        self.progress_calls = []
        return run_tournament(
            policies=("linux-nb", "jenga"),
            workloads=("pmbench",),
            seeds=(0,),
            use_cache=False,
            setup_kwargs=SETUP,
            workload_kwargs=WORKLOAD_KWARGS,
        )

    def test_leaderboard_shape(self, result):
        assert len(result.leaderboard) == 2
        assert {row.policy for row in result.leaderboard} == {
            "linux-nb",
            "jenga",
        }
        geomeans = [r.geomean_slowdown for r in result.leaderboard]
        assert geomeans == sorted(geomeans)
        assert result.winner == result.leaderboard[0].policy

    def test_slowdowns_are_sane(self, result):
        """Tiered runs cannot meaningfully beat the all-DRAM machine."""
        assert result.references["pmbench:0"] > 0
        for row in result.leaderboard:
            assert row.geomean_slowdown > 0.9
            assert math.isfinite(row.geomean_slowdown)
            assert row.slowdowns["pmbench"] == pytest.approx(
                row.geomean_slowdown
            )

    def test_cells_carry_traffic_detail(self, result):
        assert len(result.cells) == 2
        for cell in result.cells:
            assert cell["workload"] == "pmbench"
            assert cell["promoted_pages"] >= 0
            assert cell["hint_faults"] >= 0

    def test_render_mentions_every_policy(self, result):
        table = result.render()
        assert "jenga" in table
        assert "linux-nb" in table
        assert "pmbench" in table

    def test_json_roundtrip(self, result, tmp_path):
        path = tmp_path / "tournament.json"
        result.write_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["policies"] == ["linux-nb", "jenga"]
        assert loaded["leaderboard"][0]["policy"] == result.winner
        assert len(loaded["cells"]) == 2


class TestObservability:
    def test_counters_and_progress(self):
        hub = ObsHub.create(metrics=True)
        calls = []
        result = run_tournament(
            policies=("linux-nb",),
            workloads=("pmbench",),
            seeds=(0,),
            use_cache=False,
            setup_kwargs=SETUP,
            workload_kwargs=WORKLOAD_KWARGS,
            obs=hub,
            progress=lambda cell, done, total: calls.append(
                (done, total)
            ),
        )
        counters = hub.snapshot()["counters"]
        assert counters["tournament.cells_run"] == 2  # ref + 1 policy
        assert counters["tournament.policies_ranked"] == 1
        assert calls == [(1, 2), (2, 2)]
        assert result.winner == "linux-nb"
