"""Tests for the Appendix B theory module."""

import numpy as np
import pytest

from repro.analysis import theory
from repro.sim.rng import RngStreams


class TestEstimatorVariance:
    def test_max_beats_mean_for_all_n(self):
        for n in range(1, 10):
            assert theory.max_estimator_variance(
                n
            ) <= theory.mean_estimator_variance(n)

    def test_strictly_better_for_n_ge_2(self):
        for n in range(2, 10):
            assert theory.max_estimator_variance(
                n
            ) < theory.mean_estimator_variance(n)

    def test_equal_at_n_1(self):
        assert theory.max_estimator_variance(1) == pytest.approx(
            theory.mean_estimator_variance(1)
        )

    def test_closed_forms(self):
        assert theory.mean_estimator_variance(3, period=2.0) == pytest.approx(
            4.0 / 9.0
        )
        assert theory.max_estimator_variance(3, period=2.0) == pytest.approx(
            4.0 / 15.0
        )

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            theory.mean_estimator_variance(0)

    def test_monte_carlo_matches_closed_form(self):
        rng = RngStreams(4).get("theory")
        (mean1, var1), (mean2, var2) = theory.simulate_estimators(
            n_rounds=2, period=1.0, trials=200_000, rng=rng
        )
        # Both unbiased around T0 = 1.
        assert mean1 == pytest.approx(1.0, abs=0.01)
        assert mean2 == pytest.approx(1.0, abs=0.01)
        assert var1 == pytest.approx(
            theory.mean_estimator_variance(2), rel=0.05
        )
        assert var2 == pytest.approx(
            theory.max_estimator_variance(2), rel=0.05
        )

    def test_simulate_validation(self):
        rng = RngStreams(0).get("x")
        with pytest.raises(ValueError):
            theory.simulate_estimators(0, 1.0, 10, rng)
        with pytest.raises(ValueError):
            theory.simulate_estimators(2, 1.0, 0, rng)


class TestHDensity:
    def test_alpha_1_is_constant(self):
        x = np.linspace(0.1, 5.0, 20)
        np.testing.assert_allclose(theory.h_density(x, 1.0), np.ones(20))

    def test_small_alpha_concentrates_hot_mass(self):
        """Smaller alpha -> taller peak in the hot region (Figure B1)."""
        x = np.linspace(0.01, 1.0, 500)
        peak_small = theory.h_density_normalized(x, 0.3).max()
        peak_large = theory.h_density_normalized(x, 0.9).max()
        assert peak_small > peak_large

    def test_deep_cold_tail_thins_with_small_alpha(self):
        """Asymptotically the alpha^(alpha x) factor dominates: small
        alpha decays faster in the deep cold region."""
        tail_small = theory.h_density_normalized(np.array([10.0]), 0.3)[0]
        tail_large = theory.h_density_normalized(np.array([10.0]), 0.9)[0]
        assert tail_small < tail_large

    def test_normalization_integrates_to_one(self):
        from scipy import integrate

        for alpha in (0.25, 0.5, 1.0):
            value, _ = integrate.quad(
                lambda x: float(
                    theory.h_density_normalized(np.array([x]), alpha)[0]
                ),
                0.0,
                1.0,
                limit=200,
            )
            assert value == pytest.approx(1.0, rel=1e-6)

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            theory.h_density(np.array([0.0]), 0.5)
        with pytest.raises(ValueError):
            theory.h_density(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            theory.h_density(np.array([1.0]), 1.5)


class TestSelectionEfficiency:
    def test_uniform_closed_form(self):
        # E(n) = (n-1)/n^2.
        assert theory.selection_efficiency_uniform(2) == pytest.approx(0.25)
        assert theory.selection_efficiency_uniform(3) == pytest.approx(2 / 9)
        assert theory.selection_efficiency_uniform(1) == 0.0

    def test_uniform_maximum_at_2(self):
        values = [
            theory.selection_efficiency_uniform(n) for n in range(1, 8)
        ]
        assert int(np.argmax(values)) + 1 == 2

    def test_integral_matches_closed_form_at_alpha_1(self):
        # S(n) = 1/(n-1) for h == 1.
        assert theory.misclassified_mass(1.0, 3) == pytest.approx(
            0.5, rel=1e-6
        )
        assert theory.real_hot_ratio(1.0, 3) == pytest.approx(2 / 3)
        assert theory.selection_efficiency(1.0, 3) == pytest.approx(2 / 9)

    def test_more_rounds_improve_purity(self):
        purities = [theory.real_hot_ratio(0.6, n) for n in (2, 3, 4)]
        assert purities == sorted(purities)

    def test_two_rounds_best_for_realistic_alphas(self):
        """Figure B2: n = 2 maximizes efficiency across the realistic
        alpha range."""
        for alpha in (0.4, 0.6, 0.8, 1.0):
            assert theory.best_round_count(alpha) == 2

    def test_best_round_validation(self):
        with pytest.raises(ValueError):
            theory.best_round_count(0.5, max_rounds=1)
