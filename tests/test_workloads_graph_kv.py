"""Tests for the Graph500 and KV-store workloads."""

import numpy as np
import pytest

from repro.workloads.graph500 import Graph500Workload
from repro.workloads.kvstore import KVStoreWorkload
from repro.workloads.multitenant import make_multitenant_processes


@pytest.fixture(scope="module")
def graph():
    return Graph500Workload(n_pages=64, phase_len_ns=100, seed=3)


class TestGraph500:
    def test_distribution_sums_to_one(self, graph):
        assert graph.access_distribution().sum() == pytest.approx(1.0)

    def test_degree_skew(self, graph):
        """Scale-free degree distribution: top pages clearly hotter than
        the median, but with the paper's 'mild difference' (not Zipf-like
        orders of magnitude)."""
        probs = np.sort(graph.access_distribution())[::-1]
        assert probs[0] > 2 * np.median(probs)
        assert probs[0] < 200 * np.median(probs)

    def test_all_pages_have_positive_mass(self, graph):
        assert (graph.access_distribution() > 0).all()

    def test_phases_rotate_with_time(self):
        graph = Graph500Workload(n_pages=64, phase_len_ns=100, seed=3)
        first = graph.access_distribution(now_ns=0).copy()
        changed = False
        for level in range(1, graph.n_levels):
            probs = graph.access_distribution(now_ns=level * 100)
            if not np.allclose(probs, first):
                changed = True
                break
        assert graph.n_levels >= 2
        assert changed

    def test_phase_schedule_wraps(self, graph):
        cycle = graph.n_levels * 100
        a = graph.access_distribution(now_ns=50).copy()
        b = graph.access_distribution(now_ns=50 + cycle)
        np.testing.assert_allclose(a, b)

    def test_hot_mask_tracks_degree(self, graph):
        mask = graph.hot_page_mask(0.25)
        probs = graph.access_distribution(now_ns=0)
        assert probs[mask].mean() > probs[~mask].mean()

    def test_deterministic_given_seed(self):
        a = Graph500Workload(n_pages=32, seed=7).access_distribution()
        b = Graph500Workload(n_pages=32, seed=7).access_distribution()
        np.testing.assert_allclose(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            Graph500Workload(n_pages=16, vertices_per_page=0)
        with pytest.raises(ValueError):
            Graph500Workload(n_pages=16, frontier_boost=0.5)
        with pytest.raises(ValueError):
            Graph500Workload(n_pages=16, phase_len_ns=0)


class TestKVStore:
    def test_distribution_sums_to_one(self):
        workload = KVStoreWorkload(n_pages=200)
        assert workload.access_distribution().sum() == pytest.approx(1.0)

    def test_index_pages_are_hot(self):
        workload = KVStoreWorkload(n_pages=200, index_traffic_share=0.3)
        probs = workload.access_distribution()
        index = workload.index_page_mask()
        assert probs[index].mean() > probs[~index].mean()
        assert probs[index].sum() == pytest.approx(0.3)

    def test_value_region_gaussian(self):
        workload = KVStoreWorkload(n_pages=400, index_fraction=0.05)
        probs = workload.access_distribution()
        values = probs[workload.n_index_pages:]
        center = values.argmax()
        assert 0.4 * len(values) < center < 0.6 * len(values)

    def test_set_get_ratio_sets_write_fraction(self):
        one_to_ten = KVStoreWorkload(n_pages=100, set_get_ratio=0.1)
        one_to_one = KVStoreWorkload(n_pages=100, set_get_ratio=1.0)
        assert one_to_ten.write_fraction == pytest.approx(0.1 / 1.1)
        assert one_to_one.write_fraction == pytest.approx(0.5)

    def test_redis_flavor_smears_heat(self):
        memcached = KVStoreWorkload(n_pages=400, flavor="memcached")
        redis = KVStoreWorkload(n_pages=400, flavor="redis")
        # Smearing lowers the peak value-page probability.
        m = memcached.access_distribution()[memcached.n_index_pages:]
        r = redis.access_distribution()[redis.n_index_pages:]
        assert r.max() <= m.max()

    def test_validation(self):
        with pytest.raises(ValueError):
            KVStoreWorkload(n_pages=100, set_get_ratio=-1)
        with pytest.raises(ValueError):
            KVStoreWorkload(n_pages=100, index_fraction=0)
        with pytest.raises(ValueError):
            KVStoreWorkload(n_pages=100, index_traffic_share=1.0)
        with pytest.raises(ValueError):
            KVStoreWorkload(n_pages=100, flavor="mongodb")


class TestMultitenant:
    def test_builds_n_tenants(self):
        tenants = make_multitenant_processes(n_tenants=5, pages_per_tenant=64)
        assert len(tenants) == 5
        names = [cg for _, cg in tenants]
        assert names == [f"cgroup-{i}" for i in range(5)]

    def test_delay_increases_with_index(self):
        tenants = make_multitenant_processes(n_tenants=4, pages_per_tenant=64)
        delays = [proc.workload.delay_ns_per_access for proc, _ in tenants]
        assert delays[0] == 0
        assert delays == sorted(delays)
        assert delays[3] > delays[1]

    def test_uniform_pattern(self):
        (proc, _), = make_multitenant_processes(
            n_tenants=1, pages_per_tenant=16
        )
        np.testing.assert_allclose(
            proc.workload.access_distribution(), np.full(16, 1 / 16)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            make_multitenant_processes(n_tenants=0)
        with pytest.raises(ValueError):
            make_multitenant_processes(n_tenants=2, delay_step_units=-1)
