"""Additional engine edge cases: contention feedback, phased workloads,
multi-policy quanta interplay."""

import numpy as np
import pytest

from repro.harness.engine import QuantumEngine
from repro.mem.machine import MachineSpec, TieredMachine
from repro.mem.tier import FAST_TIER, SLOW_TIER, dram_spec, optane_spec
from repro.kernel.kernel import Kernel
from repro.sim.rng import RngStreams
from repro.sim.timeunits import MILLISECOND, SECOND
from repro.vm.process import SimProcess
from repro.workloads.base import TraceWorkload
from tests.conftest import StubWorkload, make_kernel, make_process


def build_kernel_with(processes, fast_pages=128, slow_pages=1024):
    kernel = make_kernel(fast_pages=fast_pages, slow_pages=slow_pages)
    for process in processes:
        kernel.register_process(process)
    kernel.allocate_initial_placement()
    return kernel


class TestContentionFeedback:
    def test_saturation_self_limits(self):
        """When the slow tier saturates, throughput converges instead of
        oscillating (the demand-latency feedback loop is stable)."""
        spec = MachineSpec(
            tiers=(
                dram_spec(64),
                # A deliberately tiny-bandwidth slow tier.
                optane_spec(2048),
            ),
        )
        machine = TieredMachine(spec)
        machine.bandwidth_bytes[SLOW_TIER] = 2e8  # 200 MB/s
        kernel = Kernel(machine=machine, rng=RngStreams(0))
        procs = [make_process(pid=i, n_pages=256) for i in range(8)]
        for p in procs:
            kernel.register_process(p)
        kernel.allocate_initial_placement()
        engine = QuantumEngine(kernel, quantum_ns=20 * MILLISECOND)
        engine.run(2 * SECOND)
        # Quantum-to-quantum throughput at the end is stable: compare the
        # last two half-second windows.
        total = sum(p.stats.accesses for p in procs)
        assert total > 0
        # Latency reflects heavy contention on the slow tier.
        assert engine.latency.mean() > machine.slow.spec.read_latency_ns

    def test_contention_reduces_throughput(self):
        def run_with_bandwidth(bw):
            kernel = build_kernel_with(
                [make_process(pid=0, n_pages=256)]
            )
            kernel.machine.bandwidth_bytes[SLOW_TIER] = bw
            engine = QuantumEngine(kernel, quantum_ns=20 * MILLISECOND)
            engine.run(SECOND)
            return kernel.processes[0].stats.accesses

        fast_bus = run_with_bandwidth(1e11)
        slow_bus = run_with_bandwidth(1e8)
        assert slow_bus < fast_bus


class TestPhasedWorkloadsInEngine:
    def test_phase_shift_reflected_in_counters(self):
        phase_len = 500 * MILLISECOND
        workload = TraceWorkload(
            [
                (phase_len, np.array([1.0] + [0.0] * 63)),
                (phase_len, np.array([0.0] * 63 + [1.0])),
            ]
        )
        process = SimProcess(
            pid=0, workload=workload,
            rng=RngStreams(1).get("phase"),
        )
        kernel = build_kernel_with([process])
        engine = QuantumEngine(kernel, quantum_ns=50 * MILLISECOND)
        engine.run(phase_len)
        first_phase = process.pages.access_count.copy()
        assert first_phase[0] > 0 and first_phase[63] == 0
        engine.run(phase_len)
        second = process.pages.access_count - first_phase
        assert second[63] > 0 and second[0] == 0


class TestMultiProcessFairness:
    def test_identical_processes_progress_equally(self):
        procs = [make_process(pid=i, n_pages=128, seed=7) for i in range(4)]
        kernel = build_kernel_with(procs, fast_pages=256, slow_pages=1024)
        engine = QuantumEngine(kernel, quantum_ns=20 * MILLISECOND)
        engine.run(SECOND)
        counts = [p.stats.accesses for p in procs]
        assert max(counts) < 1.1 * min(counts)

    def test_quantum_time_accounting_consistent(self):
        process = make_process(n_pages=128)
        kernel = build_kernel_with([process])
        engine = QuantumEngine(kernel, quantum_ns=50 * MILLISECOND)
        engine.run(SECOND)
        # user + stall + kernel per process can never exceed wall time.
        assert process.stats.total_time_ns <= SECOND * 1.001
        # ... and with no kernel work it should be nearly fully busy.
        assert process.stats.total_time_ns > 0.98 * SECOND
