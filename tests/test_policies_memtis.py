"""Tests for the Memtis baseline."""

import numpy as np
import pytest

from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.policies.memtis import MemtisPolicy
from repro.sim.timeunits import SECOND
from tests.conftest import make_kernel, make_process


def attach(policy, fast_pages=64, slow_pages=512, n_pages=128):
    kernel = make_kernel(fast_pages=fast_pages, slow_pages=slow_pages)
    process = make_process(n_pages=n_pages)
    kernel.register_process(process)
    kernel.allocate_initial_placement()
    kernel.set_policy(policy)
    return kernel, process


def feed_samples(policy, process, counts):
    """Inject sampled counts directly into the per-process counters."""
    state = policy.state(process)
    state.counts += np.asarray(counts, dtype=np.float64)


class TestConfiguration:
    def test_no_scanner(self):
        policy = MemtisPolicy()
        kernel, _ = attach(policy)
        assert kernel.scanner is None

    def test_base_mode_splits_everything(self):
        policy = MemtisPolicy(page_granularity="base", hp_pages=8)
        _, process = attach(policy)
        assert policy.state(process).split.all()

    def test_huge_mode_starts_unsplit(self):
        policy = MemtisPolicy(page_granularity="huge", hp_pages=8)
        _, process = attach(policy)
        assert not policy.state(process).split.any()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(page_granularity="giant"),
            dict(classify_period_ns=0),
            dict(cooling_period_ns=0),
            dict(split_budget_per_pass=-1),
            dict(max_splits_per_process=-1),
            dict(split_skew_threshold=0),
            dict(migrate_batch_pages=0),
            dict(hp_pages=1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MemtisPolicy(**kwargs)


class TestSampling:
    def test_on_quantum_defers_then_flush_accumulates(self):
        policy = MemtisPolicy(sample_rate_per_sec=1e6)
        kernel, process = attach(policy)
        probs = process.workload.access_distribution()
        policy.on_quantum(process, probs, 10_000, 0, SECOND)
        state = policy.state(process)
        # The quantum hook is O(1): it only records the admitted budget.
        assert state.counts.sum() == 0
        assert len(state.pending) == 1
        # Quanta sharing the distribution array merge into one run.
        policy.on_quantum(process, probs, 10_000, SECOND, SECOND)
        assert len(state.pending) == 1
        policy._flush_samples(process, state, 2 * SECOND)
        assert state.counts.sum() > 0
        assert not state.pending
        assert process.pending_kernel_ns > 0  # drain overhead charged


class TestClassification:
    def test_promotes_hot_group(self):
        policy = MemtisPolicy(
            page_granularity="huge", hp_pages=8, split_budget_per_pass=0
        )
        kernel, process = attach(
            policy, fast_pages=512, slow_pages=512, n_pages=128
        )
        # Make group 15 (pages 120..128, on the slow tier) clearly hot.
        counts = np.zeros(128)
        counts[120:128] = 50.0
        feed_samples(policy, process, counts)
        policy._classify_process(process, now_ns=0)
        assert (process.pages.tier[120:128] == FAST_TIER).all()

    def test_bloat_whole_group_promoted(self):
        """Only one page of the group is sampled hot, but the whole 2MB
        region moves -- the memory-bloat behaviour."""
        policy = MemtisPolicy(
            page_granularity="huge", hp_pages=8, split_budget_per_pass=0
        )
        kernel, process = attach(
            policy, fast_pages=512, slow_pages=512, n_pages=128
        )
        counts = np.zeros(128)
        counts[120] = 50.0
        feed_samples(policy, process, counts)
        policy._classify_process(process, now_ns=0)
        assert (process.pages.tier[120:128] == FAST_TIER).all()

    def test_demotes_cold_resident_groups(self):
        policy = MemtisPolicy(
            page_granularity="huge", hp_pages=8, split_budget_per_pass=0
        )
        kernel, process = attach(
            policy, fast_pages=512, slow_pages=512, n_pages=128
        )
        fast_vpns = process.pages.pages_in_tier(FAST_TIER)
        assert fast_vpns.size > 0
        # No samples anywhere: resident fast pages are not "desired".
        policy._classify_process(process, now_ns=0)
        assert process.pages.count_in_tier(FAST_TIER) == 0

    def test_oversized_group_does_not_block_smaller(self):
        policy = MemtisPolicy(
            page_granularity="huge", hp_pages=8, split_budget_per_pass=0
        )
        kernel, process = attach(
            policy, fast_pages=256, slow_pages=512, n_pages=128
        )
        # Process fast share: (256 - high) * 128/128 ... small test:
        # give the hottest density to a group, then a second one.
        counts = np.zeros(128)
        counts[0:8] = 100.0
        counts[8:16] = 10.0
        feed_samples(policy, process, counts)
        policy._classify_process(process, now_ns=0)
        assert (process.pages.tier[0:8] == FAST_TIER).all()

    def test_cooling_halves_counts(self):
        policy = MemtisPolicy(cooling_period_ns=SECOND, hp_pages=8)
        kernel, process = attach(policy)
        feed_samples(policy, process, np.full(128, 8.0))
        policy._classify_process(process, now_ns=2 * SECOND)
        assert policy.state(process).counts.max() == pytest.approx(4.0)


class TestSplitting:
    def test_skewed_hot_group_splits(self):
        policy = MemtisPolicy(
            page_granularity="huge",
            hp_pages=8,
            split_budget_per_pass=1,
            split_skew_threshold=0.6,
        )
        kernel, process = attach(policy)
        counts = np.zeros(128)
        counts[0] = 100.0  # all hits on one page of group 0
        feed_samples(policy, process, counts)
        policy._maybe_split(process, policy.state(process))
        assert policy.state(process).split[0]

    def test_uniform_group_does_not_split(self):
        policy = MemtisPolicy(
            page_granularity="huge",
            hp_pages=8,
            split_skew_threshold=0.9,
        )
        kernel, process = attach(policy)
        counts = np.zeros(128)
        counts[0:8] = 100.0  # perfectly uniform within the group
        feed_samples(policy, process, counts)
        policy._maybe_split(process, policy.state(process))
        assert not policy.state(process).split.any()

    def test_lifetime_budget_enforced(self):
        policy = MemtisPolicy(
            page_granularity="huge",
            hp_pages=8,
            split_budget_per_pass=8,
            max_splits_per_process=2,
        )
        kernel, process = attach(policy)
        counts = np.zeros(128)
        counts[::8] = 100.0  # every group maximally skewed
        feed_samples(policy, process, counts)
        policy._maybe_split(process, policy.state(process))
        policy._maybe_split(process, policy.state(process))
        assert int(policy.state(process).split.sum()) == 2

    def test_low_count_groups_not_split(self):
        policy = MemtisPolicy(page_granularity="huge", hp_pages=8)
        kernel, process = attach(policy)
        counts = np.zeros(128)
        counts[0] = 2.0  # below the minimum-hits bar
        feed_samples(policy, process, counts)
        policy._maybe_split(process, policy.state(process))
        assert not policy.state(process).split.any()
