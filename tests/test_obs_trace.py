"""Unit tests for the tracer, the hub, and trace-file aggregation."""

import io
import json

import numpy as np
import pytest

from repro.obs.events import EVENT_SCHEMA, PAGE_EVENT_TYPES
from repro.obs.hub import ObsHub
from repro.obs.trace import Tracer
from repro.obs.tracefile import (
    epoch_migrations,
    page_timeline,
    read_events,
    summarize,
)


class TestTracerRing:
    def test_retains_newest_and_counts_drops(self):
        tracer = Tracer(ring_capacity=3)
        for i in range(5):
            tracer.emit("scan.window", i, pid=0)
        events = tracer.events()
        assert [e["t"] for e in events] == [2, 3, 4]
        assert tracer.dropped == 2
        assert tracer.emitted == 5
        assert len(tracer) == 3

    def test_strict_rejects_uncatalogued_type(self):
        tracer = Tracer(strict=True)
        with pytest.raises(KeyError):
            tracer.emit("not.an_event", 0)
        tracer.emit("scan.window", 0)  # catalogued: fine

    def test_validation(self):
        with pytest.raises(ValueError):
            Tracer(ring_capacity=0)
        with pytest.raises(ValueError):
            Tracer(flush_every=0)


class TestTracerStream:
    def test_jsonl_round_trip_converts_numpy(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(sink=path) as tracer:
            tracer.emit(
                "fault.batch",
                np.int64(1_000),
                pid=np.int32(2),
                vpns=np.array([5, 9], dtype=np.int64),
                cit_ns=np.array([100, -1], dtype=np.int64),
            )
        events = list(read_events(path))
        assert events == [
            {
                "type": "fault.batch",
                "t": 1000,
                "pid": 2,
                "vpns": [5, 9],
                "cit_ns": [100, -1],
            }
        ]

    def test_flush_every_batches_writes(self):
        sink = io.StringIO()
        tracer = Tracer(sink=sink, flush_every=3)
        tracer.emit("scan.window", 1)
        tracer.emit("scan.window", 2)
        assert sink.getvalue() == ""  # below the flush threshold
        tracer.emit("scan.window", 3)
        assert len(sink.getvalue().splitlines()) == 3
        tracer.close()

    def test_close_flushes_remainder(self):
        sink = io.StringIO()
        tracer = Tracer(sink=sink, flush_every=1000)
        tracer.emit("scan.window", 1)
        tracer.close()
        assert len(sink.getvalue().splitlines()) == 1


class TestObsHub:
    def test_disabled_halves_noop(self):
        hub = ObsHub()  # neither tracer nor metrics
        hub.emit("scan.window", 0)
        hub.inc("scan.windows")
        hub.set_gauge("promotion.queue_depth", 1)
        hub.observe("fault.cit_ns", 1.0)
        hub.observe_many("fault.cit_ns", np.array([1.0]))
        assert hub.snapshot() is None
        hub.close()

    def test_create_wires_both(self):
        hub = ObsHub.create(trace=True, metrics=True)
        hub.emit("scan.window", 5, pid=0)
        hub.inc("scan.windows")
        assert len(hub.tracer.events()) == 1
        assert hub.snapshot()["counters"]["scan.windows"] == 1

    def test_metrics_only(self):
        hub = ObsHub.create(metrics=True)
        assert hub.tracer is None
        hub.emit("scan.window", 0)  # no-op, no error
        hub.inc("scan.windows", 2)
        assert hub.snapshot()["counters"]["scan.windows"] == 2


def _sample_events():
    """A hand-built event stream spanning three one-second epochs."""
    second = 1_000_000_000
    return [
        {"type": "scan.window", "t": 0, "pid": 1, "n_window": 4,
         "n_marked": 4, "wrapped": False, "vpns": [1, 2, 3, 4]},
        {"type": "fault.batch", "t": second // 2, "pid": 1, "n_faults": 2,
         "vpns": [2, 3], "fault_ts_ns": [100, 200], "cit_ns": [50, -1]},
        {"type": "migration.complete", "t": second + 1, "pid": 1,
         "dst_tier": 0, "n_moved": 2, "n_dropped": 0, "cost_ns": 10,
         "promotion": True, "vpns": [2, 3]},
        {"type": "migration.complete", "t": 2 * second + 1, "pid": 1,
         "dst_tier": 1, "n_moved": 5, "n_dropped": 0, "cost_ns": 10,
         "promotion": False, "vpns": [7, 8, 9, 10, 11]},
    ]


class TestSummarize:
    def test_counts_and_time_range(self):
        summary = summarize(_sample_events())
        assert summary["total"] == 4
        assert summary["t_first"] == 0
        assert summary["t_last"] == 2_000_000_001
        assert summary["by_type"]["migration.complete"]["count"] == 2

    def test_empty(self):
        summary = summarize([])
        assert summary["total"] == 0
        assert summary["t_first"] is None


class TestEpochMigrations:
    def test_buckets_by_direction(self):
        rows = epoch_migrations(_sample_events(), 1_000_000_000)
        assert [r["epoch"] for r in rows] == [0, 1, 2]
        assert rows[0] == {
            "epoch": 0, "t_start": 0, "promoted": 0, "demoted": 0,
            "faults": 2, "scan_windows": 1,
        }
        assert rows[1]["promoted"] == 2
        assert rows[2]["demoted"] == 5

    def test_rejects_bad_epoch(self):
        with pytest.raises(ValueError):
            epoch_migrations([], 0)


class TestPageTimeline:
    def test_extracts_one_page_in_order(self):
        rows = page_timeline(_sample_events(), pid=1, vpn=2)
        assert [r["type"] for r in rows] == [
            "scan.window", "fault.batch", "migration.complete",
        ]
        assert rows[1]["cit_ns"] == 50
        assert rows[2]["promotion"] is True

    def test_filters_other_pids_and_vpns(self):
        assert page_timeline(_sample_events(), pid=2, vpn=2) == []
        assert page_timeline(_sample_events(), pid=1, vpn=99) == []

    def test_page_event_types_all_carry_vpns(self):
        for name in PAGE_EVENT_TYPES:
            assert "vpns" in EVENT_SCHEMA[name].fields


class TestJsonlStreamEndToEnd:
    def test_large_trace_streams_and_aggregates(self, tmp_path):
        path = tmp_path / "big.jsonl"
        with Tracer(sink=path, flush_every=64) as tracer:
            for i in range(1_000):
                tracer.emit(
                    "migration.complete", i * 1_000_000, pid=0,
                    dst_tier=0, n_moved=1, n_dropped=0, cost_ns=5,
                    promotion=(i % 2 == 0), vpns=np.array([i]),
                )
        rows = epoch_migrations(read_events(path), 100_000_000)
        assert sum(r["promoted"] for r in rows) == 500
        assert sum(r["demoted"] for r in rows) == 500
        # Every line on disk is valid standalone JSON.
        with open(path, encoding="utf-8") as handle:
            assert sum(1 for _ in map(json.loads, handle)) == 1_000
