"""Tests for the trace compiler: binning, segmentation, replay."""

import numpy as np
import pytest

from repro.harness.experiments import StandardSetup
from repro.harness.runner import run_experiment
from repro.sim.rng import RngStreams
from repro.sim.timeunits import MILLISECOND, SECOND
from repro.vm.process import SimProcess
from repro.workloads.base import TraceWorkload
from repro.workloads.compile import (
    CompiledTrace,
    StationaryTableWorkload,
    compile_event_stream,
    compile_events,
    compile_trace_file,
    compile_windows,
    intern_distribution,
    segment_windows,
    synthetic_event_stream,
)
from repro.workloads.trace_io import TraceRecorder, save_trace


def two_phase_events(n_events=4_000, n_pages=16, window_ns=SECOND):
    """Deterministic two-phase event arrays: pages 0-3 then 8-11."""
    rng = np.random.default_rng(1)
    half = n_events // 2
    timestamps = np.linspace(
        0, 8 * window_ns - 1, n_events
    ).astype(np.int64)
    vpns = np.where(
        np.arange(n_events) < half,
        rng.integers(0, 4, n_events),
        rng.integers(8, 12, n_events),
    ).astype(np.int64)
    pids = np.zeros(n_events, dtype=np.int64)
    is_write = np.zeros(n_events, dtype=bool)
    return timestamps, pids, vpns, is_write


class TestBinning:
    def test_counts_land_in_the_right_window_and_page(self):
        timestamps = np.array([0, 1, SECOND, 3 * SECOND])
        pids = np.zeros(4, dtype=np.int64)
        vpns = np.array([2, 2, 0, 1])
        compiled = compile_events(
            timestamps, pids, vpns, [False] * 4,
            n_pages=4, window_ns=SECOND, threshold=2.0,
        )[0]
        assert compiled.n_events == 4
        assert compiled.n_windows == 4
        assert compiled.n_idle_windows == 1
        # threshold=2.0 pools busy windows, but the empty window at
        # t=2s splits the run: phases never straddle an idle gap.
        busy = [w for _, w in compiled.phases if w.sum() > 0]
        assert len(busy) == 2
        np.testing.assert_allclose(
            busy[0], np.array([1, 0, 2, 0]) / 3.0
        )
        np.testing.assert_allclose(busy[1], [0.0, 1.0, 0.0, 0.0])

    def test_write_fraction_measured_from_events(self):
        timestamps, pids, vpns, is_write = two_phase_events(1_000)
        is_write[:250] = True
        compiled = compile_events(
            timestamps, pids, vpns, is_write, n_pages=16
        )[0]
        assert compiled.write_fraction == pytest.approx(0.25)

    def test_streaming_equals_one_shot(self):
        timestamps, pids, vpns, is_write = two_phase_events()
        one_shot = compile_events(
            timestamps, pids, vpns, is_write, n_pages=16
        )[0]
        chunks = [
            (timestamps[i:i + 313], pids[i:i + 313],
             vpns[i:i + 313], is_write[i:i + 313])
            for i in range(0, timestamps.size, 313)
        ]
        streamed = compile_event_stream(iter(chunks), n_pages=16)[0]
        assert streamed.n_phases == one_shot.n_phases
        for (d1, p1), (d2, p2) in zip(
            streamed.phases, one_shot.phases
        ):
            assert d1 == d2
            np.testing.assert_array_equal(p1, p2)

    def test_per_pid_separation(self):
        timestamps = np.arange(4, dtype=np.int64)
        pids = np.array([1, 1, 2, 2])
        vpns = np.array([0, 0, 3, 3])
        compiled = compile_events(
            timestamps, pids, vpns, [False] * 4, n_pages=4
        )
        assert set(compiled) == {1, 2}
        assert compiled[1].phases[0][1][0] == pytest.approx(1.0)
        assert compiled[2].phases[0][1][3] == pytest.approx(1.0)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            compile_event_stream(iter([]), n_pages=4)

    def test_out_of_range_vpn_rejected(self):
        with pytest.raises(ValueError):
            compile_events([0], [0], [9], [False], n_pages=4)


class TestSegmentation:
    def test_detects_the_phase_boundary(self):
        hot_a = np.tile([10.0, 10.0, 0.0, 0.0], (4, 1))
        hot_b = np.tile([0.0, 0.0, 10.0, 10.0], (4, 1))
        segments = segment_windows(np.vstack([hot_a, hot_b]))
        assert [(s.start, s.end) for s in segments] == [(0, 4), (4, 8)]

    def test_idle_windows_form_their_own_segments(self):
        busy = np.tile([5.0, 5.0], (2, 1))
        idle = np.zeros((3, 2))
        segments = segment_windows(np.vstack([busy, idle, busy]))
        assert [s.idle for s in segments] == [False, True, False]
        assert (segments[1].start, segments[1].end) == (2, 5)

    def test_stable_stream_is_one_segment(self):
        windows = np.tile([3.0, 1.0, 0.0], (10, 1))
        assert len(segment_windows(windows)) == 1

    def test_known_phase_count_recovered(self):
        compiled = compile_event_stream(
            synthetic_event_stream(
                50_000, n_pages=64, n_phases=3, windows_per_phase=4
            ),
            n_pages=64,
        )[0]
        assert compiled.n_phases == 3


class TestCompiledTrace:
    def test_single_phase_becomes_stationary_table(self):
        compiled = compile_windows(
            np.tile([1.0, 3.0], (5, 1)), SECOND
        )
        workload = compiled.to_workload()
        assert isinstance(workload, StationaryTableWorkload)
        # Same frozen object every call: the arena interning key.
        assert workload.access_distribution() is (
            workload.access_distribution()
        )
        assert workload.stable_until_ns(0) is None

    def test_multi_phase_becomes_trace_workload(self):
        windows = np.vstack([
            np.tile([9.0, 1.0], (3, 1)),
            np.tile([1.0, 9.0], (3, 1)),
        ])
        compiled = compile_windows(windows, SECOND)
        workload = compiled.to_workload()
        assert isinstance(workload, TraceWorkload)
        assert workload.stable_until_ns(0) == 3 * SECOND
        assert compiled.total_ns == 6 * SECOND

    def test_idle_windows_compile_to_zero_phases(self):
        windows = np.vstack([
            np.tile([4.0, 0.0], (2, 1)),
            np.zeros((3, 2)),
            np.tile([0.0, 4.0], (2, 1)),
        ])
        compiled = compile_windows(windows, SECOND)
        assert compiled.n_idle_windows == 3
        durations = [d for d, _ in compiled.phases]
        masses = [float(p.sum()) for _, p in compiled.phases]
        assert durations == [2 * SECOND, 3 * SECOND, 2 * SECOND]
        assert masses[1] == 0.0
        # The compiled cycle keeps the recording's wall-clock shape.
        assert compiled.total_ns == 7 * SECOND

    def test_zero_traffic_trace_rejected(self):
        with pytest.raises(ValueError):
            compile_windows(np.zeros((3, 4)), SECOND)

    def test_identical_histograms_share_one_table(self):
        a = compile_windows(np.tile([2.0, 6.0], (4, 1)), SECOND)
        b = compile_windows(np.tile([1.0, 3.0], (2, 1)), SECOND)
        # Different counts, same normalized content: one frozen array.
        assert a.phases[0][1] is b.phases[0][1]
        assert not a.phases[0][1].flags.writeable

    def test_intern_distribution_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            intern_distribution(np.zeros(4))


class TestTraceFiles:
    def test_compile_recorder_npz(self, tmp_path):
        path = tmp_path / "rec.npz"
        save_trace(
            path,
            [np.array([1.0, 0.0]), np.zeros(2), np.array([0.0, 2.0])],
            SECOND,
            write_fraction=0.2,
        )
        compiled = compile_trace_file(path)[0]
        assert compiled.n_windows == 3
        assert compiled.n_idle_windows == 1
        assert compiled.write_fraction == pytest.approx(0.2)

    def test_window_format_rejects_rebinning(self, tmp_path):
        path = tmp_path / "rec.npz"
        save_trace(path, [np.ones(2)], SECOND)
        with pytest.raises(ValueError):
            compile_trace_file(path, window_ns=SECOND // 2)

    def test_compile_event_npz(self, tmp_path):
        timestamps, pids, vpns, is_write = two_phase_events(2_000)
        path = tmp_path / "events.npz"
        np.savez_compressed(
            path,
            timestamp_ns=timestamps,
            pid=pids,
            vpn=vpns,
            is_write=is_write,
        )
        compiled = compile_trace_file(path)[0]
        assert compiled.n_events == 2_000
        assert compiled.n_phases == 2

    def test_compile_event_csv(self, tmp_path):
        path = tmp_path / "events.csv"
        rows = ["timestamp_ns,pid,vpn,is_write"]
        rows += [f"{t},0,{t % 4},0" for t in range(100)]
        path.write_text("\n".join(rows) + "\n")
        compiled = compile_trace_file(path)[0]
        assert compiled.n_events == 100
        assert compiled.n_pages == 4

    def test_checked_in_fixtures_compile(self):
        import pathlib

        data = pathlib.Path(__file__).parent / "data"
        npz = compile_trace_file(data / "sample_trace.npz")[0]
        assert npz.n_phases >= 2
        assert npz.n_idle_windows >= 1
        csv = compile_trace_file(data / "sample_events.csv")[0]
        assert csv.n_events > 0


def replay_result(workload, fusion, duration_ns):
    setup = StandardSetup(duration_ns=duration_ns)
    process = SimProcess(
        pid=0,
        workload=workload,
        rng=RngStreams(11).spawn("replay").get("access"),
    )
    policy = setup.build_policy("chrono")
    return run_experiment(
        [process], policy, setup.run_config(fusion=fusion)
    )


class TestReplay:
    def test_fusion_engages_on_phase_stable_trace(self):
        compiled = compile_event_stream(
            synthetic_event_stream(
                30_000, n_pages=128, n_phases=2, windows_per_phase=6
            ),
            n_pages=128,
        )[0]
        result = replay_result(
            compiled.to_workload(), fusion=True,
            duration_ns=compiled.total_ns,
        )
        engine = result.engine
        assert engine.fused_quanta / engine.quanta_run > 0.0

    def test_record_compile_replay_equivalence(self):
        """A compiled re-recording replays within the arena suite's
        statistical-equivalence bounds of the original run."""
        from tests.conftest import make_kernel, make_process
        from repro.harness.engine import QuantumEngine
        from repro.harness.runner import summarize_run

        def run_with(workload=None):
            kernel = make_kernel(fast_pages=256, slow_pages=1024)
            if workload is None:
                process = make_process(n_pages=256)
            else:
                process = SimProcess(
                    pid=1,
                    workload=workload,
                    rng=RngStreams(0).spawn("proc-1").get("access"),
                )
            kernel.register_process(process)
            kernel.allocate_initial_placement()
            engine = QuantumEngine(kernel, quantum_ns=50 * MILLISECOND)
            recorder = TraceRecorder(interval_ns=SECOND // 2)
            end_ns = engine.run(
                4 * SECOND,
                observer=recorder.observe,
                observe_every_ns=recorder.interval_ns,
            )
            result = summarize_run(None, kernel, engine, end_ns)
            return recorder, process, result

        recorder, process, original = run_with()
        compiled = compile_windows(
            np.stack(recorder.windows(process.pid)),
            SECOND // 2,
            write_fraction=process.workload.write_fraction,
        )
        _, _, replayed = run_with(compiled.to_workload())
        assert replayed.throughput_per_sec == pytest.approx(
            original.throughput_per_sec, rel=0.05
        )
        assert replayed.fmar == pytest.approx(
            original.fmar, rel=0.05, abs=1e-4
        )


class TestObservability:
    def test_compile_emits_events_and_counters(self):
        from repro.obs import ObsHub

        hub = ObsHub.create(trace=True, metrics=True)
        compile_windows(
            np.vstack([np.tile([1.0, 0.0], (2, 1)), np.zeros((1, 2))]),
            SECOND,
            obs=hub,
            pid=3,
        )
        events = [
            e for e in hub.tracer.events()
            if e["type"] == "compile.trace"
        ]
        assert len(events) == 1
        assert events[0]["pid"] == 3
        assert events[0]["n_idle"] == 1
        snapshot = hub.snapshot()
        assert snapshot["counters"]["compile.windows"] == 3
        assert snapshot["counters"]["compile.phases"] == 2
