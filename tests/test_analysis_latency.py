"""Tests for the discrete latency mixture."""

import numpy as np
import pytest

from repro.analysis.latency import LatencyMixture


def make_mixture():
    mix = LatencyMixture()
    mix.add(80, 70)  # fast reads
    mix.add(250, 25)  # slow reads
    mix.add(2500, 5)  # faulted accesses
    return mix


class TestAccumulation:
    def test_total(self):
        assert make_mixture().total == 100

    def test_zero_count_ignored(self):
        mix = LatencyMixture()
        mix.add(80, 0)
        assert mix.total == 0

    def test_same_latency_accumulates(self):
        mix = LatencyMixture()
        mix.add(80, 10)
        mix.add(80, 5)
        assert mix.total == 15

    def test_negative_rejected(self):
        mix = LatencyMixture()
        with pytest.raises(ValueError):
            mix.add(80, -1)
        with pytest.raises(ValueError):
            mix.add(-80, 1)

    def test_merge(self):
        a = make_mixture()
        b = LatencyMixture()
        b.add(80, 30)
        a.merge(b)
        assert a.total == 130
        assert a.quantile(0.5) == 80


class TestStatistics:
    def test_mean(self):
        mix = make_mixture()
        expected = (80 * 70 + 250 * 25 + 2500 * 5) / 100
        assert mix.mean() == pytest.approx(expected)

    def test_median_is_dominant_class(self):
        assert make_mixture().median() == 80

    def test_p99_reaches_fault_tail(self):
        assert make_mixture().p99() == 2500

    def test_quantile_monotone(self):
        mix = make_mixture()
        values = [mix.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert values == sorted(values)

    def test_quantile_bounds(self):
        mix = make_mixture()
        with pytest.raises(ValueError):
            mix.quantile(-0.1)
        with pytest.raises(ValueError):
            mix.quantile(1.1)

    def test_empty_mixture_raises(self):
        with pytest.raises(ValueError):
            LatencyMixture().mean()

    def test_summary_keys(self):
        summary = make_mixture().summary()
        assert set(summary) == {"average", "median", "p99"}

    def test_cdf_staircase(self):
        points = make_mixture().cdf_points()
        latencies = [p[0] for p in points]
        fractions = [p[1] for p in points]
        assert latencies == sorted(latencies)
        assert fractions[-1] == pytest.approx(1.0)
        assert fractions == sorted(fractions)


class TestAddMany:
    def test_matches_sequential_add(self):
        bulk = LatencyMixture()
        bulk.add_many([80.0, 250.0, 2500.0, 80.0], [70, 25, 5, 10])
        serial = LatencyMixture()
        for latency, count in ((80, 70), (250, 25), (2500, 5), (80, 10)):
            serial.add(latency, count)
        assert bulk.total == serial.total
        assert bulk.summary() == serial.summary()
        assert bulk.cdf_points() == serial.cdf_points()

    def test_zero_counts_skipped(self):
        mix = LatencyMixture()
        mix.add_many([80.0, 250.0], [10, 0])
        assert mix.total == 10
        # A zero-count class must not appear as an empty CDF step.
        assert [p[0] for p in mix.cdf_points()] == [80.0]

    def test_empty_batch_is_noop(self):
        mix = LatencyMixture()
        mix.add_many(np.array([]), np.array([]))
        assert mix.total == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LatencyMixture().add_many([80.0, 250.0], [1])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyMixture().add_many([80.0], [-1])
        with pytest.raises(ValueError):
            LatencyMixture().add_many([-80.0], [1])


class TestSortedCacheInvalidation:
    """Statistics are served from cached sorted views; every write path
    must drop the cache or reads after writes go stale."""

    def test_add_invalidates(self):
        mix = make_mixture()
        before = mix.p99()
        mix.add(9000, 50)  # new dominant tail class
        assert mix.p99() == 9000
        assert mix.p99() != before

    def test_add_many_invalidates(self):
        mix = make_mixture()
        assert mix.median() == 80
        mix.add_many([400.0], [1000])
        assert mix.median() == 400

    def test_merge_invalidates(self):
        mix = make_mixture()
        assert mix.total == 100
        other = LatencyMixture()
        other.add(400, 1000)
        mix.merge(other)
        assert mix.total == 1100
        assert mix.median() == 400

    def test_repeated_reads_consistent(self):
        mix = make_mixture()
        # Exercise the cached path twice between writes.
        assert mix.summary() == mix.summary()
        mix.add(80, 1)
        assert mix.total == 101
