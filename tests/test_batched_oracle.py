"""Oracle equivalence for every batched transient subsystem.

The engine keeps its batched fast path through scan, aging, migration,
and reclaim windows by replacing per-process loops with fleet passes:
``TickingScanner.scan_fleet``, ``LruLists.age_fleet``,
``LruLists.coldest_pages_two_phase``, ``MigrationEngine.migrate_many``,
and the ``dcsc_fold`` / ``scan_filter`` array kernels.  Each pass claims
*exact* equivalence with its sequential reference -- same state updates,
same RNG stream consumption, same global stats.  These tests hold every
claim against an oracle: twin fixtures with identical seeds run the
batched and the sequential code, and every observable must match bit
for bit.

The end-to-end oracle runs each registered policy with
``batched_transients`` flipped off (the sequential opt-out) and demands
the trajectory match the batched default exactly.  The hypothesis
suite checks the segment-offset repair invariant: concatenating
per-process arrays and splitting selections back by owner must land
every page in its owner's vpn space.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.experiments import StandardSetup, build_fleet
from repro.harness.runner import run_experiment
from repro.kernel.lru import LruLists
from repro.kernel.reclaim import _merge_victims
from repro.kernel.scanner import ScanConfig
from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.sim.jit import dcsc_fold, scan_filter
from repro.sim.rng import RngStreams
from repro.sim.timeunits import SECOND
from tests.conftest import make_kernel, make_process

#: every registered policy (the Table 1 roster)
ALL_POLICIES = [
    "linux-nb",
    "autotiering",
    "multiclock",
    "telescope",
    "tpp",
    "memtis",
    "flexmem",
    "nomad",
    "tierbpf",
    "arms",
    "jenga",
    "chrono",
]


def twin_fleet(seed=0, n_procs=4, n_pages=96, fast=256, slow=1024):
    """One kernel + fleet; calling twice with the same args yields twins
    in identical state (same machine, same placement, same streams)."""
    kernel = make_kernel(fast_pages=fast, slow_pages=slow, seed=seed)
    processes = [
        make_process(pid=index + 1, n_pages=n_pages, seed=seed)
        for index in range(n_procs)
    ]
    for process in processes:
        kernel.register_process(process)
    kernel.allocate_initial_placement()
    return kernel, processes


def perturb(processes, seed=1):
    """Drive the per-page state into a mixed regime deterministically:
    some windows counted, some accessed bits, mixed LRU membership."""
    rng = np.random.default_rng(seed)
    for process in processes:
        pages = process.pages
        n = pages.n_pages
        pages.last_window_count[:] = rng.poisson(1.5, n)
        pages.accessed[:] = rng.random(n) < 0.3
        pages.lru_active[:] = rng.random(n) < 0.5
        pages.lru_gen[:] = rng.integers(0, 1_000, n)


def assert_pages_equal(left, right):
    pages_l, pages_r = left.pages, right.pages
    np.testing.assert_array_equal(pages_l.tier, pages_r.tier)
    np.testing.assert_array_equal(pages_l.lru_gen, pages_r.lru_gen)
    np.testing.assert_array_equal(pages_l.lru_active, pages_r.lru_active)
    np.testing.assert_array_equal(pages_l.accessed, pages_r.accessed)
    np.testing.assert_array_equal(
        pages_l.last_window_count, pages_r.last_window_count
    )


class TestAgingOracle:
    def test_age_fleet_matches_sequential_bitwise(self):
        _, procs_batched = twin_fleet()
        _, procs_seq = twin_fleet()
        perturb(procs_batched)
        perturb(procs_seq)
        lru_batched = LruLists(RngStreams(7).get("lru"))
        lru_seq = LruLists(RngStreams(7).get("lru"))

        touched_batched = lru_batched.age_fleet(procs_batched, now_ns=123)
        touched_seq = [
            lru_seq.age_process(p, now_ns=123) for p in procs_seq
        ]

        for t_b, t_s, p_b, p_s in zip(
            touched_batched, touched_seq, procs_batched, procs_seq
        ):
            np.testing.assert_array_equal(t_b, t_s)
            assert_pages_equal(p_b, p_s)
            np.testing.assert_array_equal(
                lru_batched._misses(p_b), lru_seq._misses(p_s)
            )
        # The fleet pass drew exactly the uniforms the sequential calls
        # would have: both generators sit at the same stream position.
        assert lru_batched._rng.random() == lru_seq._rng.random()

    def test_second_pass_stays_aligned(self):
        """Miss counters and stream position survive into the next pass:
        hysteresis (deactivation after two misses) agrees too."""
        _, procs_batched = twin_fleet()
        _, procs_seq = twin_fleet()
        perturb(procs_batched)
        perturb(procs_seq)
        lru_batched = LruLists(RngStreams(7).get("lru"))
        lru_seq = LruLists(RngStreams(7).get("lru"))
        for now_ns in (100, 200, 300):
            lru_batched.age_fleet(procs_batched, now_ns=now_ns)
            for process in procs_seq:
                lru_seq.age_process(process, now_ns=now_ns)
        for p_b, p_s in zip(procs_batched, procs_seq):
            assert_pages_equal(p_b, p_s)


class TestScanPassOracle:
    def _scan_state(self, kernel, processes):
        return (
            [p.pages.scan_ts_ns.copy() for p in processes],
            [p.pages.prot_none.copy() for p in processes],
            kernel.stats.pages_scanned,
            kernel.stats.scan_passes,
            kernel.stats.kernel_time_ns,
        )

    def test_scan_fleet_matches_sequential_scans(self):
        config = ScanConfig(
            scan_period_ns=SECOND, scan_step_pages=32,
            tier_filter=SLOW_TIER,
        )
        kernel_b, procs_b = twin_fleet()
        kernel_s, procs_s = twin_fleet()
        scanner_b = kernel_b.create_scanner(config)
        scanner_s = kernel_s.create_scanner(config)

        entries = [(process, 1_000) for process in procs_b]
        scanner_b.scan_fleet(entries)
        for process in procs_s:
            scanner_s.scan_once(process, kernel_s.clock.now)

        state_b = self._scan_state(kernel_b, procs_b)
        state_s = self._scan_state(kernel_s, procs_s)
        for arr_b, arr_s in zip(state_b[0], state_s[0]):
            np.testing.assert_array_equal(arr_b, arr_s)
        for arr_b, arr_s in zip(state_b[1], state_s[1]):
            np.testing.assert_array_equal(arr_b, arr_s)
        assert state_b[2:] == state_s[2:]
        for p_b, p_s in zip(procs_b, procs_s):
            assert p_b.pending_kernel_ns == p_s.pending_kernel_ns

    def test_scan_fleet_hook_order_is_entry_order(self):
        kernel, procs = twin_fleet()
        scanner = kernel.create_scanner(
            ScanConfig(scan_period_ns=SECOND, scan_step_pages=16)
        )
        seen = []
        scanner.on_scan = lambda process, window, now: seen.append(
            process.pid
        )
        scanner.scan_fleet([(process, 1_000) for process in procs])
        assert seen == [process.pid for process in procs]


class TestReclaimSelectionOracle:
    def _paint(self, processes, seed=5):
        """Random tiers, sparse inactive membership -- small enough
        inactive sets that the two-phase fallback engages."""
        rng = np.random.default_rng(seed)
        for process in processes:
            pages = process.pages
            n = pages.n_pages
            pages.tier[:] = np.where(
                rng.random(n) < 0.6, FAST_TIER, SLOW_TIER
            ).astype(pages.tier.dtype)
            pages.lru_active[:] = rng.random(n) < 0.9
            pages.lru_gen[:] = rng.integers(0, 10_000, n)

    @pytest.mark.parametrize("n_pages", [1, 17, 120, 10_000])
    def test_two_phase_matches_sequential_phases(self, n_pages):
        _, procs = twin_fleet()
        self._paint(procs)
        lru_fused = LruLists(RngStreams(3).get("lru"))
        lru_seq = LruLists(RngStreams(3).get("lru"))

        first, second = lru_fused.coldest_pages_two_phase(
            procs, FAST_TIER, n_pages
        )
        ref_first = lru_seq.coldest_pages(
            procs, FAST_TIER, n_pages, inactive_only=True
        )
        selected = sum(v.size for _, v in ref_first)
        ref_second = []
        if selected < n_pages:
            ref_second = lru_seq.coldest_pages(
                procs, FAST_TIER, n_pages - selected, inactive_only=False
            )

        for got, want in ((first, ref_first), (second, ref_second)):
            assert len(got) == len(want)
            for (proc_g, vpns_g), (proc_w, vpns_w) in zip(got, want):
                assert proc_g is proc_w
                np.testing.assert_array_equal(vpns_g, vpns_w)
        # Identical RNG consumption (shuffles per phase).
        assert lru_fused._rng.random() == lru_seq._rng.random()

    def test_no_shortfall_skips_second_phase(self):
        _, procs = twin_fleet()
        for process in procs:
            process.pages.tier[:] = FAST_TIER
            process.pages.lru_active[:] = False
        lru = LruLists(RngStreams(3).get("lru"))
        first, second = lru.coldest_pages_two_phase(procs, FAST_TIER, 8)
        assert sum(v.size for _, v in first) == 8
        assert second == []


class TestMigrationBatchOracle:
    def _batches(self, processes, src_tier, seed=11):
        """Per-process vpn picks from ``src_tier``, in scrambled order
        (migrate sorts after the capacity cut)."""
        rng = np.random.default_rng(seed)
        batches = []
        for process in processes:
            candidates = np.flatnonzero(process.pages.tier == src_tier)
            take = min(candidates.size, int(rng.integers(1, 40)))
            batches.append(
                (process, rng.permutation(candidates)[:take])
            )
        return batches

    def _stats_tuple(self, kernel):
        stats = kernel.stats
        return (
            stats.pgpromote,
            stats.pgdemote,
            stats.promotion_dropped,
            stats.kernel_time_ns,
            stats.migration_time_ns,
            stats.context_switches,
        )

    @pytest.mark.parametrize(
        "dst,src", [(FAST_TIER, SLOW_TIER), (SLOW_TIER, FAST_TIER)]
    )
    def test_migrate_many_matches_sequential_loop(self, dst, src):
        # A small fast tier makes promotion overflow (dropped pages)
        # part of the oracle, not just the happy path.
        kernel_b, procs_b = twin_fleet(fast=128, slow=1024)
        kernel_s, procs_s = twin_fleet(fast=128, slow=1024)

        moved_b = kernel_b.migration.migrate_many(
            self._batches(procs_b, src), dst
        )
        moved_s = [
            (process, kernel_s.migration.migrate(process, vpns, dst))
            for process, vpns in self._batches(procs_s, src)
        ]

        assert len(moved_b) == len(moved_s)
        for (proc_b, vpns_b), (proc_s, vpns_s) in zip(moved_b, moved_s):
            assert proc_b.pid == proc_s.pid
            np.testing.assert_array_equal(vpns_b, vpns_s)
            np.testing.assert_array_equal(
                proc_b.pages.tier, proc_s.pages.tier
            )
            np.testing.assert_array_equal(
                proc_b.pages.lru_active, proc_s.pages.lru_active
            )
            np.testing.assert_array_equal(
                proc_b.pages.demoted, proc_s.pages.demoted
            )
            assert proc_b.pending_kernel_ns == proc_s.pending_kernel_ns
            assert (
                proc_b.stats.pages_promoted == proc_s.stats.pages_promoted
            )
            assert (
                proc_b.stats.pages_demoted == proc_s.stats.pages_demoted
            )
        for tier_b, tier_s in zip(
            kernel_b.machine.tiers, kernel_s.machine.tiers
        ):
            assert tier_b.free_pages == tier_s.free_pages
            assert tier_b._migration_bytes == tier_s._migration_bytes
        assert self._stats_tuple(kernel_b) == self._stats_tuple(kernel_s)

    def test_mark_demoted_matches(self):
        kernel_b, procs_b = twin_fleet()
        kernel_s, procs_s = twin_fleet()
        kernel_b.migration.migrate_many(
            self._batches(procs_b, FAST_TIER), SLOW_TIER,
            mark_demoted=True,
        )
        for process, vpns in self._batches(procs_s, FAST_TIER):
            kernel_s.migration.migrate(
                process, vpns, SLOW_TIER, mark_demoted=True
            )
        for proc_b, proc_s in zip(procs_b, procs_s):
            np.testing.assert_array_equal(
                proc_b.pages.demoted, proc_s.pages.demoted
            )
            np.testing.assert_array_equal(
                proc_b.pages.demote_ts_ns, proc_s.pages.demote_ts_ns
            )
            np.testing.assert_array_equal(
                proc_b.pages.prot_none, proc_s.pages.prot_none
            )


class TestArrayKernelOracle:
    def test_dcsc_fold_matches_scatter_add_reference(self):
        rng = np.random.default_rng(2)
        tiers = rng.integers(0, 2, 512)
        buckets = rng.integers(0, 28, 512)
        expected = np.zeros((2, 28), dtype=np.float64)
        np.add.at(expected, (tiers, buckets), 1.0)
        np.testing.assert_array_equal(
            dcsc_fold(tiers, buckets, 2, 28), expected
        )

    def test_dcsc_fold_empty(self):
        empty = np.empty(0, dtype=np.int64)
        np.testing.assert_array_equal(
            dcsc_fold(empty, empty, 2, 28), np.zeros((2, 28))
        )

    def test_scan_filter_matches_gather_compress(self):
        rng = np.random.default_rng(3)
        tier = rng.integers(0, 2, 256).astype(np.int8)
        window = rng.permutation(256)[:64]
        np.testing.assert_array_equal(
            scan_filter(tier, window, FAST_TIER),
            window[tier[window] == FAST_TIER],
        )


class TestPolicyTransientOracle:
    """The ``batched_transients`` contract, policy by policy: flipping a
    policy to the sequential transient loops must reproduce the batched
    trajectory exactly, because every fleet pass is bit-identical per
    process and every registered hook only touches its own process."""

    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    def test_sequential_transients_match_batched(self, policy_name):
        results = []
        for batched in (True, False):
            setup = StandardSetup(duration_ns=SECOND)
            policy = setup.build_policy(policy_name)
            policy.batched_transients = batched
            processes = build_fleet(
                setup, "pmbench", n_procs=3, pages_per_proc=512
            )
            results.append(
                run_experiment(processes, policy, setup.run_config())
            )
        batched_run, sequential_run = results
        assert (
            batched_run.throughput_per_sec
            == sequential_run.throughput_per_sec
        )
        assert batched_run.fmar == sequential_run.fmar
        assert batched_run.stats == sequential_run.stats


@st.composite
def fleet_layout(draw):
    """Random per-process sizes plus a paint seed."""
    sizes = draw(
        st.lists(st.integers(1, 48), min_size=2, max_size=5)
    )
    return sizes, draw(st.integers(0, 2**16))


class TestSegmentOffsetProperties:
    """Segment-offset repair: fleet passes concatenate per-process
    arrays, select on global indices, and split back per owner.  The
    invariant is that every selected page lands in its owner's own vpn
    space -- no cross-segment bleed, no out-of-range vpns."""

    @given(layout=fleet_layout(), n_pages=st.integers(1, 200))
    @settings(max_examples=30, deadline=None)
    def test_coldest_pages_preserves_vpn_spaces(self, layout, n_pages):
        sizes, paint_seed = layout
        rng = np.random.default_rng(paint_seed)
        processes = []
        for index, size in enumerate(sizes):
            process = make_process(pid=index + 1, n_pages=size)
            pages = process.pages
            pages.tier[:] = np.where(
                rng.random(size) < 0.5, FAST_TIER, SLOW_TIER
            ).astype(pages.tier.dtype)
            pages.lru_active[:] = rng.random(size) < 0.4
            pages.lru_gen[:] = rng.integers(0, 5_000, size)
            processes.append(process)

        lru = LruLists(RngStreams(paint_seed).get("lru"))
        selection = lru.coldest_pages(
            processes, FAST_TIER, n_pages, inactive_only=False
        )

        candidates = sum(
            int(np.count_nonzero(p.pages.tier == FAST_TIER))
            for p in processes
        )
        total = sum(v.size for _, v in selection)
        assert total == min(n_pages, candidates)
        seen_pids = [process.pid for process, _ in selection]
        assert seen_pids == sorted(seen_pids)
        for process, vpns in selection:
            assert vpns.size > 0
            assert vpns.min() >= 0
            assert vpns.max() < process.n_pages
            assert np.unique(vpns).size == vpns.size
            assert (np.diff(vpns) > 0).all()
            assert (process.pages.tier[vpns] == FAST_TIER).all()

    @given(layout=fleet_layout(), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_merge_victims_preserves_vpn_spaces(self, layout, data):
        sizes, _ = layout
        processes = [
            make_process(pid=index + 1, n_pages=size)
            for index, size in enumerate(sizes)
        ]

        def victim_list():
            entries = []
            for process in processes:
                if not data.draw(st.booleans()):
                    continue
                vpns = data.draw(
                    st.lists(
                        st.integers(0, process.n_pages - 1),
                        max_size=process.n_pages,
                    )
                )
                entries.append(
                    (process, np.asarray(vpns, dtype=np.int64))
                )
            return entries

        first, second = victim_list(), victim_list()
        merged = _merge_victims(first, second)

        expected = {}
        for process, vpns in first + second:
            expected.setdefault(process.pid, set()).update(
                int(v) for v in vpns
            )
        expected = {
            pid: vpns for pid, vpns in expected.items() if vpns
        }
        got = {
            process.pid: set(int(v) for v in vpns)
            for process, vpns in merged
        }
        assert got == expected
        for process, vpns in merged:
            assert vpns.min() >= 0
            assert vpns.max() < process.n_pages
            assert (np.diff(vpns) > 0).all()
