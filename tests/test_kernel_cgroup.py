"""Tests for cgroup accounting."""

import numpy as np
import pytest

from repro.kernel.cgroup import CgroupRegistry
from repro.mem.tier import FAST_TIER, SLOW_TIER
from tests.conftest import make_process


@pytest.fixture
def registry():
    return CgroupRegistry()


class TestRegistry:
    def test_create_and_get(self, registry):
        group = registry.create("tenant-0")
        assert registry.get("tenant-0") is group

    def test_duplicate_create_rejected(self, registry):
        registry.create("x")
        with pytest.raises(ValueError):
            registry.create("x")

    def test_attach_creates_group(self, registry):
        process = make_process()
        registry.attach(process, "auto")
        assert "auto" in registry
        assert process.cgroup == "auto"
        assert registry.get("auto").processes == [process]

    def test_unknown_get(self, registry):
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_names_and_len(self, registry):
        registry.create("b")
        registry.create("a")
        assert registry.names() == ["a", "b"]
        assert len(registry) == 2


class TestNumaStat:
    def test_counts_pages_per_tier(self, registry):
        process = make_process(n_pages=10)
        process.pages.tier[:4] = FAST_TIER
        registry.attach(process, "g")
        stat = registry.get("g").numa_stat(n_tiers=2)
        assert stat[FAST_TIER] == 4
        assert stat[SLOW_TIER] == 6

    def test_aggregates_processes(self, registry):
        a = make_process(pid=1, n_pages=10)
        b = make_process(pid=2, n_pages=10)
        a.pages.tier[:5] = FAST_TIER
        b.pages.tier[:1] = FAST_TIER
        registry.attach(a, "g")
        registry.attach(b, "g")
        group = registry.get("g")
        assert group.numa_stat(2)[FAST_TIER] == 6
        assert group.total_pages() == 20

    def test_dram_page_percentage(self, registry):
        process = make_process(n_pages=10)
        process.pages.tier[:3] = FAST_TIER
        registry.attach(process, "g")
        assert registry.get("g").dram_page_percentage() == pytest.approx(30.0)

    def test_empty_group_percentage(self, registry):
        registry.create("empty")
        assert registry.get("empty").dram_page_percentage() == 0.0


class TestLimits:
    def test_over_limit(self, registry):
        process = make_process(n_pages=100)
        registry.attach(process, "g")
        group = registry.get("g")
        group.memory_limit_pages = 50
        assert group.over_limit()
        group.memory_limit_pages = 200
        assert not group.over_limit()

    def test_no_limit(self, registry):
        process = make_process(n_pages=100)
        registry.attach(process, "g")
        assert not registry.get("g").over_limit()
