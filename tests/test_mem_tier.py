"""Tests for memory tiers and frame accounting."""

import pytest

from repro.mem.tier import (
    FAST_TIER,
    SLOW_TIER,
    MemoryTier,
    TierSpec,
    cxl_spec,
    dram_spec,
    optane_spec,
)


def make_tier(capacity=100):
    return MemoryTier(tier_id=0, spec=dram_spec(capacity))


class TestTierSpec:
    def test_dram_is_faster_than_optane(self):
        dram = dram_spec(100)
        optane = optane_spec(100)
        assert dram.read_latency_ns < optane.read_latency_ns
        assert dram.write_latency_ns < optane.write_latency_ns

    def test_optane_write_read_asymmetry(self):
        spec = optane_spec(100)
        assert spec.write_latency_ns > spec.read_latency_ns

    def test_slow_tiers_are_cpu_less(self):
        assert not optane_spec(10).cpu_local
        assert not cxl_spec(10).cpu_local
        assert dram_spec(10).cpu_local

    def test_latency_ranges_match_paper(self):
        # DRAM 50-90 ns, slow memory 150-270 ns (Section 1).
        assert 50 <= dram_spec(1).read_latency_ns <= 90
        assert 150 <= optane_spec(1).read_latency_ns <= 270
        assert 150 <= cxl_spec(1).read_latency_ns <= 270

    @pytest.mark.parametrize("capacity", [0, -1])
    def test_rejects_bad_capacity(self, capacity):
        with pytest.raises(ValueError):
            TierSpec("x", capacity, 100, 100, 1e9)

    def test_rejects_bad_latency(self):
        with pytest.raises(ValueError):
            TierSpec("x", 10, 0, 100, 1e9)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            TierSpec("x", 10, 100, 100, 0)


class TestFrameAccounting:
    def test_allocate_within_capacity(self):
        tier = make_tier(100)
        assert tier.allocate(40) == 40
        assert tier.used_pages == 40
        assert tier.free_pages == 60

    def test_allocate_clamps_to_free(self):
        tier = make_tier(100)
        tier.allocate(90)
        assert tier.allocate(20) == 10
        assert tier.free_pages == 0

    def test_release(self):
        tier = make_tier(100)
        tier.allocate(50)
        tier.release(20)
        assert tier.used_pages == 30

    def test_release_more_than_used_rejected(self):
        tier = make_tier(100)
        tier.allocate(5)
        with pytest.raises(ValueError):
            tier.release(6)

    def test_negative_allocate_rejected(self):
        with pytest.raises(ValueError):
            make_tier().allocate(-1)

    def test_negative_release_rejected(self):
        with pytest.raises(ValueError):
            make_tier().release(-1)

    def test_utilization(self):
        tier = make_tier(200)
        tier.allocate(50)
        assert tier.utilization() == pytest.approx(0.25)


class TestMigrationTraffic:
    def test_charge_and_consume(self):
        tier = make_tier()
        tier.charge_migration_bytes(4096)
        tier.charge_migration_bytes(4096)
        assert tier.consume_migration_bytes() == 8192
        assert tier.consume_migration_bytes() == 0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            make_tier().charge_migration_bytes(-1)


def test_tier_id_constants():
    assert FAST_TIER == 0
    assert SLOW_TIER == 1
