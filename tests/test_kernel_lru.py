"""Tests for LRU aging and cold-page selection."""

import numpy as np
import pytest

from repro.kernel.lru import LruLists
from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.sim.rng import RngStreams
from tests.conftest import make_process


@pytest.fixture
def lru():
    return LruLists(RngStreams(9).get("lru"))


class TestAging:
    def test_heavily_accessed_pages_become_active(self, lru):
        process = make_process(n_pages=32)
        process.pages.last_window_count[:8] = 50.0  # ~always touched
        touched = lru.age_process(process, now_ns=1000)
        assert touched[:8].all()
        assert process.pages.lru_active[:8].all()
        assert (process.pages.lru_gen[:8] == 1000).all()

    def test_untouched_pages_eventually_deactivate(self, lru):
        process = make_process(n_pages=8)
        process.pages.lru_active[:] = True
        # Two aging passes with zero accesses: second-chance expires.
        lru.age_process(process, now_ns=1)
        lru.age_process(process, now_ns=2)
        assert not process.pages.lru_active.any()

    def test_one_miss_keeps_page_active(self, lru):
        process = make_process(n_pages=8)
        process.pages.lru_active[:] = True
        lru.age_process(process, now_ns=1)
        assert process.pages.lru_active.all()

    def test_fault_accessed_bit_counts_as_touch(self, lru):
        process = make_process(n_pages=8)
        process.pages.accessed[3] = True
        touched = lru.age_process(process, now_ns=5)
        assert touched[3]
        assert process.pages.lru_gen[3] == 5

    def test_aging_clears_bits_and_window(self, lru):
        process = make_process(n_pages=8)
        process.pages.accessed[:] = True
        process.pages.last_window_count[:] = 3.0
        lru.age_process(process, now_ns=5)
        assert not process.pages.accessed.any()
        assert (process.pages.last_window_count == 0).all()


class TestColdestSelection:
    def test_orders_by_generation(self, lru):
        process = make_process(n_pages=8)
        process.pages.tier[:] = FAST_TIER
        process.pages.lru_active[:] = False
        process.pages.lru_gen[:] = np.arange(8)[::-1]  # page 7 is coldest
        victims = lru.coldest_pages([process], FAST_TIER, 2)
        (proc, vpns), = victims
        assert proc is process
        assert set(vpns.tolist()) == {6, 7}

    def test_respects_tier_filter(self, lru):
        process = make_process(n_pages=8)
        process.pages.tier[:4] = FAST_TIER
        process.pages.tier[4:] = SLOW_TIER
        victims = lru.coldest_pages([process], FAST_TIER, 100)
        (_, vpns), = victims
        assert (vpns < 4).all()

    def test_inactive_only(self, lru):
        process = make_process(n_pages=8)
        process.pages.tier[:] = FAST_TIER
        process.pages.lru_active[:4] = True
        victims = lru.coldest_pages([process], FAST_TIER, 100)
        (_, vpns), = victims
        assert (vpns >= 4).all()
        # Including active pages widens the pool.
        victims = lru.coldest_pages(
            [process], FAST_TIER, 100, inactive_only=False
        )
        (_, vpns), = victims
        assert vpns.size == 8

    def test_spans_processes(self, lru):
        old = make_process(pid=1, n_pages=4)
        new = make_process(pid=2, n_pages=4)
        for proc, gen in [(old, 10), (new, 1000)]:
            proc.pages.tier[:] = FAST_TIER
            proc.pages.lru_active[:] = False
            proc.pages.lru_gen[:] = gen
        victims = lru.coldest_pages([old, new], FAST_TIER, 4)
        assert len(victims) == 1
        assert victims[0][0] is old

    def test_zero_request(self, lru):
        assert lru.coldest_pages([make_process()], FAST_TIER, 0) == []

    def test_no_matching_pages(self, lru):
        process = make_process(n_pages=4)  # all pages on slow tier
        assert lru.coldest_pages([process], FAST_TIER, 10) == []


class TestInactiveCount:
    def test_counts(self, lru):
        process = make_process(n_pages=8)
        process.pages.tier[:] = FAST_TIER
        process.pages.lru_active[:3] = True
        assert lru.inactive_count([process], FAST_TIER) == 5
