"""Tests for huge-page geometry helpers."""

import numpy as np
import pytest

from repro.vm.hugepage import (
    HUGE_1GB_PAGES,
    HUGE_2MB_PAGES,
    aggregate_by_huge,
    base_vpns_of,
    bloat_ratio,
    huge_id,
    n_huge_pages,
)


class TestGeometry:
    def test_2mb_is_512_base_pages(self):
        assert HUGE_2MB_PAGES == 512

    def test_1gb_is_512_squared(self):
        assert HUGE_1GB_PAGES == 512 * 512

    def test_n_huge_pages_exact(self):
        assert n_huge_pages(1024) == 2

    def test_n_huge_pages_partial_tail(self):
        assert n_huge_pages(1025) == 3

    def test_n_huge_pages_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            n_huge_pages(0)
        with pytest.raises(ValueError):
            n_huge_pages(10, 0)

    def test_huge_id(self):
        np.testing.assert_array_equal(
            huge_id(np.array([0, 511, 512, 1023])), [0, 0, 1, 1]
        )


class TestAggregation:
    def test_sums_within_groups(self):
        values = np.zeros(1024)
        values[0] = 1.0
        values[511] = 2.0
        values[512] = 5.0
        sums = aggregate_by_huge(values)
        assert sums.tolist() == [3.0, 5.0]

    def test_partial_tail_group(self):
        values = np.ones(520)
        sums = aggregate_by_huge(values)
        assert sums.tolist() == [512.0, 8.0]

    def test_custom_group_size(self):
        values = np.ones(10)
        sums = aggregate_by_huge(values, hp_pages=4)
        assert sums.tolist() == [4.0, 4.0, 2.0]


class TestExpansion:
    def test_base_vpns_roundtrip(self):
        vpns = base_vpns_of(np.array([1]), n_base_pages=2048)
        np.testing.assert_array_equal(vpns, np.arange(512, 1024))

    def test_tail_clipped(self):
        vpns = base_vpns_of(np.array([1]), n_base_pages=600)
        np.testing.assert_array_equal(vpns, np.arange(512, 600))

    def test_empty(self):
        assert base_vpns_of(np.array([]), 100).size == 0

    def test_multiple_groups(self):
        vpns = base_vpns_of(np.array([0, 2]), 2048, hp_pages=4)
        np.testing.assert_array_equal(vpns, [0, 1, 2, 3, 8, 9, 10, 11])


class TestBloat:
    def test_no_bloat(self):
        assert bloat_ratio(100, 100) == pytest.approx(1.0)

    def test_paper_like_bloat(self):
        # Memtis-style: 145% bloat means 1.45x hot footprint resident.
        assert bloat_ratio(145, 100) == pytest.approx(1.45)

    def test_zero_hot_pages(self):
        assert bloat_ratio(100, 0) == 0.0
