"""Tests for CIT bucketing and frequency estimation."""

import numpy as np
import pytest

from repro.core.cit import (
    CIT_BUCKETS,
    bucket_lower_bound_ns,
    bucket_upper_bound_ns,
    cit_bucket,
    cit_to_frequency_per_sec,
    max_measurable_frequency_per_sec,
)
from repro.sim.timeunits import MILLISECOND


class TestBucketing:
    def test_default_bucket_count_is_28(self):
        assert CIT_BUCKETS == 28

    def test_sub_unit_values_in_bucket_zero(self):
        cits = np.array([0, 1, MILLISECOND - 1])
        np.testing.assert_array_equal(cit_bucket(cits), [0, 0, 0])

    def test_bucket_boundaries_are_powers_of_two_ms(self):
        # Bucket i holds [2^(i-1), 2^i) ms.
        for i in range(1, 10):
            low = (1 << (i - 1)) * MILLISECOND
            high = (1 << i) * MILLISECOND - 1
            assert cit_bucket(np.array([low]))[0] == i
            assert cit_bucket(np.array([high]))[0] == i

    def test_saturates_at_last_bucket(self):
        huge = np.array([(1 << 40) * MILLISECOND])
        assert cit_bucket(huge)[0] == CIT_BUCKETS - 1

    def test_sentinel_is_coldest(self):
        assert cit_bucket(np.array([-1]))[0] == CIT_BUCKETS - 1

    def test_custom_unit(self):
        cits = np.array([30_000])  # 30 us
        assert cit_bucket(cits, unit_ns=20_000)[0] == 1
        assert cit_bucket(cits, unit_ns=MILLISECOND)[0] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            cit_bucket(np.array([1]), n_buckets=1)
        with pytest.raises(ValueError):
            cit_bucket(np.array([1]), unit_ns=0)


class TestBounds:
    def test_bounds_partition_the_axis(self):
        for bucket in range(1, 12):
            assert bucket_lower_bound_ns(bucket) == bucket_upper_bound_ns(
                bucket - 1
            )

    def test_bucket_zero(self):
        assert bucket_lower_bound_ns(0) == 0
        assert bucket_upper_bound_ns(0) == MILLISECOND

    def test_values_fall_inside_their_bucket(self):
        for value in [500_000, 3 * MILLISECOND, 100 * MILLISECOND]:
            bucket = int(cit_bucket(np.array([value]))[0])
            assert bucket_lower_bound_ns(bucket) <= value
            assert value < bucket_upper_bound_ns(bucket)

    def test_custom_unit_bounds(self):
        assert bucket_upper_bound_ns(3, unit_ns=20_000) == 160_000

    def test_validation(self):
        with pytest.raises(ValueError):
            bucket_lower_bound_ns(-1)
        with pytest.raises(ValueError):
            bucket_upper_bound_ns(0, unit_ns=0)


class TestFrequency:
    def test_frequency_inverse_of_period(self):
        # E[CIT] = T/2, so a 1 ms CIT implies a 2 ms period = 500 Hz.
        freq = cit_to_frequency_per_sec(np.array([MILLISECOND]))
        assert freq[0] == pytest.approx(500.0)

    def test_lower_cit_means_higher_frequency(self):
        freqs = cit_to_frequency_per_sec(
            np.array([100_000, MILLISECOND, 10 * MILLISECOND])
        )
        assert freqs[0] > freqs[1] > freqs[2]

    def test_sentinels_map_to_zero(self):
        freqs = cit_to_frequency_per_sec(np.array([-1, 0]))
        np.testing.assert_array_equal(freqs, [0.0, 0.0])

    def test_headline_capability(self):
        # Millisecond timers resolve up to ~1000 accesses/second (Table 1).
        assert max_measurable_frequency_per_sec() == pytest.approx(1000.0)
