"""Tests for SimProcess accounting."""

import pytest

from tests.conftest import make_process


class TestKernelCharges:
    def test_charge_accumulates(self, process):
        process.charge_kernel(100.0)
        process.charge_kernel(50.0)
        assert process.pending_kernel_ns == 150.0

    def test_negative_charge_rejected(self, process):
        with pytest.raises(ValueError):
            process.charge_kernel(-1.0)

    def test_drain_within_budget(self, process):
        process.charge_kernel(100.0)
        used = process.drain_pending_kernel(budget_ns=250.0)
        assert used == 100.0
        assert process.pending_kernel_ns == 0.0
        assert process.stats.kernel_time_ns == 100.0

    def test_drain_clipped_by_budget(self, process):
        process.charge_kernel(1000.0)
        used = process.drain_pending_kernel(budget_ns=300.0)
        assert used == 300.0
        assert process.pending_kernel_ns == 700.0

    def test_overload_carries_over_quanta(self, process):
        """Kernel storms starve user time across multiple quanta."""
        process.charge_kernel(250.0)
        total = 0.0
        for _ in range(3):
            total += process.drain_pending_kernel(budget_ns=100.0)
        assert total == pytest.approx(250.0)


class TestStats:
    def test_record_accesses(self, process):
        process.record_accesses(
            n_total=100.0, n_fast=60.0, user_ns=5000.0, stall_ns=100.0
        )
        stats = process.stats
        assert stats.accesses == 100.0
        assert stats.fast_accesses == 60.0
        assert stats.slow_accesses == 40.0
        assert stats.fast_access_ratio() == pytest.approx(0.6)

    def test_fmar_zero_when_idle(self, process):
        assert process.stats.fast_access_ratio() == 0.0

    def test_throughput(self, process):
        process.record_accesses(1000.0, 500.0, user_ns=1e9)
        assert process.stats.throughput_per_sec() == pytest.approx(
            1000.0
        )

    def test_throughput_zero_time(self, process):
        assert process.stats.throughput_per_sec() == 0.0

    def test_total_time_components(self, process):
        process.record_accesses(1.0, 1.0, user_ns=10.0, stall_ns=5.0)
        process.charge_kernel(7.0)
        process.drain_pending_kernel(100.0)
        assert process.stats.total_time_ns == pytest.approx(22.0)

    def test_dram_page_percentage(self, process):
        from repro.mem.tier import FAST_TIER
        import numpy as np

        process.pages.move_to_tier(np.arange(16), FAST_TIER)
        assert process.dram_page_percentage() == pytest.approx(25.0)

    def test_target_accesses_default_none(self, process):
        assert process.target_accesses is None
