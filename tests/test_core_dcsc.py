"""Tests for the DCSC statistics collector."""

import numpy as np
import pytest

from repro.core.cit import bucket_upper_bound_ns
from repro.core.dcsc import DcscCollector, DcscConfig
from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.sim.rng import RngStreams
from repro.sim.timeunits import SECOND
from tests.conftest import make_process


def make_collector(**config_overrides):
    defaults = dict(
        victim_fraction=0.05,
        min_victims_per_process=4,
        probe_timeout_ns=2 * SECOND,
        min_samples=4.0,
    )
    defaults.update(config_overrides)
    return DcscCollector(
        DcscConfig(**defaults), RngStreams(7).get("dcsc")
    )


class TestConfig:
    def test_paper_defaults(self):
        config = DcscConfig()
        assert config.victim_fraction == pytest.approx(0.00003)
        assert config.n_buckets == 28
        assert config.cit_unit_ns == 1_000_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(victim_fraction=0),
            dict(victim_fraction=1.0),
            dict(n_buckets=1),
            dict(cit_unit_ns=0),
            dict(probe_period_ns=0),
            dict(decay=0),
            dict(min_samples=0),
            dict(min_victims_per_process=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DcscConfig(**kwargs)


class TestProbing:
    def test_probe_marks_and_protects(self):
        collector = make_collector()
        process = make_process(n_pages=128)
        probed = collector.probe_process(process, now_ns=100)
        assert probed >= 4
        vpns = np.flatnonzero(process.pages.probed)
        assert vpns.size == probed
        assert process.pages.prot_none[vpns].all()
        assert (process.pages.scan_ts_ns[vpns] == 100).all()

    def test_reprobe_skips_pending(self):
        collector = make_collector(victim_fraction=0.5)
        process = make_process(n_pages=16)
        first = collector.probe_process(process, now_ns=0)
        second = collector.probe_process(process, now_ns=1)
        total_probed = int(process.pages.probed.sum())
        assert total_probed <= first + second

    def test_stale_probes_counted_cold(self):
        collector = make_collector(probe_timeout_ns=10)
        process = make_process(n_pages=64)
        collector.probe_process(process, now_ns=0)
        collector.probe_process(process, now_ns=1_000)  # expires the first
        assert collector.heat_maps[SLOW_TIER][-1] > 0
        assert collector.samples_recorded > 0

    def test_decay(self):
        collector = make_collector(decay=0.5)
        collector.heat_maps[FAST_TIER][3] = 8.0
        collector.decay_maps()
        assert collector.heat_maps[FAST_TIER][3] == 4.0


class TestTwoRoundCollection:
    def test_round_one_reprotects_at_fault_time(self):
        collector = make_collector()
        process = make_process(n_pages=64)
        collector.probe_process(process, now_ns=0)
        vpn = int(np.flatnonzero(process.pages.probed)[0])
        collector.on_probed_fault(
            process,
            np.array([vpn]),
            np.array([5_000]),
            np.array([5_000]),
        )
        # Still probed, re-protected, nothing recorded yet.
        assert process.pages.probed[vpn]
        assert process.pages.prot_none[vpn]
        assert process.pages.scan_ts_ns[vpn] == 5_000
        assert collector.samples_recorded == 0

    def test_round_two_records_max(self):
        collector = make_collector(cit_unit_ns=1_000)
        process = make_process(n_pages=64)
        collector.probe_process(process, now_ns=0)
        vpn = int(np.flatnonzero(process.pages.probed)[0])
        collector.on_probed_fault(
            process, np.array([vpn]), np.array([1_500]), np.array([1_500])
        )
        collector.on_probed_fault(
            process, np.array([vpn]), np.array([7_000]), np.array([9_000])
        )
        assert not process.pages.probed[vpn]
        assert collector.samples_recorded == 1
        # max(1500, 7000) = 7000 ns = 7 units -> bucket 3 ([4, 8)).
        assert collector.heat_maps[SLOW_TIER][3] == 1.0

    def test_tier_attribution(self):
        collector = make_collector(cit_unit_ns=1_000)
        process = make_process(n_pages=64)
        process.pages.tier[:32] = FAST_TIER
        collector.probe_process(process, now_ns=0)
        vpns = np.flatnonzero(process.pages.probed)
        for _ in range(2):  # two rounds
            collector.on_probed_fault(
                process, vpns, np.full(vpns.size, 500),
                np.full(vpns.size, 500),
            )
        fast_mass = collector.heat_maps[FAST_TIER].sum()
        slow_mass = collector.heat_maps[SLOW_TIER].sum()
        n_fast = int((process.pages.tier[vpns] == FAST_TIER).sum())
        assert fast_mass == n_fast
        assert slow_mass == vpns.size - n_fast


class TestTargets:
    def test_insufficient_samples(self):
        collector = make_collector(min_samples=100)
        assert collector.compute_targets(100, 400, SECOND) is None

    def test_threshold_one_bucket_under_capacity_quantile(self):
        collector = make_collector(cit_unit_ns=1_000)
        # 25 hot samples in bucket 2, 75 cold in bucket 10.  The capacity
        # quantile lands in bucket 2; the repeated-trial correction backs
        # off one bucket.
        collector.heat_maps[SLOW_TIER][2] = 25.0
        collector.heat_maps[SLOW_TIER][10] = 75.0
        threshold, _ = collector.compute_targets(
            fast_capacity_pages=100, total_pages=400, scan_period_ns=SECOND
        )
        assert threshold == bucket_upper_bound_ns(1, unit_ns=1_000)

    def test_threshold_floor_at_bucket_zero(self):
        collector = make_collector(cit_unit_ns=1_000)
        collector.heat_maps[SLOW_TIER][0] = 100.0
        threshold, _ = collector.compute_targets(
            fast_capacity_pages=100, total_pages=400, scan_period_ns=SECOND
        )
        assert threshold == bucket_upper_bound_ns(0, unit_ns=1_000)

    def test_rate_from_misplacement(self):
        collector = make_collector(cit_unit_ns=1_000)
        # Half the hot mass sits in the slow tier.
        collector.heat_maps[FAST_TIER][1] = 10.0
        collector.heat_maps[SLOW_TIER][1] = 10.0
        collector.heat_maps[SLOW_TIER][10] = 60.0
        _, rate = collector.compute_targets(
            fast_capacity_pages=100,
            total_pages=400,
            scan_period_ns=2 * SECOND,
        )
        # misplaced fraction = 10/80; 0.125 * 400 pages / 2 s = 25/s.
        assert rate == pytest.approx(25.0)

    def test_no_misplacement_floors_rate(self):
        collector = make_collector(cit_unit_ns=1_000)
        collector.heat_maps[FAST_TIER][1] = 25.0
        collector.heat_maps[SLOW_TIER][10] = 75.0
        _, rate = collector.compute_targets(100, 400, SECOND)
        assert rate == 1.0

    def test_validation(self):
        collector = make_collector()
        with pytest.raises(ValueError):
            collector.compute_targets(0, 100, SECOND)
        with pytest.raises(ValueError):
            collector.compute_targets(10, 0, SECOND)
        with pytest.raises(ValueError):
            collector.compute_targets(10, 100, 0)
