"""Tests for the Ticking-scan / NUMA-balancing scanner."""

import numpy as np
import pytest

from repro.kernel.scanner import ScanConfig, TickingScanner
from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.sim.timeunits import SECOND
from tests.conftest import make_kernel, make_process


@pytest.fixture
def setup():
    kernel = make_kernel()
    process = make_process(n_pages=64)
    kernel.register_process(process)
    return kernel, process


class TestScanConfig:
    def test_defaults_match_paper(self):
        config = ScanConfig()
        assert config.scan_period_ns == 60 * SECOND
        assert config.scan_step_pages == 65_536  # 256 MB

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            ScanConfig(scan_period_ns=0)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            ScanConfig(scan_step_pages=0)


class TestScanOnce:
    def test_marks_window_prot_none(self, setup):
        kernel, process = setup
        scanner = kernel.create_scanner(
            ScanConfig(scan_period_ns=SECOND, scan_step_pages=16)
        )
        window = scanner.scan_once(process, now_ns=100)
        assert window.size == 16
        assert process.pages.prot_none[window].all()
        assert (process.pages.scan_ts_ns[window] == 100).all()

    def test_charges_kernel_time(self, setup):
        kernel, process = setup
        scanner = kernel.create_scanner(
            ScanConfig(scan_period_ns=SECOND, scan_step_pages=16)
        )
        scanner.scan_once(process, now_ns=0)
        expected = 16 * kernel.machine.spec.scan_page_cost_ns
        assert process.pending_kernel_ns == expected
        assert kernel.stats.pages_scanned == 16

    def test_tier_filter(self, setup):
        kernel, process = setup
        process.pages.tier[:32] = FAST_TIER
        process.pages.tier[32:] = SLOW_TIER
        scanner = kernel.create_scanner(
            ScanConfig(
                scan_period_ns=SECOND,
                scan_step_pages=64,
                tier_filter=SLOW_TIER,
            )
        )
        window = scanner.scan_once(process, now_ns=0)
        assert (window >= 32).all()
        assert not process.pages.prot_none[:32].any()

    def test_scan_pass_counted_on_wrap(self, setup):
        kernel, process = setup
        scanner = kernel.create_scanner(
            ScanConfig(scan_period_ns=SECOND, scan_step_pages=64)
        )
        scanner.scan_once(process, now_ns=0)
        assert kernel.stats.scan_passes == 1

    def test_on_scan_hook(self, setup):
        kernel, process = setup
        scanner = kernel.create_scanner(
            ScanConfig(scan_period_ns=SECOND, scan_step_pages=8)
        )
        seen = []
        scanner.on_scan = lambda proc, vpns, now: seen.append(
            (proc.pid, vpns.size, now)
        )
        scanner.scan_once(process, now_ns=7)
        assert seen == [(process.pid, 8, 7)]


class TestScheduling:
    def test_interval_spreads_pass_over_period(self, setup):
        kernel, process = setup
        scanner = kernel.create_scanner(
            ScanConfig(scan_period_ns=SECOND, scan_step_pages=16)
        )
        # 64 pages / 16 per event = 4 events per period.
        assert scanner.interval_ns(process) == SECOND // 4

    def test_periodic_scanning_covers_address_space(self, setup):
        kernel, process = setup
        kernel.create_scanner(
            ScanConfig(scan_period_ns=SECOND, scan_step_pages=16)
        )
        kernel.scanner.start()
        kernel.advance_to(SECOND + 1)
        # After one full period every page has been marked at least once.
        assert process.pages.prot_none.all()

    def test_start_idempotent(self, setup):
        kernel, process = setup
        kernel.create_scanner(
            ScanConfig(scan_period_ns=SECOND, scan_step_pages=64)
        )
        kernel.scanner.start()
        pending_before = len(kernel.scheduler)
        kernel.scanner.start()
        assert len(kernel.scheduler) == pending_before

    def test_finished_process_not_rescanned(self, setup):
        kernel, process = setup
        kernel.create_scanner(
            ScanConfig(scan_period_ns=SECOND, scan_step_pages=16)
        )
        kernel.scanner.start()
        process.finished = True
        kernel.advance_to(2 * SECOND)
        assert kernel.stats.pages_scanned == 0
