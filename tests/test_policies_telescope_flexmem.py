"""Tests for the bonus Table 1 baselines: Telescope and FlexMem."""

import numpy as np
import pytest

from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.policies.flexmem import FlexMemPolicy
from repro.policies.telescope import TelescopePolicy
from repro.sim.timeunits import MILLISECOND, SECOND
from repro.vm.fault import FaultBatch
from tests.conftest import make_kernel, make_process


def attach(policy, fast_pages=256, slow_pages=2048, n_pages=1024):
    kernel = make_kernel(fast_pages=fast_pages, slow_pages=slow_pages)
    process = make_process(pid=1, n_pages=n_pages)
    kernel.register_process(process)
    kernel.allocate_initial_placement()
    kernel.set_policy(policy)
    return kernel, process


def fault_batch(process, vpns, cits):
    vpns = np.asarray(vpns, dtype=np.int64)
    return FaultBatch(
        pid=process.pid,
        vpns=vpns,
        fault_ts_ns=np.full(vpns.size, 1_000, dtype=np.int64),
        cit_ns=np.asarray(cits, dtype=np.int64),
    )


class TestTelescope:
    def test_validation(self):
        with pytest.raises(ValueError):
            TelescopePolicy(window_ns=0)
        with pytest.raises(ValueError):
            TelescopePolicy(region_fanout=1)
        with pytest.raises(ValueError):
            TelescopePolicy(n_levels=0)

    def test_no_scanner(self):
        kernel, _ = attach(TelescopePolicy())
        assert kernel.scanner is None

    def test_region_geometry(self):
        policy = TelescopePolicy(region_fanout=4, n_levels=3)
        _, process = attach(policy)
        # level 0 regions cover fanout^3 = 64 pages, leaves 4 pages.
        assert policy.region_pages(process, 0) == 64
        assert policy.region_pages(process, 2) == 4

    def test_drill_down_narrows_then_promotes(self):
        policy = TelescopePolicy(
            window_ns=100 * MILLISECOND, region_fanout=4, n_levels=2
        )
        kernel, process = attach(policy)
        kernel.start()
        # Concentrate all traffic on one slow-tier leaf region.
        slow = process.pages.pages_in_tier(SLOW_TIER)
        hot_leaf_start = int(slow[0] // 4 * 4)
        counts = np.zeros(process.n_pages)
        counts[hot_leaf_start:hot_leaf_start + 4] = 100.0
        probs = counts / counts.sum()
        # Feed two profiling windows (root level + leaf level).
        for window in range(2):
            policy.on_quantum(
                process, probs, 10_000, 0, 100 * MILLISECOND
            )
            kernel.advance_to((window + 1) * 100 * MILLISECOND + 1)
        promoted = process.pages.tier[
            hot_leaf_start:hot_leaf_start + 4
        ]
        assert (promoted == FAST_TIER).all()

    def test_untouched_regions_never_promote(self):
        policy = TelescopePolicy(
            window_ns=100 * MILLISECOND, region_fanout=4, n_levels=2
        )
        kernel, process = attach(policy)
        kernel.start()
        kernel.advance_to(SECOND)  # windows pass with zero traffic
        assert kernel.stats.pgpromote == 0

    def test_profiling_cost_charged(self):
        policy = TelescopePolicy(window_ns=100 * MILLISECOND)
        kernel, process = attach(policy)
        kernel.start()
        kernel.advance_to(100 * MILLISECOND + 1)
        assert process.pending_kernel_ns > 0


class TestFlexMem:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlexMemPolicy(hint_fault_latency_ns=0)

    def test_has_scanner_and_sampler(self):
        kernel, _ = attach(FlexMemPolicy(hp_pages=8))
        assert kernel.scanner is not None
        assert kernel.policy.sampler is not None

    def test_timely_fault_promotes_sampled_region(self):
        policy = FlexMemPolicy(
            hp_pages=8, hint_fault_latency_ns=MILLISECOND
        )
        kernel, process = attach(policy)
        kernel.clock.advance(SECOND)
        slow = process.pages.pages_in_tier(SLOW_TIER)
        groups = slow // 8
        ids, counts = np.unique(groups, return_counts=True)
        group = int(ids[counts == 8][0])
        vpn = group * 8 + 2
        # Sampled history exists for the page.
        policy.state(process).counts[vpn] = 4.0
        policy.on_fault(process, fault_batch(process, [vpn], [100]))
        region = process.pages.tier[group * 8: group * 8 + 8]
        assert (region == FAST_TIER).all()

    def test_slow_fault_not_promoted(self):
        policy = FlexMemPolicy(
            hp_pages=8, hint_fault_latency_ns=MILLISECOND
        )
        kernel, process = attach(policy)
        kernel.clock.advance(SECOND)
        vpn = int(process.pages.pages_in_tier(SLOW_TIER)[0])
        policy.state(process).counts[vpn] = 4.0
        policy.on_fault(
            process, fault_batch(process, [vpn], [10 * MILLISECOND])
        )
        assert kernel.stats.pgpromote == 0

    def test_unsampled_fault_not_promoted(self):
        policy = FlexMemPolicy(
            hp_pages=8, hint_fault_latency_ns=MILLISECOND
        )
        kernel, process = attach(policy)
        kernel.clock.advance(SECOND)
        vpn = int(process.pages.pages_in_tier(SLOW_TIER)[0])
        policy.on_fault(process, fault_batch(process, [vpn], [100]))
        assert kernel.stats.pgpromote == 0

    def test_inherits_memtis_classification(self):
        policy = FlexMemPolicy(hp_pages=8, split_budget_per_pass=0)
        kernel, process = attach(policy)
        state = policy.state(process)
        slow = process.pages.pages_in_tier(SLOW_TIER)
        groups = slow // 8
        ids, counts = np.unique(groups, return_counts=True)
        group = int(ids[counts == 8][0])
        state.counts[group * 8: group * 8 + 8] = 50.0
        policy._classify_process(process, now_ns=0)
        assert (
            process.pages.tier[group * 8: group * 8 + 8] == FAST_TIER
        ).all()
