"""Tests for the phase-changing workload builders."""

import numpy as np
import pytest

from repro.sim.timeunits import SECOND
from repro.workloads.dynamic import (
    diurnal_mix,
    expanding_working_set,
    shifting_hotspot,
)


class TestShiftingHotspot:
    def test_hotspot_moves_between_phases(self):
        workload = shifting_hotspot(
            n_pages=1000, n_phases=4, phase_len_ns=SECOND
        )
        peaks = []
        for phase in range(4):
            probs = workload.access_distribution(
                now_ns=phase * SECOND + SECOND // 2
            )
            peaks.append(int(np.argmax(probs)))
        assert peaks == sorted(peaks)
        assert peaks[0] < 250 and peaks[-1] > 750

    def test_background_floor_everywhere(self):
        workload = shifting_hotspot(n_pages=100, background_fraction=0.2)
        assert (workload.access_distribution() > 0).all()

    def test_distribution_normalized(self):
        workload = shifting_hotspot(n_pages=500)
        for phase in range(4):
            probs = workload.access_distribution(
                now_ns=phase * 20_000_000_000
            )
            assert probs.sum() == pytest.approx(1.0)

    def test_needs_two_phases(self):
        with pytest.raises(ValueError):
            shifting_hotspot(n_pages=100, n_phases=1)


class TestExpandingWorkingSet:
    def test_footprint_grows(self):
        workload = expanding_working_set(
            n_pages=1000, n_phases=3, phase_len_ns=SECOND,
            start_fraction=0.2,
        )
        footprints = []
        for phase in range(3):
            probs = workload.access_distribution(
                now_ns=phase * SECOND + 1
            )
            footprints.append(int(np.count_nonzero(probs)))
        assert footprints == sorted(footprints)
        assert footprints[0] == 200
        assert footprints[-1] == 1000

    def test_uniform_within_footprint(self):
        workload = expanding_working_set(n_pages=100, start_fraction=0.5)
        probs = workload.access_distribution(now_ns=0)
        active = probs[probs > 0]
        np.testing.assert_allclose(active, active[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            expanding_working_set(n_pages=100, n_phases=0)
        with pytest.raises(ValueError):
            expanding_working_set(n_pages=100, start_fraction=0)


class TestDiurnalMix:
    def test_two_phases_cycle(self):
        workload = diurnal_mix(n_pages=1000, phase_len_ns=SECOND)
        day = workload.access_distribution(now_ns=0).copy()
        night = workload.access_distribution(now_ns=SECOND + 1)
        assert not np.allclose(day, night)
        again = workload.access_distribution(now_ns=2 * SECOND + 1)
        np.testing.assert_allclose(day, again)

    def test_day_front_heavy_night_back_heavy(self):
        workload = diurnal_mix(n_pages=1000, phase_len_ns=SECOND)
        day = workload.access_distribution(now_ns=0).copy()
        night = workload.access_distribution(now_ns=SECOND + 1)
        assert day[:500].sum() > day[500:].sum()
        assert night[500:].sum() > night[:500].sum()
