"""Tests for DCSC's engine-boundary requantization."""

import numpy as np
import pytest

from repro.core.dcsc import DcscCollector, DcscConfig
from repro.sim.rng import RngStreams
from tests.conftest import make_process


def make_collector(requantize_ns):
    return DcscCollector(
        DcscConfig(
            victim_fraction=0.5,
            min_victims_per_process=8,
            requantize_ns=requantize_ns,
        ),
        RngStreams(3).get("requant"),
    )


class TestRequantize:
    def test_round_two_restarts_at_boundary(self):
        collector = make_collector(requantize_ns=1_000)
        process = make_process(n_pages=32)
        collector.probe_process(process, now_ns=0)
        vpn = int(np.flatnonzero(process.pages.probed)[0])
        # Fault mid-quantum at t = 2_300.
        collector.on_probed_fault(
            process, np.array([vpn]), np.array([2_300]),
            np.array([2_300]),
        )
        # Re-protection stamped at the *next* boundary (3_000).
        assert process.pages.scan_ts_ns[vpn] == 3_000

    def test_boundary_fault_moves_to_next_boundary(self):
        collector = make_collector(requantize_ns=1_000)
        process = make_process(n_pages=32)
        collector.probe_process(process, now_ns=0)
        vpn = int(np.flatnonzero(process.pages.probed)[0])
        collector.on_probed_fault(
            process, np.array([vpn]), np.array([2_000]),
            np.array([2_000]),
        )
        assert process.pages.scan_ts_ns[vpn] == 3_000

    def test_disabled_stamps_fault_time(self):
        collector = make_collector(requantize_ns=0)
        process = make_process(n_pages=32)
        collector.probe_process(process, now_ns=0)
        vpn = int(np.flatnonzero(process.pages.probed)[0])
        collector.on_probed_fault(
            process, np.array([vpn]), np.array([2_300]),
            np.array([2_300]),
        )
        assert process.pages.scan_ts_ns[vpn] == 2_300

    def test_negative_hint_rejected(self):
        with pytest.raises(ValueError):
            DcscConfig(requantize_ns=-1)
