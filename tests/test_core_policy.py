"""Integration tests for ChronoPolicy and its ablation variants."""

import numpy as np
import pytest

from repro.core.dcsc import DcscConfig
from repro.core.policy import ChronoPolicy, make_chrono_variant
from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.sim.timeunits import MILLISECOND, SECOND
from repro.vm.fault import FaultBatch
from tests.conftest import make_kernel, make_process


def make_chrono(**overrides):
    defaults = dict(
        scan_period_ns=SECOND,
        scan_step_pages=64,
        tune_period_ns=SECOND,
        drain_period_ns=SECOND // 10,
        cit_threshold_ns=MILLISECOND,
    )
    defaults.update(overrides)
    return ChronoPolicy(**defaults)


def attach(policy, fast_pages=64, slow_pages=512, n_pages=128):
    kernel = make_kernel(fast_pages=fast_pages, slow_pages=slow_pages)
    process = make_process(n_pages=n_pages)
    kernel.register_process(process)
    kernel.allocate_initial_placement()
    kernel.set_policy(policy)
    return kernel, process


def fault_batch(process, vpns, cits, now=1_000):
    vpns = np.asarray(vpns, dtype=np.int64)
    return FaultBatch(
        pid=process.pid,
        vpns=vpns,
        fault_ts_ns=np.full(vpns.size, now, dtype=np.int64),
        cit_ns=np.asarray(cits, dtype=np.int64),
    )


class TestConfiguration:
    def test_attach_sets_tiering_mode(self):
        kernel, _ = attach(make_chrono())
        assert kernel.sysctl.get("kernel.numa_balancing") == 2
        assert kernel.scanner is not None
        assert kernel.reclaim.mark_demoted

    def test_table2_sysctls_registered(self):
        kernel, _ = attach(make_chrono())
        for name in [
            "chrono.scan_step_pages",
            "chrono.scan_period_sec",
            "chrono.p_victim",
            "chrono.b_bucket",
            "chrono.delta_step",
            "chrono.cit_threshold_ms",
            "chrono.rate_limit_mbps",
        ]:
            assert name in kernel.sysctl

    def test_default_rate_derived_from_machine(self):
        kernel, _ = attach(make_chrono())
        assert make_chrono().base_rate_limit == 0.0  # before attach
        policy = kernel.policy
        assert policy.base_rate_limit == pytest.approx(
            kernel.machine.fast.capacity_pages / 20.0
        )

    def test_semi_mode_has_no_dcsc(self):
        kernel, _ = attach(make_chrono(tuning="semi"))
        assert kernel.policy.dcsc is None

    def test_pro_watermark_sized(self):
        kernel, _ = attach(make_chrono())
        assert kernel.watermarks.pro_gap_pages > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(tuning="nope"),
            dict(page_granularity="giant"),
            dict(cit_threshold_ns=0),
            dict(drain_period_ns=0),
            dict(hp_pages=1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ChronoPolicy(**kwargs)


class TestFaultPath:
    def test_two_round_promotion_via_queue(self):
        policy = make_chrono(tuning="semi", rate_limit_pages_per_sec=1e6)
        kernel, process = attach(policy)
        vpn = int(process.pages.pages_in_tier(SLOW_TIER)[0])
        policy.on_fault(process, fault_batch(process, [vpn], [100]))
        assert len(policy.queue) == 0  # round one only
        policy.on_fault(process, fault_batch(process, [vpn], [100]))
        assert len(policy.queue) == 1
        kernel.start()
        kernel.advance_to(SECOND // 10 + 1)  # drain tick
        assert process.pages.tier[vpn] == FAST_TIER

    def test_cold_cit_not_enqueued(self):
        policy = make_chrono(tuning="semi")
        kernel, process = attach(policy)
        vpn = int(process.pages.pages_in_tier(SLOW_TIER)[0])
        for _ in range(3):
            policy.on_fault(
                process, fault_batch(process, [vpn], [10 * MILLISECOND])
            )
        assert len(policy.queue) == 0

    def test_fast_tier_faults_ignored(self):
        policy = make_chrono(tuning="semi")
        kernel, process = attach(policy)
        vpn = int(process.pages.pages_in_tier(FAST_TIER)[0])
        for _ in range(3):
            policy.on_fault(process, fault_batch(process, [vpn], [100]))
        assert len(policy.queue) == 0

    def test_probed_faults_routed_to_dcsc(self):
        policy = make_chrono(
            dcsc_config=DcscConfig(
                victim_fraction=0.05, min_victims_per_process=4
            )
        )
        kernel, process = attach(policy)
        policy.dcsc.probe_process(process, now_ns=0)
        vpns = np.flatnonzero(process.pages.probed)
        policy.on_fault(
            process, fault_batch(process, vpns, np.full(vpns.size, 100))
        )
        # Round-one handling: still probed, not in promotion queue.
        assert process.pages.probed[vpns].all()
        assert len(policy.queue) == 0

    def test_thrash_detection_within_window(self):
        policy = make_chrono(tuning="semi")
        kernel, process = attach(policy)
        vpn = int(process.pages.pages_in_tier(FAST_TIER)[0])
        kernel.migration.migrate(
            process, np.array([vpn]), SLOW_TIER, mark_demoted=True
        )
        for _ in range(2):
            policy.on_fault(process, fault_batch(process, [vpn], [100]))
        assert kernel.stats.thrash_events == 1
        assert process.stats.thrash_events == 1

    def test_old_demotion_is_not_thrash(self):
        policy = make_chrono(tuning="semi")
        kernel, process = attach(policy)
        vpn = int(process.pages.pages_in_tier(FAST_TIER)[0])
        kernel.migration.migrate(
            process, np.array([vpn]), SLOW_TIER, mark_demoted=True
        )
        kernel.clock.advance(10 * SECOND)  # well past the scan period
        for _ in range(2):
            policy.on_fault(process, fault_batch(process, [vpn], [100]))
        assert kernel.stats.thrash_events == 0


class TestTuning:
    def test_semi_auto_threshold_responds(self):
        policy = make_chrono(
            tuning="semi",
            rate_limit_pages_per_sec=10.0,
            cit_threshold_ns=10 * MILLISECOND,
        )
        kernel, process = attach(policy)
        kernel.start()
        # Flood the queue beyond the rate limit.
        slow = process.pages.pages_in_tier(SLOW_TIER)[:50]
        for _ in range(2):
            policy.on_fault(
                process, fault_batch(process, slow, np.full(slow.size, 10))
            )
        before = policy.cit_threshold_ns
        kernel.advance_to(SECOND + 1)  # tune tick
        assert policy.cit_threshold_ns < before

    def test_thrash_backoff_cuts_rate(self):
        policy = make_chrono(tuning="semi", rate_limit_pages_per_sec=100.0)
        kernel, process = attach(policy)
        kernel.start()
        policy.monitor.record_promotions(10)
        policy.monitor.record_thrash(9)
        kernel.advance_to(SECOND + 1)
        assert policy.queue.rate_limit_pages_per_sec < 100.0

    def test_histories_recorded(self):
        policy = make_chrono(tuning="semi")
        kernel, _ = attach(policy)
        kernel.start()
        kernel.advance_to(3 * SECOND + 1)
        assert len(kernel.series.series("chrono.cit_threshold_ms")) >= 3
        assert len(kernel.series.series("chrono.rate_limit_mbps")) >= 3

    def test_dcsc_probe_daemon_runs(self):
        policy = make_chrono(
            dcsc_config=DcscConfig(
                victim_fraction=0.05,
                probe_period_ns=SECOND // 2,
                min_victims_per_process=4,
            )
        )
        kernel, process = attach(policy)
        kernel.start()
        kernel.advance_to(2 * SECOND)
        assert kernel.stats.dcsc_probes > 0
        assert process.pages.probed.any() or policy.dcsc.samples_recorded


class TestHugeMode:
    def test_group_promotion(self):
        policy = make_chrono(
            tuning="semi",
            page_granularity="huge",
            hp_pages=8,
            rate_limit_pages_per_sec=1e6,
            cit_threshold_ns=8 * MILLISECOND,  # TH/8 = 1 ms per group
        )
        kernel, process = attach(
            policy, fast_pages=256, slow_pages=1024, n_pages=512
        )
        slow_vpns = process.pages.pages_in_tier(SLOW_TIER)
        # A group whose 8 pages are all slow-resident.
        groups = slow_vpns // 8
        ids, counts = np.unique(groups, return_counts=True)
        group = int(ids[counts == 8][0])
        vpn = group * 8 + 3
        for _ in range(2):
            policy.on_fault(process, fault_batch(process, [vpn], [100]))
        # The whole 8-page group is queued.
        assert len(policy.queue) == 8


class TestVariants:
    def test_presets(self):
        assert make_chrono_variant("basic").filter.n_rounds == 1
        assert make_chrono_variant("basic").tuning == "semi"
        assert make_chrono_variant("twice").filter.n_rounds == 2
        assert make_chrono_variant("thrice").filter.n_rounds == 3
        assert make_chrono_variant("full").tuning == "dcsc"
        assert make_chrono_variant("manual").tuning == "semi"

    def test_names(self):
        assert make_chrono_variant("full").name == "chrono-full"

    def test_overrides_forwarded(self):
        policy = make_chrono_variant("twice", scan_period_ns=SECOND)
        assert policy.scan_period_ns == SECOND

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            make_chrono_variant("ultra")
