"""Unit tests for the metrics registry and instrument kinds."""

import numpy as np
import pytest

from repro.obs.metrics import (
    METRIC_CATALOGUE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_names,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4.5)
        assert counter.value == 5.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("x")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram("x", edges=[1.0, 10.0, 100.0])
        hist.observe(0.5)    # below first edge -> bucket 0
        hist.observe(1.0)    # at edge 0 -> bucket 1
        hist.observe(50.0)   # bucket 2
        hist.observe(1e6)    # above last edge -> final bucket
        assert list(hist.counts) == [1.0, 1.0, 1.0, 1.0]
        assert hist.total == 4.0
        assert hist.mean() == pytest.approx((0.5 + 1 + 50 + 1e6) / 4)

    def test_observe_many_matches_scalar_path(self):
        values = np.array([0.1, 5.0, 5.0, 200.0, 1e9])
        batch = Histogram("x", edges=[1.0, 10.0, 100.0])
        batch.observe_many(values)
        scalar = Histogram("x", edges=[1.0, 10.0, 100.0])
        for value in values:
            scalar.observe(float(value))
        assert list(batch.counts) == list(scalar.counts)
        assert batch.sum == pytest.approx(scalar.sum)

    def test_observe_many_empty_is_noop(self):
        hist = Histogram("x", edges=[1.0])
        hist.observe_many(np.array([]))
        assert hist.total == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram("x", edges=[])
        with pytest.raises(ValueError):
            Histogram("x", edges=[2.0, 1.0])


class TestRegistry:
    def test_precreates_full_catalogue(self):
        snap = MetricsRegistry().snapshot()
        names = (
            set(snap["counters"])
            | set(snap["gauges"])
            | set(snap["histograms"])
        )
        assert names == set(metric_names())

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            MetricsRegistry().counter("no.such_metric")

    def test_kind_mismatch_raises_typeerror(self):
        registry = MetricsRegistry()
        with pytest.raises(TypeError):
            registry.gauge("scan.windows")  # it's a counter
        with pytest.raises(TypeError):
            registry.counter("promotion.queue_depth")  # it's a gauge

    def test_snapshot_is_json_compatible(self):
        import json

        registry = MetricsRegistry()
        registry.counter("scan.windows").inc(3)
        registry.gauge("promotion.queue_depth").set(7)
        registry.histogram("fault.cit_ns").observe_many(
            np.array([1e3, 1e6, 1e9])
        )
        snap = registry.snapshot()
        round_trip = json.loads(json.dumps(snap))
        assert round_trip["counters"]["scan.windows"] == 3
        assert round_trip["histograms"]["fault.cit_ns"]["total"] == 3

    def test_histogram_edges_from_catalogue(self):
        registry = MetricsRegistry()
        hist = registry.histogram("migration.batch_pages")
        assert list(hist.edges) == list(
            METRIC_CATALOGUE["migration.batch_pages"].edges
        )
