"""Shared test fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernel.kernel import Kernel
from repro.mem.machine import MachineSpec, TieredMachine
from repro.mem.tier import dram_spec, optane_spec
from repro.sim.rng import RngStreams
from repro.vm.process import SimProcess


class StubWorkload:
    """Minimal workload satisfying the engine's interface: a fixed access
    distribution over ``n_pages`` pages."""

    name = "stub"

    def __init__(self, n_pages=64, hot_fraction=0.25, hot_weight=0.9,
                 write_fraction=0.1, delay_ns=0.0):
        self.n_pages = n_pages
        self.write_fraction = write_fraction
        self.delay_ns_per_access = delay_ns
        n_hot = max(1, int(n_pages * hot_fraction))
        if n_hot >= n_pages:
            probs = np.full(n_pages, 1.0 / n_pages)
        else:
            probs = np.full(
                n_pages, (1 - hot_weight) / (n_pages - n_hot)
            )
            probs[:n_hot] = hot_weight / n_hot
        self._probs = probs / probs.sum()

    def access_distribution(self, now_ns=0):
        return self._probs

    def advance(self, now_ns):
        """Phase hook; the stub is stationary."""


def make_machine(fast_pages=256, slow_pages=768):
    spec = MachineSpec(tiers=(dram_spec(fast_pages), optane_spec(slow_pages)))
    return TieredMachine(spec)


def make_kernel(fast_pages=256, slow_pages=768, seed=0, **kwargs):
    return Kernel(
        machine=make_machine(fast_pages, slow_pages),
        rng=RngStreams(seed),
        **kwargs,
    )


def make_process(pid=1, n_pages=64, seed=0, **workload_kwargs):
    rng = RngStreams(seed).spawn(f"proc-{pid}").get("access")
    return SimProcess(
        pid=pid,
        workload=StubWorkload(n_pages=n_pages, **workload_kwargs),
        rng=rng,
    )


@pytest.fixture
def kernel():
    return make_kernel()


@pytest.fixture
def process():
    return make_process()
