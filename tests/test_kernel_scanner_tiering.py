"""Tests for tiering-mode (slow-tier-only) scanning across policies."""

import numpy as np
import pytest

from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.policies import make_policy
from repro.sim.timeunits import SECOND
from tests.conftest import make_kernel, make_process


def attach(policy_name, **kwargs):
    kernel = make_kernel(fast_pages=64, slow_pages=512)
    process = make_process(n_pages=128)
    kernel.register_process(process)
    kernel.allocate_initial_placement()
    kernel.set_policy(
        make_policy(policy_name, scan_period_ns=SECOND,
                    scan_step_pages=128, **kwargs)
    )
    return kernel, process


@pytest.mark.parametrize("policy_name", ["linux-nb", "tpp", "chrono"])
class TestTieringScanScope:
    def test_scanner_filters_to_slow_tier(self, policy_name):
        kernel, process = attach(policy_name)
        assert kernel.scanner.config.tier_filter == SLOW_TIER

    def test_fast_pages_never_protected_by_scan(self, policy_name):
        kernel, process = attach(policy_name)
        kernel.scanner.scan_once(process, now_ns=5)
        fast = process.pages.tier == FAST_TIER
        assert not process.pages.prot_none[fast].any()

    def test_slow_pages_do_get_protected(self, policy_name):
        kernel, process = attach(policy_name)
        kernel.scanner.scan_once(process, now_ns=5)
        slow = process.pages.tier == SLOW_TIER
        # The 128-page window covers the whole space, so every slow page
        # in it is marked.
        assert process.pages.prot_none[slow].all()


class TestDcscCoversFastTier:
    def test_probes_include_fast_pages(self):
        """The scanner skips the fast tier, but DCSC's random victims
        must still cover it (the fast heat map needs samples)."""
        from repro.core.dcsc import DcscCollector, DcscConfig
        from repro.sim.rng import RngStreams

        collector = DcscCollector(
            DcscConfig(victim_fraction=0.5, min_victims_per_process=64),
            RngStreams(2).get("cover"),
        )
        process = make_process(n_pages=128)
        process.pages.tier[:64] = FAST_TIER
        collector.probe_process(process, now_ns=0)
        probed_fast = process.pages.probed & (
            process.pages.tier == FAST_TIER
        )
        assert probed_fast.any()
