"""Tests for the on-disk result cache.

Covers the keying contract (param-identical rerun hits, any parameter
change misses), corruption tolerance (a truncated entry degrades to a
recompute, the bad file is deleted and reported), the wall-time EWMA
timing store, and the ``CHRONO_NO_CACHE`` / ``--no-cache`` bypass.
"""

import json

import pytest

from repro.harness.cache import (
    TIMING_ALPHA,
    ResultCache,
    cache_disabled_by_env,
    code_fingerprint,
    content_key,
    default_cache_dir,
    timing_key,
)
from repro.obs.hub import ObsHub
from repro.harness.runner import RunSummary
from repro.harness.sweep import SweepCell, run_cell
from repro.sim.timeunits import SECOND

CELL_KWARGS = dict(
    workload="pmbench",
    workload_kwargs={"n_procs": 2, "pages_per_proc": 256},
    setup_kwargs={"duration_ns": 2 * SECOND},
)


def make_cell(policy="linux-nb", seed=0):
    return SweepCell(policy=policy, seed=seed, **CELL_KWARGS)


@pytest.fixture(autouse=True)
def local_cache_control(monkeypatch):
    """These tests drive the cache through explicit arguments; a
    ``CHRONO_NO_CACHE`` inherited from the surrounding environment (CI
    sets it for the test job) must not override them."""
    monkeypatch.delenv("CHRONO_NO_CACHE", raising=False)


def make_summary(throughput=123.0):
    return RunSummary(
        policy_name="linux-nb",
        duration_ns=SECOND,
        throughput_per_sec=throughput,
        fmar=0.05,
        latency_summary={"average": 100.0, "median": 80.0, "p99": 900.0},
        kernel_time_fraction=0.01,
        context_switches_per_sec=10.0,
        stats={"pgpromote": 1.0, "pgdemote": 2.0},
        per_process={},
    )


class TestContentKey:
    def test_stable_for_equal_descriptions(self):
        assert content_key({"a": 1}) == content_key({"a": 1})

    def test_key_order_irrelevant(self):
        assert content_key({"a": 1, "b": 2}) == content_key(
            {"b": 2, "a": 1}
        )

    def test_any_field_change_rekeys(self):
        base = make_cell()
        assert base.key() != make_cell(seed=1).key()
        assert base.key() != make_cell(policy="tpp").key()
        deeper = SweepCell(
            policy="linux-nb",
            workload="pmbench",
            workload_kwargs={"n_procs": 3, "pages_per_proc": 256},
            setup_kwargs={"duration_ns": 2 * SECOND},
        )
        assert base.key() != deeper.key()

    def test_includes_code_fingerprint(self):
        # The fingerprint digests the whole repro source tree, so the
        # key cannot collide across code versions.
        assert len(code_fingerprint()) == 64
        assert code_fingerprint() == code_fingerprint()


class TestResultCacheStore:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        summary = make_summary()
        cache.put("k", summary)
        restored = cache.get("k")
        assert restored is not None
        assert restored.cached is True
        assert restored.to_dict() == summary.to_dict()

    def test_missing_key_is_miss(self, tmp_path):
        assert ResultCache(tmp_path).get("absent") is None

    def test_truncated_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", make_summary())
        path = cache._path("k")
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get("k") is None

    def test_garbage_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache._path("k").parent.mkdir(parents=True, exist_ok=True)
        cache._path("k").write_text(json.dumps({"unexpected": 1}))
        assert cache.get("k") is None

    def test_corrupt_entry_deleted_and_reported(self, tmp_path):
        hub = ObsHub.create(trace=True, metrics=True)
        cache = ResultCache(tmp_path, obs=hub)
        cache.put("k", make_summary())
        path = cache._path("k")
        path.write_text("{not json")

        assert cache.get("k") is None
        assert not path.exists()  # the bad file cannot linger
        assert hub.snapshot()["counters"]["cache.corrupt_entries"] == 1
        [event] = [
            e
            for e in hub.tracer.events()
            if e["type"] == "cache.corrupt"
        ]
        assert event["key"] == "k"
        assert event["reason"]  # the exception class name

    def test_corrupt_entry_deleted_without_obs(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", make_summary())
        cache._path("k").write_text("[1, 2]")
        assert cache.get("k") is None
        assert not cache._path("k").exists()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", make_summary())
        cache.put("b", make_summary())
        assert cache.clear() == 2
        assert cache.get("a") is None

    def test_no_stray_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", make_summary())
        assert list(tmp_path.glob("*.tmp")) == []


class TestTimingStore:
    def test_unknown_cell_has_no_estimate(self, tmp_path):
        assert ResultCache(tmp_path).expected_wall_sec("t") is None

    def test_first_observation_recorded_verbatim(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.record_timing("t", 2.0)
        assert cache.expected_wall_sec("t") == 2.0

    def test_ewma_fold(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.record_timing("t", 2.0)
        cache.record_timing("t", 4.0)
        expected = TIMING_ALPHA * 4.0 + (1.0 - TIMING_ALPHA) * 2.0
        assert cache.expected_wall_sec("t") == pytest.approx(expected)

    def test_corrupt_timing_discarded(self, tmp_path):
        hub = ObsHub.create(trace=True, metrics=True)
        cache = ResultCache(tmp_path, obs=hub)
        cache.record_timing("t", 2.0)
        cache._timing_path("t").write_text("nope")
        assert cache.expected_wall_sec("t") is None
        assert not cache._timing_path("t").exists()
        [event] = [
            e
            for e in hub.tracer.events()
            if e["type"] == "cache.corrupt"
        ]
        assert event["reason"] == "timing"

    def test_timing_key_excludes_code_version(self):
        # Scheduling history must survive code changes: the key digests
        # only the description, unlike content_key.
        description = make_cell().description()
        assert timing_key(description) == timing_key(description)
        assert timing_key(description) != content_key(description)

    def test_clear_preserves_timings(self, tmp_path):
        # Results are invalidated wholesale; wall-time history is a
        # scheduling hint and deliberately survives.
        cache = ResultCache(tmp_path)
        cache.put("k", make_summary())
        cache.record_timing("t", 2.0)
        cache.clear()
        assert cache.get("k") is None
        assert cache.expected_wall_sec("t") == 2.0


class TestRunCellCaching:
    def test_miss_then_hit(self, tmp_path):
        cell = make_cell()
        first = run_cell(cell, cache_dir=tmp_path)
        assert first.cached is False
        second = run_cell(cell, cache_dir=tmp_path)
        assert second.cached is True
        assert second.to_dict() == first.to_dict()

    def test_param_change_misses(self, tmp_path):
        run_cell(make_cell(seed=0), cache_dir=tmp_path)
        other = run_cell(make_cell(seed=1), cache_dir=tmp_path)
        assert other.cached is False

    def test_corrupt_entry_recomputes(self, tmp_path):
        cell = make_cell()
        first = run_cell(cell, cache_dir=tmp_path)
        path = ResultCache(tmp_path)._path(cell.key())
        path.write_text("{not json")
        recomputed = run_cell(cell, cache_dir=tmp_path)
        assert recomputed.cached is False
        assert recomputed.to_dict() == first.to_dict()

    def test_use_cache_false_bypasses(self, tmp_path):
        cell = make_cell()
        run_cell(cell, cache_dir=tmp_path)
        again = run_cell(cell, cache_dir=tmp_path, use_cache=False)
        assert again.cached is False

    def test_profiled_runs_never_cached(self, tmp_path):
        cell = make_cell()
        profiled = run_cell(cell, cache_dir=tmp_path, profile=True)
        assert profiled.cached is False
        assert profiled.profile  # shares were measured
        # ...and nothing was written for a later plain run to hit.
        plain = run_cell(cell, cache_dir=tmp_path)
        assert plain.cached is False


class TestEnvironmentControls:
    def test_no_cache_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("CHRONO_NO_CACHE", "1")
        assert cache_disabled_by_env()
        cell = make_cell()
        run_cell(cell, cache_dir=tmp_path)
        hit = run_cell(cell, cache_dir=tmp_path)
        assert hit.cached is False
        assert list(tmp_path.glob("*.json")) == []

    def test_no_cache_env_zero_means_enabled(self, monkeypatch):
        monkeypatch.setenv("CHRONO_NO_CACHE", "0")
        assert not cache_disabled_by_env()

    def test_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("CHRONO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == tmp_path

    def test_cached_flag_not_in_payload(self, tmp_path):
        # "cached" is transport metadata, not part of the result.
        data = make_summary().to_dict()
        assert "cached" not in data
        restored = RunSummary.from_dict(data)
        assert restored.cached is False
