"""Tests for the report-assembly script and bonus-policy setup paths."""

import importlib.util
import pathlib

import pytest

from repro.harness.experiments import StandardSetup


def load_report_module():
    path = (
        pathlib.Path(__file__).parent.parent
        / "scripts"
        / "generate_report.py"
    )
    spec = importlib.util.spec_from_file_location("generate_report", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestReportScript:
    def test_builds_markdown(self, tmp_path, monkeypatch):
        module = load_report_module()
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig01_access_frequency.txt").write_text("TABLE-1\n")
        monkeypatch.setattr(module, "RESULTS_DIR", results)
        report = module.build_report()
        assert "# Reproduction report" in report
        assert "TABLE-1" in report
        assert "Missing results" in report  # the rest are absent

    def test_all_sections_when_present(self, tmp_path, monkeypatch):
        module = load_report_module()
        results = tmp_path / "results"
        results.mkdir()
        for stem, _ in module.SECTIONS:
            (results / f"{stem}.txt").write_text(f"table {stem}\n")
        monkeypatch.setattr(module, "RESULTS_DIR", results)
        report = module.build_report()
        assert "Missing results" not in report
        for stem, heading in module.SECTIONS:
            assert heading in report

    def test_main_writes_file(self, tmp_path, monkeypatch):
        module = load_report_module()
        results = tmp_path / "results"
        results.mkdir()
        monkeypatch.setattr(module, "RESULTS_DIR", results)
        out = tmp_path / "REPORT.md"
        assert module.main(["--output", str(out)]) == 0
        assert out.exists()

    def test_sections_cover_every_bench_result_name(self):
        """Every record_figure() name used by the benchmarks must appear
        in the report ordering."""
        module = load_report_module()
        stems = {stem for stem, _ in module.SECTIONS}
        bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
        import re

        used = set()
        for path in bench_dir.glob("test_*.py"):
            for match in re.finditer(
                r"record_figure\(\s*f?\"([a-z0-9_]+)\"", path.read_text()
            ):
                used.add(match.group(1))
            # f-string names like f"fig12_{flavor}".
            for match in re.finditer(
                r"record_figure\(\s*f\"([a-z0-9_]+)\{", path.read_text()
            ):
                prefix = match.group(1)
                used |= {s for s in stems if s.startswith(prefix)}
        unmatched = {
            name
            for name in used
            if name not in stems
        }
        assert not unmatched, unmatched


class TestBonusPolicySetup:
    def test_telescope_scaled(self):
        setup = StandardSetup()
        policy = setup.build_policy("telescope")
        assert policy.window_ns == 50_000_000

    def test_flexmem_scaled(self):
        setup = StandardSetup()
        policy = setup.build_policy("flexmem")
        assert policy.hint_fault_latency_ns == setup.tpp_hint_latency_ns
        assert policy.hp_pages == setup.hp_pages
