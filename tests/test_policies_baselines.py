"""Tests for the baseline tiering policies."""

import numpy as np
import pytest

from repro.kernel.scanner import ScanConfig
from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.policies import (
    AutoTieringPolicy,
    LinuxNUMABalancing,
    MemtisPolicy,
    MultiClockPolicy,
    TPPPolicy,
    make_policy,
    policy_names,
)
from repro.policies.base import PromotionRateLimiter
from repro.policies.autotiering import _popcount8
from repro.sim.timeunits import SECOND
from repro.vm.fault import FaultBatch
from tests.conftest import make_kernel, make_process


def attach(policy, fast_pages=64, slow_pages=512, n_pages=128):
    kernel = make_kernel(fast_pages=fast_pages, slow_pages=slow_pages)
    process = make_process(n_pages=n_pages)
    kernel.register_process(process)
    kernel.allocate_initial_placement()
    kernel.set_policy(policy)
    return kernel, process


def fault_batch(process, vpns, cits=None, now=1000):
    vpns = np.asarray(vpns, dtype=np.int64)
    if cits is None:
        cits = np.full(vpns.size, 100, dtype=np.int64)
    return FaultBatch(
        pid=process.pid,
        vpns=vpns,
        fault_ts_ns=np.full(vpns.size, now, dtype=np.int64),
        cit_ns=np.asarray(cits, dtype=np.int64),
    )


class TestRegistry:
    def test_all_names_buildable(self):
        for name in policy_names():
            policy = make_policy(name)
            assert policy.name.startswith(name.split("-")[0])

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_policy("nope")

    def test_kwargs_forwarded(self):
        policy = make_policy("linux-nb", scan_period_ns=SECOND)
        assert policy._scan_config.scan_period_ns == SECOND


class TestRateLimiter:
    def test_grant_respects_budget(self):
        kernel = make_kernel()
        limiter = PromotionRateLimiter(rate_mbps=1.0)
        limiter.bind(kernel)
        # 1 MB/s at 4 KB pages (scale 1) = ~244 pages/s.
        kernel.clock.advance(SECOND)
        granted = limiter.grant(10_000, kernel.clock.now)
        assert 240 <= granted <= 245

    def test_tokens_accumulate_capped(self):
        kernel = make_kernel()
        limiter = PromotionRateLimiter(rate_mbps=1.0)
        limiter.bind(kernel)
        kernel.clock.advance(100 * SECOND)
        granted = limiter.grant(10_000_000, kernel.clock.now)
        assert granted <= 245  # capped at one second of budget

    def test_unbound_rejected(self):
        limiter = PromotionRateLimiter(1.0)
        with pytest.raises(RuntimeError):
            limiter.grant(1, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PromotionRateLimiter(0)
        kernel = make_kernel()
        limiter = PromotionRateLimiter(1.0)
        limiter.bind(kernel)
        with pytest.raises(ValueError):
            limiter.grant(-1, 0)


class TestLinuxNB:
    def test_promotes_faulting_slow_pages(self):
        policy = LinuxNUMABalancing(scan_period_ns=SECOND)
        kernel, process = attach(policy)
        # Open fast-tier headroom (kswapd would have done this).
        fast_vpns = process.pages.pages_in_tier(FAST_TIER)[:8]
        kernel.migration.migrate(process, fast_vpns, SLOW_TIER)
        slow_vpns = process.pages.pages_in_tier(SLOW_TIER)[:4]
        kernel.clock.advance(SECOND)
        policy.on_fault(process, fault_batch(process, slow_vpns))
        assert (process.pages.tier[slow_vpns] == FAST_TIER).all()

    def test_ignores_fast_tier_faults(self):
        policy = LinuxNUMABalancing(scan_period_ns=SECOND)
        kernel, process = attach(policy)
        fast_vpns = process.pages.pages_in_tier(FAST_TIER)[:2]
        kernel.clock.advance(SECOND)
        policy.on_fault(process, fault_batch(process, fast_vpns))
        assert kernel.stats.pgpromote == 0

    def test_rate_limit_drops_excess(self):
        policy = LinuxNUMABalancing(
            scan_period_ns=SECOND, promote_rate_limit_mbps=0.01
        )
        kernel, process = attach(policy)
        fast_vpns = process.pages.pages_in_tier(FAST_TIER)[:16]
        kernel.migration.migrate(process, fast_vpns, SLOW_TIER)
        promoted_before = kernel.stats.pgpromote
        slow_vpns = process.pages.pages_in_tier(SLOW_TIER)[:50]
        kernel.clock.advance(SECOND)
        policy.on_fault(process, fault_batch(process, slow_vpns))
        assert kernel.stats.pgpromote - promoted_before <= 3
        assert kernel.stats.promotion_dropped > 0

    def test_never_reclaims_synchronously(self):
        policy = LinuxNUMABalancing(scan_period_ns=SECOND)
        kernel, process = attach(policy, fast_pages=16, n_pages=128)
        kernel.machine.fast.allocate(kernel.machine.fast.free_pages)
        slow_vpns = process.pages.pages_in_tier(SLOW_TIER)[:8]
        kernel.clock.advance(SECOND)
        policy.on_fault(process, fault_batch(process, slow_vpns))
        assert kernel.stats.pgdemote == 0


class TestAutoTiering:
    def test_lap_shift_on_scan(self):
        policy = AutoTieringPolicy(scan_period_ns=SECOND)
        kernel, process = attach(policy)
        lap = policy.lap_vector(process)
        lap[:4] = 0b0000_0001
        kernel.scanner.scan_once(process, now_ns=10)
        window = np.arange(4)  # scan starts at vpn 0
        assert (policy.lap_vector(process)[window] == 0b0000_0010).all()

    def test_fault_sets_bit(self):
        policy = AutoTieringPolicy(scan_period_ns=SECOND)
        kernel, process = attach(policy)
        kernel.clock.advance(SECOND)
        vpn = int(process.pages.pages_in_tier(SLOW_TIER)[0])
        policy.on_fault(process, fault_batch(process, [vpn]))
        assert policy.lap_vector(process)[vpn] & 1

    def test_promotion_needs_history(self):
        policy = AutoTieringPolicy(
            scan_period_ns=SECOND, promote_min_bits=2
        )
        kernel, process = attach(policy)
        kernel.clock.advance(SECOND)
        vpn = int(process.pages.pages_in_tier(SLOW_TIER)[0])
        # First fault: one LAP bit -> no promotion.
        policy.on_fault(process, fault_batch(process, [vpn]))
        assert process.pages.tier[vpn] == SLOW_TIER
        # History accumulates over a scan shift + second fault.
        lap = policy.lap_vector(process)
        lap[vpn] = 0b0000_0010
        policy.on_fault(process, fault_batch(process, [vpn]))
        assert process.pages.tier[vpn] == FAST_TIER

    def test_background_demotion_of_idle_pages(self):
        policy = AutoTieringPolicy(
            scan_period_ns=SECOND, demote_period_ns=SECOND
        )
        kernel, process = attach(policy)
        kernel.start()
        assert process.pages.count_in_tier(FAST_TIER) > 0
        kernel.advance_to(SECOND + 1)
        # All fast pages had empty LAPs -> demoted.
        assert process.pages.count_in_tier(FAST_TIER) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoTieringPolicy(promote_min_bits=0)
        with pytest.raises(ValueError):
            AutoTieringPolicy(demote_period_ns=0)

    def test_popcount(self):
        values = np.array([0, 1, 3, 0xFF, 0b1010], dtype=np.uint8)
        np.testing.assert_array_equal(
            _popcount8(values), [0, 1, 2, 8, 2]
        )


class TestMultiClock:
    def test_levels_rise_and_fall(self):
        policy = MultiClockPolicy(n_levels=4)
        kernel, process = attach(policy)
        touched = np.zeros(process.n_pages, dtype=bool)
        touched[:8] = True
        for _ in range(5):
            policy.on_lru_age(process, touched, kernel.clock.now)
        levels = policy.levels(process)
        assert (levels[:8] == 3).all()
        assert (levels[8:] == 0).all()

    def test_promotes_top_level_slow_pages(self):
        policy = MultiClockPolicy(n_levels=4, promote_level=3)
        kernel, process = attach(policy)
        slow_vpns = process.pages.pages_in_tier(SLOW_TIER)
        touched = np.zeros(process.n_pages, dtype=bool)
        touched[slow_vpns[:4]] = True
        for _ in range(4):
            policy.on_lru_age(process, touched, kernel.clock.now)
        assert (process.pages.tier[slow_vpns[:4]] == FAST_TIER).all()

    def test_demotes_bottom_level_to_make_room(self):
        policy = MultiClockPolicy(n_levels=4, promote_level=3)
        kernel, process = attach(policy, fast_pages=8, n_pages=64)
        kernel.machine.fast.allocate(kernel.machine.fast.free_pages)
        slow_vpns = process.pages.pages_in_tier(SLOW_TIER)
        touched = np.zeros(process.n_pages, dtype=bool)
        touched[slow_vpns[:4]] = True
        for _ in range(4):
            policy.on_lru_age(process, touched, kernel.clock.now)
        assert kernel.stats.pgdemote > 0
        assert kernel.stats.pgpromote > 0

    def test_no_scanner(self):
        policy = MultiClockPolicy()
        kernel, _ = attach(policy)
        assert kernel.scanner is None

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiClockPolicy(n_levels=1)
        with pytest.raises(ValueError):
            MultiClockPolicy(n_levels=4, promote_level=4)
        with pytest.raises(ValueError):
            MultiClockPolicy(migrate_batch_pages=0)


class TestTPP:
    def test_latency_gate(self):
        policy = TPPPolicy(
            scan_period_ns=SECOND, hint_fault_latency_ns=1_000
        )
        kernel, process = attach(policy)
        kernel.clock.advance(SECOND)
        slow_vpns = process.pages.pages_in_tier(SLOW_TIER)[:2]
        batch = fault_batch(
            process, slow_vpns, cits=[500, 5_000]
        )
        policy.on_fault(process, batch)
        assert process.pages.tier[slow_vpns[0]] == FAST_TIER
        assert process.pages.tier[slow_vpns[1]] == SLOW_TIER

    def test_sentinel_cit_never_promotes(self):
        policy = TPPPolicy(
            scan_period_ns=SECOND, hint_fault_latency_ns=1_000
        )
        kernel, process = attach(policy)
        kernel.clock.advance(SECOND)
        vpn = process.pages.pages_in_tier(SLOW_TIER)[:1]
        policy.on_fault(process, fault_batch(process, vpn, cits=[-1]))
        assert kernel.stats.pgpromote == 0

    def test_headroom_configured(self):
        policy = TPPPolicy(headroom_pages=10)
        kernel, _ = attach(policy, fast_pages=1024, n_pages=64)
        assert kernel.watermarks.pro_gap_pages == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            TPPPolicy(hint_fault_latency_ns=0)
        with pytest.raises(ValueError):
            TPPPolicy(headroom_pages=-1)


class TestAttachGuards:
    def test_double_attach_rejected(self):
        policy = LinuxNUMABalancing()
        kernel, _ = attach(policy)
        with pytest.raises(RuntimeError):
            policy.attach(kernel)

    def test_unattached_fault_rejected(self):
        policy = TPPPolicy()
        process = make_process()
        with pytest.raises(RuntimeError):
            policy.on_fault(process, fault_batch(process, [0]))
