"""Tests for the PEBS sampler and the Memtis-style cooling histogram."""

import numpy as np
import pytest

from repro.pebs.histogram import CoolingHistogram, bin_of
from repro.pebs.sampler import PebsConfig, PebsSampler
from repro.sim.rng import RngStreams
from repro.sim.timeunits import SECOND


@pytest.fixture
def rng():
    return RngStreams(11).get("pebs")


def make_sampler(rate=100_000.0, rng=None):
    return PebsSampler(
        PebsConfig(max_samples_per_sec=rate),
        rng or RngStreams(11).get("pebs"),
    )


class TestPebsConfig:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PebsConfig(max_samples_per_sec=0)

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            PebsConfig(sample_drain_cost_ns=-1)


class TestSampler:
    def test_budget_caps_samples(self, rng):
        sampler = make_sampler(rate=1_000, rng=rng)
        probs = np.full(100, 0.01)
        counts = sampler.sample_window(
            probs, n_accesses=1e9, window_ns=SECOND
        )
        # Budget is 1000 samples/sec * 1 sec = 1000, Poisson noise aside.
        assert 800 < counts.sum() < 1200

    def test_low_traffic_samples_all(self, rng):
        sampler = make_sampler(rate=1e9, rng=rng)
        probs = np.full(10, 0.1)
        counts = sampler.sample_window(
            probs, n_accesses=100, window_ns=SECOND
        )
        assert 50 < counts.sum() < 160  # ~100 expected

    def test_budget_share_divides(self, rng):
        sampler = make_sampler(rate=10_000, rng=rng)
        probs = np.full(50, 0.02)
        counts = sampler.sample_window(
            probs, n_accesses=1e9, window_ns=SECOND, budget_share=0.1
        )
        assert 700 < counts.sum() < 1300  # ~1000 expected

    def test_hot_pages_get_more_samples(self, rng):
        sampler = make_sampler(rng=rng)
        probs = np.array([0.9] + [0.1 / 99] * 99)
        counts = sampler.sample_window(
            probs, n_accesses=1e7, window_ns=SECOND
        )
        assert counts[0] > counts[1:].sum()

    def test_overhead_accumulates_and_drains(self, rng):
        sampler = make_sampler(rng=rng)
        probs = np.full(10, 0.1)
        sampler.sample_window(probs, n_accesses=1e6, window_ns=SECOND)
        overhead = sampler.drain_overhead_ns()
        assert overhead > 0
        assert sampler.drain_overhead_ns() == 0.0

    def test_zero_accesses(self, rng):
        sampler = make_sampler(rng=rng)
        counts = sampler.sample_window(
            np.full(4, 0.25), n_accesses=0, window_ns=SECOND
        )
        assert counts.sum() == 0

    def test_bad_budget_share(self, rng):
        sampler = make_sampler(rng=rng)
        with pytest.raises(ValueError):
            sampler.sample_window(np.full(4, 0.25), 10, SECOND, 0)

    def test_negative_accesses(self, rng):
        sampler = make_sampler(rng=rng)
        with pytest.raises(ValueError):
            sampler.sample_window(np.full(4, 0.25), -1, SECOND)


class TestDrawMany:
    """``draw_many`` must be bit-identical to sequential ``draw`` calls."""

    def _runs(self, rng, n_runs=6, n_pages=32, zero_every=3):
        runs = []
        for i in range(n_runs):
            probs = rng.random(n_pages)
            probs /= probs.sum()
            n = 0.0 if zero_every and i % zero_every == 2 else float(
                rng.integers(1, 500)
            )
            runs.append((probs, n))
        return runs

    def test_bit_identical_to_sequential_draws(self):
        setup_rng = np.random.default_rng(77)
        runs = self._runs(setup_rng)
        batched = make_sampler(rng=RngStreams(11).get("pebs"))
        sequential = make_sampler(rng=RngStreams(11).get("pebs"))

        got = batched.draw_many(runs)
        want = [
            sequential.draw(probs, n) for probs, n in runs if n > 0
        ]
        assert got.shape == (len(want), 32)
        for row, ref in zip(got, want):
            np.testing.assert_array_equal(row, ref)
        assert batched.total_samples == sequential.total_samples
        assert batched.total_overhead_ns == sequential.total_overhead_ns

    def test_rng_stream_position_matches(self):
        """After the batch the generators are at the same stream offset."""
        setup_rng = np.random.default_rng(78)
        runs = self._runs(setup_rng)
        batched_rng = RngStreams(13).get("pebs")
        sequential_rng = RngStreams(13).get("pebs")
        make_sampler(rng=batched_rng).draw_many(runs)
        sampler = make_sampler(rng=sequential_rng)
        for probs, n in runs:
            sampler.draw(probs, n)
        assert (
            batched_rng.integers(0, 2**31) == sequential_rng.integers(0, 2**31)
        )

    def test_zero_budget_runs_skip_rng(self):
        """Non-positive runs must not consume the bit stream (as draw)."""
        probs = np.full(8, 0.125)
        a = RngStreams(9).get("pebs")
        b = RngStreams(9).get("pebs")
        got = make_sampler(rng=a).draw_many(
            [(probs, 0.0), (probs, 100.0), (probs, -1.0)]
        )
        want = make_sampler(rng=b).draw(probs, 100.0)
        assert got.shape == (1, 8)
        np.testing.assert_array_equal(got[0], want)

    def test_all_empty(self):
        sampler = make_sampler()
        out = sampler.draw_many([(np.full(4, 0.25), 0.0)])
        assert out.shape == (0, 4)
        assert sampler.total_samples == 0.0
        assert sampler.draw_many([]).shape == (0, 0)


class TestBinOf:
    def test_binning(self):
        values = np.array([0.0, 0.5, 1.0, 1.9, 2.0, 3.9, 4.0, 8.0, 255.0])
        np.testing.assert_array_equal(
            bin_of(values), [0, 0, 1, 1, 2, 2, 3, 4, 8]
        )

    def test_bin_boundaries_are_powers_of_two(self):
        for i in range(1, 10):
            assert bin_of(np.array([2.0 ** (i - 1)]))[0] == i
            assert bin_of(np.array([2.0**i - 0.01]))[0] == i


class TestCoolingHistogram:
    def test_record_and_histogram(self):
        hist = CoolingHistogram(n_pages=4)
        hist.record(np.array([0.0, 1.0, 4.0, 100.0]))
        bins = hist.histogram()
        assert bins[0] == 1  # never sampled
        assert bins.sum() == 4

    def test_record_shape_mismatch(self):
        hist = CoolingHistogram(n_pages=4)
        with pytest.raises(ValueError):
            hist.record(np.zeros(5))

    def test_cooling_halves(self):
        hist = CoolingHistogram(n_pages=2, cooling_period_ns=10)
        hist.record(np.array([8.0, 2.0]))
        assert hist.maybe_cool(now_ns=10)
        np.testing.assert_array_equal(hist.counts, [4.0, 1.0])

    def test_cooling_respects_period(self):
        hist = CoolingHistogram(n_pages=2, cooling_period_ns=100)
        hist.record(np.array([8.0, 2.0]))
        assert not hist.maybe_cool(now_ns=50)
        np.testing.assert_array_equal(hist.counts, [8.0, 2.0])

    def test_hot_threshold_fills_capacity(self):
        hist = CoolingHistogram(n_pages=100, n_bins=8)
        counts = np.zeros(100)
        counts[:10] = 100.0  # bin 7 (clipped)
        counts[10:40] = 4.0  # bin 3
        counts[40:] = 0.5  # bin 0 (cold)
        hist.record(counts)
        # Capacity 10: only the hottest group classifies as hot.
        mask, _ = hist.classify(10)
        assert mask[:10].all() and not mask[10:].any()
        # Capacity 40: the warm group fits too.
        mask, _ = hist.classify(40)
        assert mask[:40].all() and not mask[40:].any()

    def test_hot_threshold_zero_capacity(self):
        hist = CoolingHistogram(n_pages=10, n_bins=4)
        hist.record(np.full(10, 100.0))
        assert hist.hot_threshold_bin(0) == 4  # nothing fits

    def test_classify_mask(self):
        hist = CoolingHistogram(n_pages=10, n_bins=8)
        counts = np.zeros(10)
        counts[:3] = 64.0
        hist.record(counts)
        mask, threshold = hist.classify(fast_capacity_pages=5)
        assert mask[:3].all()
        assert not mask[3:].any()
        assert 1 <= threshold <= 7

    def test_validation(self):
        with pytest.raises(ValueError):
            CoolingHistogram(n_pages=0)
        with pytest.raises(ValueError):
            CoolingHistogram(n_pages=1, n_bins=1)
        with pytest.raises(ValueError):
            CoolingHistogram(n_pages=1, cooling_period_ns=0)
        hist = CoolingHistogram(n_pages=4)
        with pytest.raises(ValueError):
            hist.hot_threshold_bin(-1)

    def test_cv_instability_on_small_counters(self):
        """Base-page systems spread the sample budget thin: small counters
        have higher relative variance (Section 2.4)."""
        rng = RngStreams(5).get("cv")
        large = CoolingHistogram(n_pages=100)
        small = CoolingHistogram(n_pages=100)
        large.record(rng.poisson(64.0, size=100).astype(float))
        small.record(rng.poisson(0.5, size=100).astype(float))
        assert small.coefficient_of_variation() > (
            large.coefficient_of_variation()
        )

    def test_cv_empty(self):
        assert CoolingHistogram(n_pages=4).coefficient_of_variation() == 0.0
