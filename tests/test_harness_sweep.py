"""Tests for the parallel sweep layer.

The load-bearing contract: a cell's outcome depends only on its
declarative description, never on how it was executed -- directly via
``run_experiment``, inline via ``run_cells(jobs=1)``, or in a worker
process via ``run_cells(jobs=4)`` all produce bit-identical summaries.
"""

import pytest

from repro.harness.experiments import StandardSetup, build_fleet
from repro.harness.runner import run_experiment
from repro.harness.sweep import SweepCell, default_jobs, run_cells
from repro.sim.timeunits import SECOND

DURATION_NS = 2 * SECOND
WORKLOAD_KWARGS = {"n_procs": 2, "pages_per_proc": 256}


def make_cell(policy="linux-nb", seed=0):
    return SweepCell(
        policy=policy,
        workload="pmbench",
        seed=seed,
        workload_kwargs=dict(WORKLOAD_KWARGS),
        setup_kwargs={"duration_ns": DURATION_NS},
    )


def summary_fingerprint(summary):
    """The full metric surface that determinism must preserve."""
    return (
        summary.policy_name,
        summary.throughput_per_sec,
        summary.fmar,
        summary.latency_summary,
        summary.kernel_time_fraction,
        summary.context_switches_per_sec,
        summary.stats,
    )


class TestDeterminism:
    def test_cell_matches_direct_run(self):
        cell = make_cell()
        setup = StandardSetup(seed=cell.seed, **cell.setup_kwargs)
        policy = setup.build_policy(cell.policy)
        processes = build_fleet(
            setup, cell.workload, **cell.workload_kwargs
        )
        direct = run_experiment(
            processes, policy, setup.run_config()
        ).to_summary()

        [via_cell] = run_cells([cell], use_cache=False)
        assert summary_fingerprint(via_cell) == summary_fingerprint(
            direct
        )

    def test_serial_and_parallel_identical(self):
        cells = [
            make_cell("linux-nb", seed=0),
            make_cell("tpp", seed=0),
            make_cell("linux-nb", seed=1),
            make_cell("tpp", seed=1),
        ]
        serial = run_cells(cells, jobs=1, use_cache=False)
        parallel = run_cells(cells, jobs=4, use_cache=False)
        assert [summary_fingerprint(s) for s in serial] == [
            summary_fingerprint(s) for s in parallel
        ]

    def test_different_seeds_differ(self):
        # Needs a working set larger than the fast tier: a fleet that
        # fits in DRAM entirely is seed-insensitive by construction.
        cells = [
            SweepCell(
                policy="linux-nb",
                workload="pmbench",
                seed=seed,
                workload_kwargs={"n_procs": 4, "pages_per_proc": 2048},
                setup_kwargs={"duration_ns": DURATION_NS},
            )
            for seed in (0, 1)
        ]
        a, b = run_cells(cells, use_cache=False)
        assert summary_fingerprint(a) != summary_fingerprint(b)


class TestOrderingAndValidation:
    def test_results_in_submission_order(self):
        cells = [make_cell("tpp"), make_cell("linux-nb")]
        summaries = run_cells(cells, jobs=2, use_cache=False)
        assert [s.policy_name for s in summaries] == [
            "tpp",
            "linux-nb",
        ]

    def test_empty_grid(self):
        assert run_cells([], jobs=4) == []

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_cells([make_cell()], jobs=0)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestSweepCell:
    def test_cell_is_hashable_and_keyed(self):
        cell = make_cell()
        assert cell.key() == make_cell().key()
        assert cell.key() != make_cell(seed=1).key()

    def test_label_not_hashed(self):
        plain = make_cell()
        tagged = SweepCell(
            policy=plain.policy,
            workload=plain.workload,
            seed=plain.seed,
            workload_kwargs=dict(WORKLOAD_KWARGS),
            setup_kwargs={"duration_ns": DURATION_NS},
            label="fig06a",
        )
        assert tagged.key() == plain.key()
        assert "label" not in tagged.description()

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="pmbench"):
            run_cells(
                [SweepCell(policy="linux-nb", workload="nope")],
                use_cache=False,
            )
