"""Tests for the fleet-scale sweep layer.

The load-bearing contract: a cell's outcome depends only on its
declarative description, never on how it was executed -- directly via
``run_experiment``, inline via ``run_cells(jobs=1)``, in a warm worker
via ``run_cells(jobs=4)``, over shared-memory tables or the pickle
fallback, streamed out of order or reassembled -- all produce
bit-identical summaries.
"""

import os

import pytest

from repro.harness.experiments import StandardSetup, build_fleet
from repro.harness.runner import run_experiment
from repro.harness.sweep import (
    MAX_DEFAULT_JOBS,
    SweepCell,
    clear_memory_cache,
    default_jobs,
    iter_cells,
    run_cells,
)
from repro.obs.hub import ObsHub
from repro.sim.timeunits import SECOND
from repro.workloads.base import reset_table_cache, table_cache_stats

DURATION_NS = 2 * SECOND
WORKLOAD_KWARGS = {"n_procs": 2, "pages_per_proc": 256}


@pytest.fixture(autouse=True)
def isolate_caches(monkeypatch):
    """Each test sees empty in-process caches and local cache control.

    ``CHRONO_NO_CACHE`` from the surrounding environment (CI sets it)
    must not leak in: these tests pass explicit ``use_cache`` /
    ``cache_dir`` arguments and assert on cache behaviour.
    """
    monkeypatch.delenv("CHRONO_NO_CACHE", raising=False)
    clear_memory_cache()
    reset_table_cache()
    yield
    clear_memory_cache()
    reset_table_cache()


def make_cell(policy="linux-nb", seed=0):
    return SweepCell(
        policy=policy,
        workload="pmbench",
        seed=seed,
        workload_kwargs=dict(WORKLOAD_KWARGS),
        setup_kwargs={"duration_ns": DURATION_NS},
    )


def summary_fingerprint(summary):
    """The full metric surface that determinism must preserve."""
    return (
        summary.policy_name,
        summary.throughput_per_sec,
        summary.fmar,
        summary.latency_summary,
        summary.kernel_time_fraction,
        summary.context_switches_per_sec,
        summary.stats,
    )


class TestDeterminism:
    def test_cell_matches_direct_run(self):
        cell = make_cell()
        setup = StandardSetup(seed=cell.seed, **cell.setup_kwargs)
        policy = setup.build_policy(cell.policy)
        processes = build_fleet(
            setup, cell.workload, **cell.workload_kwargs
        )
        direct = run_experiment(
            processes, policy, setup.run_config()
        ).to_summary()

        [via_cell] = run_cells([cell], use_cache=False)
        assert summary_fingerprint(via_cell) == summary_fingerprint(
            direct
        )

    def test_serial_and_parallel_identical(self):
        cells = [
            make_cell("linux-nb", seed=0),
            make_cell("tpp", seed=0),
            make_cell("linux-nb", seed=1),
            make_cell("tpp", seed=1),
        ]
        serial = run_cells(cells, jobs=1, use_cache=False)
        parallel = run_cells(cells, jobs=4, use_cache=False)
        assert [summary_fingerprint(s) for s in serial] == [
            summary_fingerprint(s) for s in parallel
        ]

    def test_different_seeds_differ(self):
        # Needs a working set larger than the fast tier: a fleet that
        # fits in DRAM entirely is seed-insensitive by construction.
        cells = [
            SweepCell(
                policy="linux-nb",
                workload="pmbench",
                seed=seed,
                workload_kwargs={"n_procs": 4, "pages_per_proc": 2048},
                setup_kwargs={"duration_ns": DURATION_NS},
            )
            for seed in (0, 1)
        ]
        a, b = run_cells(cells, use_cache=False)
        assert summary_fingerprint(a) != summary_fingerprint(b)


class TestOrderingAndValidation:
    def test_results_in_submission_order(self):
        cells = [make_cell("tpp"), make_cell("linux-nb")]
        summaries = run_cells(cells, jobs=2, use_cache=False)
        assert [s.policy_name for s in summaries] == [
            "tpp",
            "linux-nb",
        ]

    def test_empty_grid(self):
        assert run_cells([], jobs=4) == []

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_cells([make_cell()], jobs=0)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestSweepCell:
    def test_cell_is_hashable_and_keyed(self):
        cell = make_cell()
        assert cell.key() == make_cell().key()
        assert cell.key() != make_cell(seed=1).key()

    def test_label_not_hashed(self):
        plain = make_cell()
        tagged = SweepCell(
            policy=plain.policy,
            workload=plain.workload,
            seed=plain.seed,
            workload_kwargs=dict(WORKLOAD_KWARGS),
            setup_kwargs={"duration_ns": DURATION_NS},
            label="fig06a",
        )
        assert tagged.key() == plain.key()
        assert "label" not in tagged.description()

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="pmbench"):
            run_cells(
                [SweepCell(policy="linux-nb", workload="nope")],
                use_cache=False,
            )


class TestSharedTables:
    def test_shm_and_pickle_transports_identical(self, monkeypatch):
        # Force every array through a shared-memory segment regardless
        # of size, and compare against the no-sharing path and serial.
        cells = [
            make_cell("linux-nb", seed=0),
            make_cell("tpp", seed=0),
            make_cell("linux-nb", seed=1),
            make_cell("tpp", seed=1),
        ]
        serial = run_cells(cells, jobs=1, use_cache=False)

        monkeypatch.setenv("CHRONO_SHM_MIN_BYTES", "0")
        shared = run_cells(
            cells, jobs=2, use_cache=False, share_tables=True
        )
        unshared = run_cells(
            cells, jobs=2, use_cache=False, share_tables=False
        )
        expected = [summary_fingerprint(s) for s in serial]
        assert [summary_fingerprint(s) for s in shared] == expected
        assert [summary_fingerprint(s) for s in unshared] == expected

    def test_no_shm_kill_switch_falls_back_identically(self, monkeypatch):
        """``CHRONO_NO_SHM=1`` with table sharing requested must fall
        back to the pickle transport (arrays inline in the manifest)
        and reproduce the shared-memory results byte for byte."""
        cells = [
            make_cell("linux-nb", seed=0),
            make_cell("tpp", seed=0),
        ]
        monkeypatch.setenv("CHRONO_SHM_MIN_BYTES", "0")
        shared = run_cells(
            cells, jobs=2, use_cache=False, share_tables=True
        )
        monkeypatch.setenv("CHRONO_NO_SHM", "1")
        fallback = run_cells(
            cells, jobs=2, use_cache=False, share_tables=True
        )
        assert [summary_fingerprint(s) for s in fallback] == [
            summary_fingerprint(s) for s in shared
        ]

    def test_warm_run_reuses_tables(self):
        # Four cells over the same fleet: the distribution compiles
        # once and every later cell is a table-cache hit.
        cells = [
            make_cell(policy)
            for policy in ("linux-nb", "tpp", "memtis", "chrono")
        ]
        run_cells(cells, jobs=1, use_cache=False)
        stats = table_cache_stats()
        assert stats["builds"] == 1
        assert stats["hits"] >= len(cells) - 1


class TestStreaming:
    def test_iter_cells_matches_run_cells(self):
        cells = [
            make_cell("linux-nb", seed=0),
            make_cell("tpp", seed=0),
            make_cell("linux-nb", seed=1),
        ]
        expected = [
            summary_fingerprint(s)
            for s in run_cells(cells, jobs=1, use_cache=False)
        ]
        # Consume the stream in completion order (whatever it is) and
        # reassemble by index, as a progress-displaying caller would.
        results = list(iter_cells(cells, jobs=2, use_cache=False))
        assert sorted(r.index for r in results) == [0, 1, 2]
        reassembled = [None] * len(cells)
        for result in results:
            reassembled[result.index] = result.summary
        assert [
            summary_fingerprint(s) for s in reassembled
        ] == expected
        assert all(r.source == "run" for r in results)

    def test_single_flight_dedup(self):
        # Identical descriptions coalesce onto one execution; distinct
        # ones do not.
        cells = [make_cell(), make_cell(), make_cell("tpp")]
        results = list(iter_cells(cells, jobs=1, use_cache=False))
        sources = {r.index: r.source for r in results}
        assert sorted(sources.values()) == ["dedup", "run", "run"]
        by_index = {r.index: r.summary for r in results}
        assert summary_fingerprint(by_index[0]) == summary_fingerprint(
            by_index[1]
        )
        # Clones must not alias the leader's summary object.
        assert by_index[0] is not by_index[1]

    def test_profile_never_coalesced(self):
        cells = [make_cell(), make_cell()]
        results = list(
            iter_cells(cells, jobs=1, use_cache=False, profile=True)
        )
        assert [r.source for r in results] == ["run", "run"]
        assert all(r.summary.profile for r in results)


class TestCacheLayers:
    def test_disk_then_memory_hits(self, tmp_path):
        cells = [make_cell()]
        [first] = list(iter_cells(cells, cache_dir=tmp_path))
        assert first.source == "run"

        clear_memory_cache()
        [second] = list(iter_cells(cells, cache_dir=tmp_path))
        assert second.source == "disk"

        # The disk hit primed the memory LRU: delete the disk entry
        # and the next lookup is still served, now from memory.
        for path in tmp_path.glob("*.json"):
            path.unlink()
        [third] = list(iter_cells(cells, cache_dir=tmp_path))
        assert third.source == "memory"
        assert summary_fingerprint(third.summary) == summary_fingerprint(
            first.summary
        )

    def test_obs_counters_and_events(self, tmp_path):
        hub = ObsHub.create(trace=True, metrics=True)
        cells = [make_cell(), make_cell()]
        list(iter_cells(cells, cache_dir=tmp_path, obs=hub))
        list(iter_cells(cells, cache_dir=tmp_path, obs=hub))
        counters = hub.snapshot()["counters"]
        assert counters["sweep.cells_run"] == 1
        assert counters["sweep.dedup_hits"] == 1
        assert counters["sweep.memory_hits"] == 2
        events = [
            e for e in hub.tracer.events() if e["type"] == "sweep.cell"
        ]
        assert len(events) == 4
        assert {e["source"] for e in events} == {
            "run", "dedup", "memory",
        }


class TestDefaultJobs:
    def test_clamped_to_max(self, monkeypatch):
        monkeypatch.setattr(
            os, "process_cpu_count", lambda: 64, raising=False
        )
        assert default_jobs() == MAX_DEFAULT_JOBS

    def test_small_host_uses_all_cpus(self, monkeypatch):
        monkeypatch.setattr(
            os, "process_cpu_count", lambda: 4, raising=False
        )
        assert default_jobs() == 4

    def test_affinity_mask_respected(self, monkeypatch):
        # Without process_cpu_count (pre-3.13), the scheduler affinity
        # mask -- the container/cgroup budget -- wins over cpu_count.
        monkeypatch.delattr(os, "process_cpu_count", raising=False)
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 1, 2},
            raising=False,
        )
        assert default_jobs() == 3
