"""Tests for the workload interface and TraceWorkload."""

import numpy as np
import pytest

from repro.workloads.base import TraceWorkload, Workload


class TestValidation:
    def test_rejects_empty_working_set(self):
        with pytest.raises(ValueError):
            TraceWorkload([(10, np.ones(0))])

    def test_rejects_bad_write_fraction(self):
        with pytest.raises(ValueError):
            TraceWorkload([(10, np.ones(4))], write_fraction=1.5)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            TraceWorkload([(10, np.ones(4))], delay_ns_per_access=-1)


class TestTraceWorkload:
    def test_single_phase_is_stationary(self):
        workload = TraceWorkload([(10, np.array([1.0, 3.0]))])
        probs = workload.access_distribution()
        np.testing.assert_allclose(probs, [0.25, 0.75])
        workload.advance(1_000_000)
        np.testing.assert_allclose(
            workload.access_distribution(), [0.25, 0.75]
        )

    def test_phases_cycle(self):
        workload = TraceWorkload(
            [
                (100, np.array([1.0, 0.0])),
                (100, np.array([0.0, 1.0])),
            ]
        )
        np.testing.assert_allclose(
            workload.access_distribution(now_ns=50), [1.0, 0.0]
        )
        np.testing.assert_allclose(
            workload.access_distribution(now_ns=150), [0.0, 1.0]
        )
        # Wraps around after the full cycle.
        np.testing.assert_allclose(
            workload.access_distribution(now_ns=250), [1.0, 0.0]
        )

    def test_advance_changes_current_phase(self):
        workload = TraceWorkload(
            [(100, np.array([1.0, 0.0])), (100, np.array([0.0, 1.0]))]
        )
        workload.advance(150)
        np.testing.assert_allclose(
            workload.access_distribution(), [0.0, 1.0]
        )

    def test_rejects_empty_phases(self):
        with pytest.raises(ValueError):
            TraceWorkload([])

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            TraceWorkload([(0, np.ones(4))])

    def test_rejects_mismatched_pages(self):
        with pytest.raises(ValueError):
            TraceWorkload([(10, np.ones(4)), (10, np.ones(5))])

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            TraceWorkload([(10, np.zeros(4))])


class TestHotPageMask:
    def test_top_fraction_selected(self):
        weights = np.array([10.0, 1.0, 1.0, 5.0])
        workload = TraceWorkload([(10, weights)])
        mask = workload.hot_page_mask(hot_fraction=0.5)
        np.testing.assert_array_equal(mask, [True, False, False, True])

    def test_at_least_one_hot_page(self):
        workload = TraceWorkload([(10, np.ones(100))])
        assert workload.hot_page_mask(hot_fraction=0.001).sum() == 1

    def test_bad_fraction(self):
        workload = TraceWorkload([(10, np.ones(4))])
        with pytest.raises(ValueError):
            workload.hot_page_mask(0)
