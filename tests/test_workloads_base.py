"""Tests for the workload interface, TraceWorkload, and table cache."""

import numpy as np
import pytest

from repro.workloads.base import (
    TABLE_CACHE_CAPACITY,
    TraceWorkload,
    Workload,
    cached_tables,
    reset_table_cache,
    seed_tables,
    snapshot_tables,
    table_cache_stats,
    table_key,
)


class TestValidation:
    def test_rejects_empty_working_set(self):
        with pytest.raises(ValueError):
            TraceWorkload([(10, np.ones(0))])

    def test_rejects_bad_write_fraction(self):
        with pytest.raises(ValueError):
            TraceWorkload([(10, np.ones(4))], write_fraction=1.5)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            TraceWorkload([(10, np.ones(4))], delay_ns_per_access=-1)


class TestTraceWorkload:
    def test_single_phase_is_stationary(self):
        workload = TraceWorkload([(10, np.array([1.0, 3.0]))])
        probs = workload.access_distribution()
        np.testing.assert_allclose(probs, [0.25, 0.75])
        workload.advance(1_000_000)
        np.testing.assert_allclose(
            workload.access_distribution(), [0.25, 0.75]
        )

    def test_phases_cycle(self):
        workload = TraceWorkload(
            [
                (100, np.array([1.0, 0.0])),
                (100, np.array([0.0, 1.0])),
            ]
        )
        np.testing.assert_allclose(
            workload.access_distribution(now_ns=50), [1.0, 0.0]
        )
        np.testing.assert_allclose(
            workload.access_distribution(now_ns=150), [0.0, 1.0]
        )
        # Wraps around after the full cycle.
        np.testing.assert_allclose(
            workload.access_distribution(now_ns=250), [1.0, 0.0]
        )

    def test_advance_changes_current_phase(self):
        workload = TraceWorkload(
            [(100, np.array([1.0, 0.0])), (100, np.array([0.0, 1.0]))]
        )
        workload.advance(150)
        np.testing.assert_allclose(
            workload.access_distribution(), [0.0, 1.0]
        )

    def test_rejects_empty_phases(self):
        with pytest.raises(ValueError):
            TraceWorkload([])

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            TraceWorkload([(0, np.ones(4))])

    def test_rejects_mismatched_pages(self):
        with pytest.raises(ValueError):
            TraceWorkload([(10, np.ones(4)), (10, np.ones(5))])

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            TraceWorkload([(10, np.zeros(4))])


class TestHotPageMask:
    def test_top_fraction_selected(self):
        weights = np.array([10.0, 1.0, 1.0, 5.0])
        workload = TraceWorkload([(10, weights)])
        mask = workload.hot_page_mask(hot_fraction=0.5)
        np.testing.assert_array_equal(mask, [True, False, False, True])

    def test_at_least_one_hot_page(self):
        workload = TraceWorkload([(10, np.ones(100))])
        assert workload.hot_page_mask(hot_fraction=0.001).sum() == 1

    def test_bad_fraction(self):
        workload = TraceWorkload([(10, np.ones(4))])
        with pytest.raises(ValueError):
            workload.hot_page_mask(0)


class TestTableCache:
    @pytest.fixture(autouse=True)
    def clean_cache(self):
        reset_table_cache()
        yield
        reset_table_cache()

    def test_build_once_then_hit(self):
        key = table_key("fake", n=4)
        calls = []

        def builder():
            calls.append(1)
            return {"probs": np.ones(4) / 4}

        first = cached_tables(key, builder)
        second = cached_tables(key, builder)
        assert len(calls) == 1
        assert first["probs"] is second["probs"]  # shared, not copied
        stats = table_cache_stats()
        assert stats["builds"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1

    def test_key_includes_only_named_params(self):
        assert table_key("w", a=1, b=2) == table_key("w", b=2, a=1)
        assert table_key("w", a=1) != table_key("w", a=2)
        assert table_key("w", a=1) != table_key("v", a=1)

    def test_tables_frozen_read_only(self):
        tables = cached_tables(
            table_key("fake", n=2), lambda: {"x": np.zeros(2)}
        )
        assert not tables["x"].flags.writeable
        with pytest.raises(ValueError):
            tables["x"][0] = 1.0

    def test_lru_eviction(self):
        for n in range(TABLE_CACHE_CAPACITY + 1):
            cached_tables(
                table_key("fake", n=n), lambda: {"x": np.zeros(1)}
            )
        assert table_cache_stats()["entries"] == TABLE_CACHE_CAPACITY
        # The oldest entry (n=0) was evicted and rebuilds.
        calls = []
        cached_tables(
            table_key("fake", n=0),
            lambda: calls.append(1) or {"x": np.zeros(1)},
        )
        assert calls == [1]

    def test_seed_and_snapshot_roundtrip(self):
        key = table_key("fake", n=8)
        arrays = {"probs": np.arange(8.0)}
        seed_tables({key: arrays})
        assert table_cache_stats()["seeded"] == 1

        snapshot = snapshot_tables()
        assert set(snapshot) == {key}
        np.testing.assert_array_equal(
            snapshot[key]["probs"], arrays["probs"]
        )
        # Seeded entries serve as hits without ever building.
        served = cached_tables(key, lambda: pytest.fail("rebuilt"))
        assert not served["probs"].flags.writeable

    def test_snapshot_min_bytes_filter(self):
        seed_tables({
            table_key("small"): {"x": np.zeros(2)},
            table_key("large"): {"x": np.zeros(1024)},
        })
        assert len(snapshot_tables()) == 2
        filtered = snapshot_tables(min_bytes=1024)
        assert set(filtered) == {table_key("large")}
