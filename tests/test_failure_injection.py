"""Failure-injection and extreme-configuration tests.

The simulator must degrade gracefully: exhausted tiers, kernel-time
storms, single-page processes, and stale queue entries are all situations
a long experiment can reach.
"""

import numpy as np
import pytest

from repro.harness.engine import QuantumEngine
from repro.harness.experiments import StandardSetup, pmbench_processes
from repro.harness.runner import run_experiment
from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.sim.timeunits import MILLISECOND, SECOND
from tests.conftest import make_kernel, make_process


class TestExhaustedTiers:
    def test_slow_tier_full_blocks_demotion_not_run(self):
        """With no slow-tier headroom the run completes; demotions are
        simply impossible."""
        kernel = make_kernel(fast_pages=128, slow_pages=128)
        process = make_process(n_pages=250)
        kernel.register_process(process)
        kernel.allocate_initial_placement()
        kernel.set_policy(
            __import__("repro.policies", fromlist=["make_policy"])
            .make_policy("linux-nb", scan_period_ns=SECOND,
                         scan_step_pages=64)
        )
        engine = QuantumEngine(kernel, quantum_ns=20 * MILLISECOND)
        engine.run(2 * SECOND)
        assert process.stats.accesses > 0

    def test_promotion_into_full_fast_tier_drops(self):
        kernel = make_kernel(fast_pages=16, slow_pages=256)
        process = make_process(n_pages=64)
        kernel.register_process(process)
        kernel.machine.fast.allocate(16)
        process.pages.tier[:16] = FAST_TIER
        kernel.machine.slow.allocate(48)
        moved = kernel.migration.promote(process, np.arange(16, 32))
        assert moved.size == 0
        assert kernel.stats.promotion_dropped == 16


class TestKernelStorms:
    def test_overcharged_process_still_terminates(self):
        kernel = make_kernel()
        process = make_process(n_pages=64)
        kernel.register_process(process)
        kernel.allocate_initial_placement()
        # A pathological charge: many quanta worth of kernel time.
        process.charge_kernel(5 * SECOND)
        engine = QuantumEngine(kernel, quantum_ns=50 * MILLISECOND)
        engine.run(SECOND)
        assert process.stats.accesses == 0  # fully starved ...
        assert process.stats.kernel_time_ns > 0  # ... by kernel work
        assert process.pending_kernel_ns > 0  # still owes time

    def test_starved_process_recovers(self):
        kernel = make_kernel()
        process = make_process(n_pages=64)
        kernel.register_process(process)
        kernel.allocate_initial_placement()
        process.charge_kernel(float(SECOND // 2))
        engine = QuantumEngine(kernel, quantum_ns=50 * MILLISECOND)
        engine.run(2 * SECOND)
        assert process.pending_kernel_ns == 0
        assert process.stats.accesses > 0


class TestDegenerateShapes:
    def test_single_page_process(self):
        kernel = make_kernel()
        process = make_process(n_pages=1)
        kernel.register_process(process)
        kernel.allocate_initial_placement()
        engine = QuantumEngine(kernel, quantum_ns=50 * MILLISECOND)
        engine.run(SECOND)
        assert process.stats.accesses > 0

    def test_single_page_under_chrono(self):
        from repro.policies import make_policy

        kernel = make_kernel()
        process = make_process(n_pages=1)
        kernel.register_process(process)
        kernel.allocate_initial_placement()
        kernel.set_policy(
            make_policy(
                "chrono", scan_period_ns=SECOND, scan_step_pages=16,
                tune_period_ns=SECOND,
            )
        )
        engine = QuantumEngine(kernel, quantum_ns=50 * MILLISECOND)
        engine.run(2 * SECOND)
        assert process.stats.accesses > 0

    def test_tiny_machine_oversubscription_error_is_clear(self):
        kernel = make_kernel(fast_pages=4, slow_pages=4)
        kernel.register_process(make_process(n_pages=64))
        with pytest.raises(MemoryError):
            kernel.allocate_initial_placement()


class TestStaleQueueEntries:
    def test_queued_page_demoted_before_drain(self):
        """A queued promotion whose page moved meanwhile must not break
        the drain (it is simply promoted back or skipped)."""
        from repro.core.promotion import PromotionQueue

        kernel = make_kernel(fast_pages=64, slow_pages=256)
        process = make_process(n_pages=64)
        kernel.register_process(process)
        kernel.machine.slow.allocate(64)
        queue = PromotionQueue(1000.0)
        queue.enqueue(process, np.array([1, 2, 3]))
        # Page 2 gets promoted through another path first.
        kernel.migration.promote(process, np.array([2]))
        for proc, vpns in queue.drain(SECOND):
            moved = kernel.migration.promote(proc, vpns)
        # Pages 1 and 3 moved; 2 was already there (skipped silently).
        assert process.pages.tier[1] == FAST_TIER
        assert process.pages.tier[3] == FAST_TIER
        assert kernel.stats.pgpromote == 3


class TestDcscSaturation:
    def test_all_pages_probed_is_stable(self):
        from repro.core.dcsc import DcscCollector, DcscConfig
        from repro.sim.rng import RngStreams

        collector = DcscCollector(
            DcscConfig(victim_fraction=0.9, min_victims_per_process=64),
            RngStreams(1).get("sat"),
        )
        process = make_process(n_pages=64)
        for tick in range(4):
            collector.probe_process(process, now_ns=tick * 1000)
        assert process.pages.probed.sum() <= 64

    def test_seeded_full_runs_do_not_drift(self):
        """Two identical seeded runs with every subsystem active must be
        bit-identical (regression guard for hidden global state)."""
        def once():
            setup = StandardSetup(
                fast_pages=256, slow_pages=2048,
                duration_ns=4 * SECOND, page_scale=8,
            )
            return run_experiment(
                pmbench_processes(setup, n_procs=2, pages_per_proc=512),
                setup.build_policy("chrono"),
                setup.run_config(),
            ).stats

        assert once() == once()
