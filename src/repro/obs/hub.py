"""The observability hub wiring tracer and metrics to the kernel.

A :class:`ObsHub` bundles an optional :class:`~repro.obs.trace.Tracer`
and an optional :class:`~repro.obs.metrics.MetricsRegistry` behind one
handle that instrumented subsystems reach through ``kernel.obs``.

The zero-overhead-when-disabled contract mirrors the profiler's:
``kernel.obs`` is ``None`` by default and every instrumentation site is
guarded by a single ``is None`` check, so an unobserved run executes no
observability code at all.  When a hub *is* attached, each of its
helpers degrades to a cheap no-op for the half that is absent (metrics
updates with no registry, event emission with no tracer), so either
facility can be enabled alone.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Any, Dict, Optional, Union

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class ObsHub:
    """One handle over structured tracing and the metrics registry."""

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        """Wrap an optional tracer and an optional metrics registry."""
        self.tracer = tracer
        self.metrics = metrics

    @classmethod
    def create(
        cls,
        trace_sink: Optional[Union[str, Path, IO[str]]] = None,
        trace: bool = False,
        metrics: bool = True,
        ring_capacity: int = 65_536,
    ) -> "ObsHub":
        """Build a hub from simple on/off choices.

        Args:
            trace_sink: stream events to this JSONL path/file object
                (implies tracing).
            trace: collect events in the in-memory ring even without a
                sink.
            metrics: maintain the metrics registry.
            ring_capacity: ring size when tracing without a sink.
        """
        tracer = None
        if trace_sink is not None or trace:
            tracer = Tracer(sink=trace_sink, ring_capacity=ring_capacity)
        registry = MetricsRegistry() if metrics else None
        return cls(tracer=tracer, metrics=registry)

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------
    def emit(self, type_: str, t: int, **fields: Any) -> None:
        """Emit one trace event (no-op without a tracer)."""
        if self.tracer is not None:
            self.tracer.emit(type_, t, **fields)

    # ------------------------------------------------------------------
    # Metric updates (no-ops without a registry)
    # ------------------------------------------------------------------
    def inc(self, name: str, n: float = 1.0) -> None:
        """Increment a catalogued counter."""
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a catalogued gauge."""
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float, weight: float = 1.0) -> None:
        """Record one histogram observation."""
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value, weight)

    def observe_many(self, name: str, values: np.ndarray) -> None:
        """Record a batch of histogram observations."""
        if self.metrics is not None:
            self.metrics.histogram(name).observe_many(values)

    # ------------------------------------------------------------------
    def snapshot(self) -> Optional[Dict[str, Any]]:
        """Return the metrics snapshot, or ``None`` without a registry."""
        if self.metrics is None:
            return None
        return self.metrics.snapshot()

    def close(self) -> None:
        """Flush and close the tracer sink, if any."""
        if self.tracer is not None:
            self.tracer.close()
