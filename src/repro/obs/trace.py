"""The ring-buffered event tracer and its JSONL sink.

:class:`Tracer` is the in-process event collector.  Emission is a dict
build plus a deque append -- no validation, no serialization -- so
tracing costs little even at full event volume, and the simulator pays
*nothing* when no tracer is attached (every instrumentation site is a
single ``kernel.obs is None`` check; see :mod:`repro.obs.hub`).

Two retention modes:

* **ring** (default, no sink): the newest ``ring_capacity`` events are
  kept in memory, older ones are dropped and counted -- the mode for
  programmatic inspection and tests;
* **stream** (``sink`` given): events are appended to a JSONL file,
  flushing every ``flush_every`` events, so arbitrarily long runs trace
  with bounded memory.  Numpy payloads are converted to JSON lists at
  flush time, off the emission hot path.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Any, Deque, Dict, List, Optional, Union

import numpy as np

from repro.obs.events import EVENT_SCHEMA


def _jsonify(value: Any) -> Any:
    """Convert numpy payload values to plain JSON-compatible types."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


class Tracer:
    """Collect structured trace events in a ring or stream them to JSONL."""

    def __init__(
        self,
        sink: Optional[Union[str, Path, IO[str]]] = None,
        ring_capacity: int = 65_536,
        flush_every: int = 8_192,
        strict: bool = False,
    ) -> None:
        """Create a tracer.

        Args:
            sink: a path or text file object to stream JSONL to; ``None``
                keeps events in the in-memory ring instead.
            ring_capacity: events retained in ring mode.
            flush_every: buffered events between stream flushes.
            strict: validate each event type against the catalogue at
                emission time (tests); production emitters are trusted.
        """
        if ring_capacity <= 0:
            raise ValueError("ring capacity must be positive")
        if flush_every <= 0:
            raise ValueError("flush threshold must be positive")
        self._sink = sink
        self._file: Optional[IO[str]] = None
        self._owns_file = False
        self.flush_every = int(flush_every)
        self.strict = bool(strict)
        self.emitted = 0
        self.dropped = 0
        self._buffer: Deque[Dict[str, Any]] = deque(
            maxlen=None if sink is not None else int(ring_capacity)
        )
        self._ring_capacity = int(ring_capacity)

    # ------------------------------------------------------------------
    def emit(self, type_: str, t: int, **fields: Any) -> None:
        """Record one event (the hot path)."""
        if self.strict and type_ not in EVENT_SCHEMA:
            raise KeyError(f"event type {type_!r} is not in the catalogue")
        buffer = self._buffer
        if buffer.maxlen is not None and len(buffer) == buffer.maxlen:
            self.dropped += 1
        event = {"type": type_, "t": int(t)}
        event.update(fields)
        buffer.append(event)
        self.emitted += 1
        if self._sink is not None and len(buffer) >= self.flush_every:
            self.flush()

    def events(self) -> List[Dict[str, Any]]:
        """Return the retained events (ring contents, oldest first)."""
        return list(self._buffer)

    # ------------------------------------------------------------------
    def _open(self) -> IO[str]:
        if self._file is None:
            if hasattr(self._sink, "write"):
                self._file = self._sink  # type: ignore[assignment]
            else:
                self._file = open(self._sink, "w", encoding="utf-8")
                self._owns_file = True
        return self._file

    def flush(self) -> None:
        """Write buffered events to the sink (no-op in ring mode)."""
        if self._sink is None or not self._buffer:
            return
        out = self._open()
        while self._buffer:
            event = self._buffer.popleft()
            out.write(
                json.dumps({k: _jsonify(v) for k, v in event.items()})
                + "\n"
            )
        out.flush()

    def close(self) -> None:
        """Flush and release the sink file (idempotent)."""
        self.flush()
        if self._file is not None and self._owns_file:
            self._file.close()
            self._file = None
            self._owns_file = False

    def __enter__(self) -> "Tracer":
        """Return self (context-manager support)."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Close the tracer on context exit."""
        self.close()

    def __len__(self) -> int:
        """Return the number of currently buffered events."""
        return len(self._buffer)
