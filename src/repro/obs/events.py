"""The structured trace-event catalogue.

Every event the simulator can emit is declared here, in
:data:`EVENT_SCHEMA`, as an :class:`EventSpec`: its name, the module that
emits it, a one-line description, and the name/unit/description of every
payload field.  The catalogue is the single source of truth for the event
vocabulary -- ``docs/OBSERVABILITY.md`` documents it, and
``tests/test_docs_reference.py`` fails if the two ever drift apart.

Event envelope
--------------

Every event record is a flat mapping with two envelope keys:

* ``type`` -- the event name, one of :data:`EVENT_SCHEMA`'s keys;
* ``t`` -- the simulated timestamp in nanoseconds;

plus the per-type payload fields listed in the spec.  Array-valued fields
(``vpns``, ``cit_ns``, ...) hold numpy arrays in memory and JSON lists on
disk; :mod:`repro.obs.trace` performs the conversion when a trace is
written out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class FieldSpec:
    """One payload field of a trace event."""

    #: measurement unit (``ns``, ``pages``, ``count``, ``flag``, ...)
    unit: str
    #: what the field means
    description: str


@dataclass(frozen=True)
class EventSpec:
    """Declaration of one trace-event type."""

    #: the event name (dotted, ``subsystem.action``)
    name: str
    #: the module that emits the event
    module: str
    #: one-line description of when the event fires
    description: str
    #: payload fields beyond the ``type``/``t`` envelope
    fields: Dict[str, FieldSpec] = field(default_factory=dict)


def _fields(**kwargs: Tuple[str, str]) -> Dict[str, FieldSpec]:
    """Build a field mapping from ``name=(unit, description)`` pairs."""
    return {
        name: FieldSpec(unit=unit, description=desc)
        for name, (unit, desc) in kwargs.items()
    }


#: name -> spec for every event type the simulator can emit
EVENT_SCHEMA: Dict[str, EventSpec] = {
    spec.name: spec
    for spec in (
        EventSpec(
            name="scan.window",
            module="repro.kernel.scanner",
            description=(
                "One Ticking-scan event marked a window of a process's "
                "address space PROT_NONE and stamped scan timestamps."
            ),
            fields=_fields(
                pid=("id", "scanned process"),
                n_window=("pages", "window size after tier filtering"),
                n_marked=("pages", "pages newly protected this event"),
                wrapped=("flag", "this event completed a full pass"),
                vpns=("pages[]", "virtual page numbers in the window"),
            ),
        ),
        EventSpec(
            name="fault.batch",
            module="repro.vm.fault",
            description=(
                "A batch of NUMA hint faults was taken by one process "
                "in one quantum and delivered to the tiering policy."
            ),
            fields=_fields(
                pid=("id", "faulting process"),
                n_faults=("count", "faults in the batch"),
                vpns=("pages[]", "faulting virtual page numbers"),
                fault_ts_ns=("ns[]", "absolute fault time of each page"),
                cit_ns=(
                    "ns[]",
                    "Captured Idle Time of each fault (-1 if the page "
                    "carried no scan timestamp)",
                ),
            ),
        ),
        EventSpec(
            name="cit.sample",
            module="repro.core.dcsc",
            description=(
                "DCSC completed the second measurement round on probed "
                "pages and recorded max(cit1, cit2) into the per-tier "
                "heat maps."
            ),
            fields=_fields(
                pid=("id", "sampled process"),
                vpns=("pages[]", "probed virtual page numbers"),
                cit_ns=("ns[]", "max-of-two-rounds CIT per page"),
                tiers=("id[]", "tier id each page resides on"),
            ),
        ),
        EventSpec(
            name="dcsc.probe",
            module="repro.core.dcsc",
            description=(
                "DCSC selected and protected a fresh random victim set "
                "(PG_probed) in one process."
            ),
            fields=_fields(
                pid=("id", "probed process"),
                n_probed=("pages", "victims newly marked PG_probed"),
            ),
        ),
        EventSpec(
            name="promotion.decision",
            module="repro.core.policy",
            description=(
                "Candidate filtering passed pages through the CIT "
                "threshold and submitted them to the promotion queue."
            ),
            fields=_fields(
                pid=("id", "owning process"),
                n_submitted=("pages", "pages submitted this decision"),
                n_enqueued=("pages", "pages actually added (deduplicated)"),
                queue_depth=("pages", "promotion-queue depth after enqueue"),
                vpns=("pages[]", "submitted virtual page numbers"),
            ),
        ),
        EventSpec(
            name="demotion.decision",
            module="repro.kernel.reclaim",
            description=(
                "Reclaim selected cold fast-tier victims for demotion "
                "(inactive list first, then coldest active pages)."
            ),
            fields=_fields(
                n_requested=("pages", "demotion target of this pass"),
                n_selected=("pages", "victims actually selected"),
                direct=("flag", "direct (allocation-stalled) reclaim"),
            ),
        ),
        EventSpec(
            name="migration.issue",
            module="repro.kernel.migration",
            description=(
                "A migration batch entered the migration engine (before "
                "destination frames were allocated)."
            ),
            fields=_fields(
                pid=("id", "owning process"),
                dst_tier=("id", "destination tier"),
                n_requested=("pages", "pages requested to move"),
            ),
        ),
        EventSpec(
            name="migration.complete",
            module="repro.kernel.migration",
            description=(
                "A migration batch finished: frames moved, costs "
                "charged, counters bumped."
            ),
            fields=_fields(
                pid=("id", "owning process"),
                dst_tier=("id", "destination tier"),
                n_moved=("pages", "pages that actually moved"),
                n_dropped=(
                    "pages",
                    "overflow pages dropped because the destination ran "
                    "out of frames",
                ),
                cost_ns=("ns", "kernel time charged for the copy"),
                promotion=("flag", "destination is the fast tier"),
                vpns=("pages[]", "virtual page numbers that moved"),
            ),
        ),
        EventSpec(
            name="watermark.cross",
            module="repro.kernel.reclaim",
            description=(
                "Fast-tier free memory crossed a watermark boundary "
                "since the previous reclaim tick."
            ),
            fields=_fields(
                free_pages=("pages", "fast-tier free pages now"),
                zone=(
                    "enum",
                    "current zone: above_high, below_high, below_low, "
                    "or below_min",
                ),
                prev_zone=("enum", "zone at the previous tick"),
            ),
        ),
        EventSpec(
            name="reclaim.wake",
            module="repro.kernel.reclaim",
            description=(
                "The reclaim daemon woke to demote: free memory was "
                "below the high watermark (or an allocation stalled)."
            ),
            fields=_fields(
                free_pages=("pages", "fast-tier free pages at wake"),
                target_pages=("pages", "free-page target of the pass"),
                need_pages=("pages", "pages the pass tries to demote"),
                direct=("flag", "direct (allocation-stalled) reclaim"),
            ),
        ),
        EventSpec(
            name="aging.pass",
            module="repro.kernel.kernel",
            description=(
                "One LRU reference-bit aging pass over one process "
                "finished."
            ),
            fields=_fields(
                pid=("id", "aged process"),
                n_touched=("pages", "pages referenced since the last pass"),
            ),
        ),
        EventSpec(
            name="tune.update",
            module="repro.core.policy",
            description=(
                "Chrono's tuning tick recomputed the CIT threshold and "
                "the promotion rate limit."
            ),
            fields=_fields(
                cit_threshold_ns=("ns", "new CIT classification threshold"),
                rate_limit_pages_per_sec=(
                    "pages/s",
                    "new effective promotion rate limit",
                ),
                enqueue_rate=(
                    "pages/s",
                    "smoothed promotion submission rate (tuner input)",
                ),
                backoff=("ratio", "persistent thrash backoff factor"),
            ),
        ),
        EventSpec(
            name="thrash.detect",
            module="repro.core.policy",
            description=(
                "Recently demoted pages re-qualified as promotion "
                "candidates within one scan period (wasted round trips)."
            ),
            fields=_fields(
                pid=("id", "owning process"),
                n_pages=("pages", "thrashing pages detected"),
                vpns=("pages[]", "thrashing virtual page numbers"),
            ),
        ),
        EventSpec(
            name="pebs.window",
            module="repro.pebs.sampler",
            description=(
                "A PEBS sampler drained one window of bounded-rate "
                "access samples."
            ),
            fields=_fields(
                pid=("id", "sampled process"),
                n_samples=("samples", "samples collected this window"),
                overhead_ns=("ns", "interrupt/drain cost of the window"),
            ),
        ),
        EventSpec(
            name="sweep.cell",
            module="repro.harness.sweep",
            description=(
                "One sweep cell produced its summary -- executed, "
                "coalesced by single-flight dedup, or served from a "
                "cache layer.  Harness scope: 't' is host nanoseconds "
                "since the sweep started, not simulated time."
            ),
            fields=_fields(
                policy=("id", "cell policy name"),
                workload=("id", "cell workload family"),
                seed=("id", "cell seed"),
                index=("count", "cell position in the submitted grid"),
                source=(
                    "enum",
                    "where the summary came from: run, dedup, memory, "
                    "or disk",
                ),
                wall_sec=("s", "host wall time to produce the summary"),
            ),
        ),
        EventSpec(
            name="cache.corrupt",
            module="repro.harness.cache",
            description=(
                "A corrupt or truncated result-cache entry was deleted "
                "and treated as a miss.  Harness scope: no clock exists "
                "at cache level, so 't' is always 0."
            ),
            fields=_fields(
                key=("id", "content key of the discarded entry"),
                reason=(
                    "enum",
                    "what rejected the entry: the exception class name, "
                    "or 'timing' for a timing-store file",
                ),
            ),
        ),
        EventSpec(
            name="tournament.cell",
            module="repro.harness.tournament",
            description=(
                "One tournament cell (policy x workload x seed, or an "
                "all-DRAM reference run) produced its summary.  Harness "
                "scope: 't' is host nanoseconds since the tournament "
                "started."
            ),
            fields=_fields(
                policy=("id", "cell policy name ('all-dram' for refs)"),
                workload=("id", "cell workload family"),
                seed=("id", "cell seed"),
                slowdown=(
                    "ratio",
                    "runtime relative to the matching all-DRAM "
                    "reference (0 for reference cells)",
                ),
            ),
        ),
        EventSpec(
            name="tournament.complete",
            module="repro.harness.tournament",
            description=(
                "The tournament finished and the leaderboard was "
                "assembled.  Harness scope: 't' is host nanoseconds "
                "since the tournament started."
            ),
            fields=_fields(
                n_policies=("count", "policies ranked"),
                n_workloads=("count", "workload families covered"),
                n_cells=("count", "cells contributing (refs included)"),
                winner=("id", "policy with the best geomean slowdown"),
            ),
        ),
        EventSpec(
            name="engine.quantum",
            module="repro.harness.engine",
            description=(
                "The quantum engine finished one step for the whole "
                "fleet (emitted after kernel timers fired); a fused "
                "step reports the whole macro-quantum in one event."
            ),
            fields=_fields(
                quantum_ns=("ns", "step length (macro-quantum if fused)"),
                fast_free_pages=("pages", "fast-tier free pages"),
                slow_free_pages=("pages", "slow-tier free pages"),
                fast_contention=("ratio", "fast-tier latency multiplier"),
                slow_contention=("ratio", "slow-tier latency multiplier"),
            ),
        ),
        EventSpec(
            name="compile.trace",
            module="repro.workloads.compile",
            description=(
                "The trace compiler finished one process's trace: "
                "events binned into windows, windows segmented into "
                "phases, tables interned.  Harness scope: 't' is the "
                "compiled trace's replay span in nanoseconds."
            ),
            fields=_fields(
                pid=("id", "compiled process"),
                n_events=("count", "raw address events ingested"),
                n_windows=("count", "histogram windows binned"),
                n_idle=("count", "windows with zero traffic"),
                n_phases=("count", "phases after segmentation"),
            ),
        ),
        EventSpec(
            name="tracegen.fleet",
            module="repro.workloads.tracegen",
            description=(
                "The traffic generator built one tenant fleet.  "
                "Harness scope: emitted at build time, so 't' is "
                "always 0."
            ),
            fields=_fields(
                n_tenants=("count", "tenant processes built"),
                n_users=("count", "simulated users mapped onto tenants"),
                n_patterns=("count", "distinct shared pattern tables"),
                n_churn=("count", "tenants that churn (exit or spawn)"),
                n_shifting=("count", "tenants with scripted phase shifts"),
            ),
        ),
        EventSpec(
            name="engine.fused",
            module="repro.harness.engine",
            description=(
                "The engine fused multiple steady-state quanta into one "
                "macro-quantum (event-horizon quantum fusion)."
            ),
            fields=_fields(
                n_quanta=("count", "quanta merged into this step"),
                macro_ns=("ns", "fused window length"),
            ),
        ),
    )
}

#: event types whose payload carries a per-page ``vpns`` array -- the set
#: the per-page timeline aggregation explodes
PAGE_EVENT_TYPES: Tuple[str, ...] = tuple(
    name for name, spec in EVENT_SCHEMA.items() if "vpns" in spec.fields
)


def event_names() -> Tuple[str, ...]:
    """Return every registered event-type name, sorted."""
    return tuple(sorted(EVENT_SCHEMA))
