"""Observability: structured event tracing and the metrics registry.

The ``repro.obs`` package is the simulator's observability layer:

* :mod:`repro.obs.events` -- the trace-event catalogue
  (:data:`~repro.obs.events.EVENT_SCHEMA`): every event type, its
  payload fields, units, and emitting module;
* :mod:`repro.obs.metrics` -- counters/gauges/histograms and the
  :data:`~repro.obs.metrics.METRIC_CATALOGUE`, collected in a
  :class:`~repro.obs.metrics.MetricsRegistry` with one ``snapshot()``
  read API;
* :mod:`repro.obs.trace` -- the ring-buffered
  :class:`~repro.obs.trace.Tracer` and its JSONL sink;
* :mod:`repro.obs.hub` -- :class:`~repro.obs.hub.ObsHub`, the single
  handle instrumented kernel paths reach through ``kernel.obs``;
* :mod:`repro.obs.tracefile` -- trace-file reading and the
  aggregations behind ``chrono-sim trace``.

Attach a hub with ``run_experiment(..., obs=ObsHub.create(...))`` or the
CLI's ``chrono-sim run --trace out.jsonl --metrics``.  With no hub
attached (the default) every instrumentation site is a single ``is
None`` check -- the uninstrumented hot path pays nothing.  The full
reference, with a worked per-page example, is ``docs/OBSERVABILITY.md``.
"""

from repro.obs.events import EVENT_SCHEMA, EventSpec, FieldSpec, event_names
from repro.obs.hub import ObsHub
from repro.obs.metrics import (
    METRIC_CATALOGUE,
    Counter,
    Gauge,
    Histogram,
    MetricSpec,
    MetricsRegistry,
    metric_names,
)
from repro.obs.trace import Tracer
from repro.obs.tracefile import (
    epoch_migrations,
    page_timeline,
    read_events,
    summarize,
)

__all__ = [
    "EVENT_SCHEMA",
    "METRIC_CATALOGUE",
    "Counter",
    "EventSpec",
    "FieldSpec",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "ObsHub",
    "Tracer",
    "epoch_migrations",
    "event_names",
    "metric_names",
    "page_timeline",
    "read_events",
    "summarize",
]
