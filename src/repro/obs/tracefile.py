"""Trace-file reading, filtering, and aggregation.

The consumers behind ``chrono-sim trace``: stream a JSONL trace written
by :class:`~repro.obs.trace.Tracer`, then

* :func:`summarize` -- event counts and time range per event type;
* :func:`epoch_migrations` -- per-epoch promotion/demotion/fault/scan
  counts (the Figure-6-style migration timeline);
* :func:`page_timeline` -- the life of one ``(pid, vpn)`` page: every
  scan, fault, CIT sample, promotion decision, and migration that
  mentioned it, in time order.

All aggregations are single-pass over an event iterator, so traces far
larger than memory stream through untouched.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union


def read_events(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Stream events from a JSONL trace file, skipping blank lines."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            yield json.loads(line)


def summarize(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Count events per type and report the covered time range.

    Returns ``{"total": n, "t_first": ns, "t_last": ns, "by_type":
    {type: {"count": n, "t_first": ns, "t_last": ns}}}`` with ``None``
    timestamps for an empty trace.
    """
    by_type: Dict[str, Dict[str, Any]] = {}
    total = 0
    t_first: Optional[int] = None
    t_last: Optional[int] = None
    for event in events:
        total += 1
        t = int(event["t"])
        t_first = t if t_first is None else min(t_first, t)
        t_last = t if t_last is None else max(t_last, t)
        row = by_type.setdefault(
            event["type"], {"count": 0, "t_first": t, "t_last": t}
        )
        row["count"] += 1
        row["t_first"] = min(row["t_first"], t)
        row["t_last"] = max(row["t_last"], t)
    return {
        "total": total,
        "t_first": t_first,
        "t_last": t_last,
        "by_type": dict(sorted(by_type.items())),
    }


def epoch_migrations(
    events: Iterable[Dict[str, Any]], epoch_ns: int
) -> List[Dict[str, Any]]:
    """Aggregate migration activity into fixed time epochs.

    Buckets ``migration.complete`` page counts (split by direction),
    hint-fault counts, and scan events into epochs of ``epoch_ns``
    simulated nanoseconds.  Returns one row per non-empty epoch, in
    time order; the promoted/demoted columns sum exactly to the run's
    ``pgpromote``/``pgdemote`` counters because every migration funnels
    through the engine that emits the events.
    """
    if epoch_ns <= 0:
        raise ValueError("epoch length must be positive")
    epochs: Dict[int, Dict[str, Any]] = {}
    for event in events:
        kind = event["type"]
        if kind not in (
            "migration.complete", "fault.batch", "scan.window",
        ):
            continue
        index = int(event["t"]) // epoch_ns
        row = epochs.setdefault(
            index,
            {
                "epoch": index,
                "t_start": index * epoch_ns,
                "promoted": 0,
                "demoted": 0,
                "faults": 0,
                "scan_windows": 0,
            },
        )
        if kind == "migration.complete":
            if event.get("promotion"):
                row["promoted"] += int(event["n_moved"])
            else:
                row["demoted"] += int(event["n_moved"])
        elif kind == "fault.batch":
            row["faults"] += int(event["n_faults"])
        else:
            row["scan_windows"] += 1
    return [epochs[index] for index in sorted(epochs)]


def _vpn_position(event: Dict[str, Any], vpn: int) -> Optional[int]:
    """Return the index of ``vpn`` in the event's vpn list, if present."""
    vpns = event.get("vpns")
    if vpns is None:
        return None
    try:
        return vpns.index(vpn)
    except ValueError:
        return None


#: per-event-type scalar detail extractors for the page timeline; each
#: maps (event, index of the page in the vpn list) -> detail dict
_TIMELINE_DETAILS = {
    "scan.window": lambda e, i: {"wrapped": e.get("wrapped")},
    "fault.batch": lambda e, i: {
        "cit_ns": e["cit_ns"][i], "fault_ts_ns": e["fault_ts_ns"][i],
    },
    "cit.sample": lambda e, i: {
        "cit_ns": e["cit_ns"][i], "tier": e["tiers"][i],
    },
    "promotion.decision": lambda e, i: {
        "queue_depth": e.get("queue_depth"),
    },
    "migration.complete": lambda e, i: {
        "dst_tier": e["dst_tier"], "promotion": e.get("promotion"),
    },
    "thrash.detect": lambda e, i: {},
}


def page_timeline(
    events: Iterable[Dict[str, Any]], pid: int, vpn: int
) -> List[Dict[str, Any]]:
    """Extract the chronological event timeline of one page.

    Scans every page-carrying event (see
    :data:`repro.obs.events.PAGE_EVENT_TYPES`) owned by ``pid`` for
    ``vpn`` and returns ``{"t", "type", **detail}`` rows sorted by time.
    This is the worked-example view in ``docs/OBSERVABILITY.md``: a
    page's first scan, its faults with their CITs, its promotion
    decision, and the migration that moved it.
    """
    rows: List[Dict[str, Any]] = []
    for event in events:
        detail_fn = _TIMELINE_DETAILS.get(event["type"])
        if detail_fn is None or event.get("pid") != pid:
            continue
        index = _vpn_position(event, vpn)
        if index is None:
            continue
        row = {"t": int(event["t"]), "type": event["type"]}
        row.update(detail_fn(event, index))
        rows.append(row)
    rows.sort(key=lambda row: row["t"])
    return rows
