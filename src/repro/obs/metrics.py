"""The per-subsystem metrics registry.

Three instrument kinds -- :class:`Counter` (monotonic totals),
:class:`Gauge` (last-write-wins levels), and :class:`Histogram`
(bucketed distributions) -- collected in a :class:`MetricsRegistry` with
a single :meth:`MetricsRegistry.snapshot` read API.

Every metric the simulator maintains is declared up front in
:data:`METRIC_CATALOGUE` (name, kind, unit, emitting module,
description); a registry pre-creates all of them so a snapshot always
has the full, stable key set -- zero-valued metrics read as zero instead
of being absent.  ``docs/OBSERVABILITY.md`` documents the catalogue and
``tests/test_docs_reference.py`` keeps the two in sync.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

#: exponential bucket edges for CIT histograms: 1 us .. ~17 min
_CIT_EDGES_NS: Tuple[float, ...] = tuple(
    float(1_000 * 2**k) for k in range(0, 30, 2)
)

#: power-of-two bucket edges for migration batch sizes
_BATCH_EDGES_PAGES: Tuple[float, ...] = tuple(
    float(2**k) for k in range(0, 13)
)

#: power-of-two bucket edges for cell wall times: ~16 ms .. ~17 min
_WALL_EDGES_SEC: Tuple[float, ...] = tuple(
    float(2.0**k) for k in range(-6, 11)
)

#: power-of-two bucket edges for fused-window lengths: 2 .. 4096 quanta
_FUSION_EDGES_QUANTA: Tuple[float, ...] = tuple(
    float(2**k) for k in range(1, 13)
)


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric in the catalogue."""

    #: the metric name (dotted, ``subsystem.quantity``)
    name: str
    #: ``counter``, ``gauge``, or ``histogram``
    kind: str
    #: measurement unit (``pages``, ``ns``, ``count``, ...)
    unit: str
    #: the module that maintains the metric
    module: str
    #: what the metric measures
    description: str
    #: bucket edges (histograms only)
    edges: Tuple[float, ...] = field(default=())


def _spec(
    name: str,
    kind: str,
    unit: str,
    module: str,
    description: str,
    edges: Tuple[float, ...] = (),
) -> MetricSpec:
    """Build a :class:`MetricSpec` (positional shorthand)."""
    return MetricSpec(
        name=name, kind=kind, unit=unit, module=module,
        description=description, edges=edges,
    )


#: name -> spec for every metric the simulator maintains
METRIC_CATALOGUE: Dict[str, MetricSpec] = {
    spec.name: spec
    for spec in (
        # -- scanner ----------------------------------------------------
        _spec("scan.windows", "counter", "count", "repro.kernel.scanner",
              "Ticking-scan events executed."),
        _spec("scan.pages_marked", "counter", "pages",
              "repro.kernel.scanner",
              "pages newly marked PROT_NONE by scan events."),
        _spec("scan.passes", "counter", "count", "repro.kernel.scanner",
              "full address-space scan passes completed."),
        # -- fault path -------------------------------------------------
        _spec("fault.batches", "counter", "count", "repro.kernel.kernel",
              "hint-fault batches delivered to the policy."),
        _spec("fault.hint_faults", "counter", "count",
              "repro.kernel.kernel", "NUMA hint faults taken."),
        _spec("fault.cost_ns", "counter", "ns", "repro.kernel.kernel",
              "kernel time charged for hint-fault handling."),
        _spec("fault.cit_ns", "histogram", "ns", "repro.kernel.kernel",
              "distribution of Captured Idle Time over all hint faults.",
              edges=_CIT_EDGES_NS),
        # -- DCSC -------------------------------------------------------
        _spec("dcsc.probes", "counter", "pages", "repro.core.dcsc",
              "pages marked PG_probed by DCSC victim selection."),
        _spec("dcsc.samples", "counter", "samples", "repro.core.dcsc",
              "completed two-round CIT samples recorded into heat maps."),
        _spec("dcsc.expired", "counter", "pages", "repro.core.dcsc",
              "probes that timed out unfaulted (counted maximally cold)."),
        # -- promotion --------------------------------------------------
        _spec("promotion.submitted", "counter", "pages",
              "repro.core.policy",
              "promotion-ready pages submitted to the queue."),
        _spec("promotion.enqueued", "counter", "pages",
              "repro.core.policy",
              "submitted pages actually added (after deduplication)."),
        _spec("promotion.queue_depth", "gauge", "pages",
              "repro.core.promotion",
              "current promotion-queue depth."),
        # -- migration --------------------------------------------------
        _spec("migration.promoted_pages", "counter", "pages",
              "repro.kernel.migration", "pages moved to the fast tier."),
        _spec("migration.demoted_pages", "counter", "pages",
              "repro.kernel.migration", "pages moved to a slow tier."),
        _spec("migration.dropped_pages", "counter", "pages",
              "repro.kernel.migration",
              "promotion overflow dropped for lack of fast-tier frames."),
        _spec("migration.cost_ns", "counter", "ns",
              "repro.kernel.migration",
              "kernel time charged for page copies."),
        _spec("migration.batch_pages", "histogram", "pages",
              "repro.kernel.migration",
              "distribution of migration batch sizes.",
              edges=_BATCH_EDGES_PAGES),
        # -- reclaim ----------------------------------------------------
        _spec("reclaim.wakes", "counter", "count", "repro.kernel.reclaim",
              "reclaim passes that found free memory below the target."),
        _spec("reclaim.demoted_pages", "counter", "pages",
              "repro.kernel.reclaim",
              "pages demoted by reclaim victim selection."),
        _spec("reclaim.direct_penalty_ns", "counter", "ns",
              "repro.kernel.reclaim",
              "direct-reclaim stall time charged to allocating processes."),
        _spec("watermark.crossings", "counter", "count",
              "repro.kernel.reclaim",
              "fast-tier free-memory watermark-zone transitions."),
        # -- thrashing / tuning ----------------------------------------
        _spec("thrash.events", "counter", "count", "repro.core.policy",
              "demote-then-promote round trips detected."),
        _spec("chrono.cit_threshold_ns", "gauge", "ns",
              "repro.core.policy",
              "current CIT classification threshold."),
        _spec("chrono.rate_limit_pages_per_sec", "gauge", "pages/s",
              "repro.core.policy",
              "current effective promotion rate limit."),
        # -- rival policies ---------------------------------------------
        _spec("nomad.aborted_pages", "counter", "pages",
              "repro.policies.nomad",
              "transactional promotions aborted by a write during the "
              "copy window (the copy cost is wasted)."),
        _spec("nomad.shadow_released", "counter", "pages",
              "repro.policies.nomad",
              "shadow frames released by reconciliation (write "
              "invalidation, zero-copy demotion, pressure reclaim)."),
        _spec("nomad.shadow_pages", "gauge", "pages",
              "repro.policies.nomad",
              "slow-tier frames currently held by live shadow copies."),
        _spec("tierbpf.admitted_pages", "counter", "pages",
              "repro.policies.tierbpf",
              "promotion candidates that passed the payback admission "
              "test and were migrated."),
        _spec("tierbpf.rejected_pages", "counter", "pages",
              "repro.policies.tierbpf",
              "promotion candidates rejected and requeued by the "
              "admission test."),
        _spec("arms.drift_resets", "counter", "count",
              "repro.policies.arms",
              "drift-detector firings that reset the tuned threshold."),
        _spec("arms.threshold_ns", "gauge", "ns",
              "repro.policies.arms",
              "current feedback-tuned promotion threshold."),
        _spec("jenga.damped_pages", "counter", "pages",
              "repro.policies.jenga",
              "promotion candidates blocked by the refractory window "
              "or history damping."),
        _spec("jenga.damping_factor", "gauge", "ratio",
              "repro.policies.jenga",
              "current promotion-budget multiplier (1 = no recent "
              "demotion pressure)."),
        # -- tournament -------------------------------------------------
        _spec("tournament.cells_run", "counter", "count",
              "repro.harness.tournament",
              "tournament cells executed or served from cache."),
        _spec("tournament.policies_ranked", "counter", "count",
              "repro.harness.tournament",
              "policies that produced a complete leaderboard row."),
        # -- LRU aging --------------------------------------------------
        _spec("aging.passes", "counter", "count", "repro.kernel.kernel",
              "per-process LRU reference-bit aging passes."),
        # -- PEBS -------------------------------------------------------
        _spec("pebs.samples", "counter", "samples", "repro.pebs.sampler",
              "bounded-rate access samples collected."),
        _spec("pebs.overhead_ns", "counter", "ns", "repro.pebs.sampler",
              "sample interrupt/drain time accumulated."),
        # -- sweep / result cache ---------------------------------------
        _spec("sweep.cells_run", "counter", "count",
              "repro.harness.sweep",
              "sweep cells actually executed (not served from a cache "
              "layer or coalesced by dedup)."),
        _spec("sweep.cache_hits", "counter", "count",
              "repro.harness.sweep",
              "sweep cells served from the on-disk result cache."),
        _spec("sweep.memory_hits", "counter", "count",
              "repro.harness.sweep",
              "sweep cells served from the in-memory LRU above the "
              "disk cache."),
        _spec("sweep.dedup_hits", "counter", "count",
              "repro.harness.sweep",
              "duplicate in-grid cells coalesced by single-flight "
              "dedup."),
        _spec("sweep.shm_bytes", "counter", "bytes",
              "repro.harness.sweep",
              "workload-table bytes exported to workers via shared "
              "memory (counted once per sweep, not per worker)."),
        _spec("sweep.cell_wall_sec", "histogram", "s",
              "repro.harness.sweep",
              "distribution of per-cell host wall times (executed "
              "cells only).",
              edges=_WALL_EDGES_SEC),
        _spec("cache.corrupt_entries", "counter", "count",
              "repro.harness.cache",
              "corrupt result-cache entries deleted and treated as "
              "misses."),
        # -- machine / engine ------------------------------------------
        _spec("engine.quanta", "counter", "count", "repro.harness.engine",
              "simulated quanta covered (fused steps count all their "
              "quanta)."),
        _spec("engine.fused_steps", "counter", "count",
              "repro.harness.engine",
              "engine steps that fused multiple quanta into one "
              "macro-quantum."),
        _spec("engine.fused_quanta", "counter", "count",
              "repro.harness.engine",
              "quanta covered by fused steps."),
        _spec("engine.fusion_ratio", "gauge", "ratio",
              "repro.harness.engine",
              "fraction of simulated quanta covered by fused steps so "
              "far."),
        _spec("engine.fusion_horizon", "histogram", "quanta",
              "repro.harness.engine",
              "fused-window length per fused step, in quanta.",
              edges=_FUSION_EDGES_QUANTA),
        _spec("arena.interned_classes", "gauge", "count",
              "repro.harness.arena",
              "multi-member distribution equivalence classes in the "
              "interned arena."),
        _spec("arena.interned_segments", "gauge", "count",
              "repro.harness.arena",
              "segments currently priced through an equivalence class."),
        _spec("arena.repriced_segments", "counter", "count",
              "repro.harness.arena",
              "segment prices recomputed by the interned step (dirty "
              "rows plus members of dirty classes)."),
        _spec("arena.reprice_skipped_segments", "counter", "count",
              "repro.harness.arena",
              "segment re-pricings skipped because the epoch witness "
              "showed no change."),
        _spec("workload.table_hits", "gauge", "count",
              "repro.workloads.base",
              "compiled-table cache hits accumulated process-wide at "
              "snapshot time."),
        _spec("workload.table_misses", "gauge", "count",
              "repro.workloads.base",
              "compiled-table cache misses accumulated process-wide at "
              "snapshot time."),
        _spec("workload.table_bytes", "gauge", "bytes",
              "repro.workloads.base",
              "bytes resident in the compiled-table cache."),
        # -- trace compiler ---------------------------------------------
        _spec("compile.events", "counter", "count",
              "repro.workloads.compile",
              "raw address events ingested by the trace compiler."),
        _spec("compile.windows", "counter", "count",
              "repro.workloads.compile",
              "histogram windows binned by the trace compiler."),
        _spec("compile.idle_windows", "counter", "count",
              "repro.workloads.compile",
              "binned windows that carried zero traffic."),
        _spec("compile.phases", "counter", "count",
              "repro.workloads.compile",
              "phases emitted by change-point segmentation."),
        # -- traffic generator ------------------------------------------
        _spec("tracegen.tenants", "gauge", "count",
              "repro.workloads.tracegen",
              "tenant processes in the last generated fleet."),
        _spec("tracegen.users", "gauge", "count",
              "repro.workloads.tracegen",
              "simulated users mapped onto the last generated fleet."),
        _spec("tracegen.patterns", "gauge", "count",
              "repro.workloads.tracegen",
              "distinct shared pattern tables in the last fleet."),
        _spec("tracegen.churn_tenants", "gauge", "count",
              "repro.workloads.tracegen",
              "tenants that churn (exit or spawn) in the last fleet."),
        _spec("machine.fast_free_pages", "gauge", "pages",
              "repro.mem.machine", "fast-tier free frames."),
        _spec("machine.slow_free_pages", "gauge", "pages",
              "repro.mem.machine", "slow-tier free frames."),
        _spec("machine.fast_contention", "gauge", "ratio",
              "repro.mem.machine",
              "fast-tier M/M/1 latency multiplier this quantum."),
        _spec("machine.slow_contention", "gauge", "ratio",
              "repro.mem.machine",
              "slow-tier M/M/1 latency multiplier this quantum."),
    )
}


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        """Create the counter at zero."""
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (must be non-negative) to the total."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += n


class Gauge:
    """A last-write-wins level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        """Create the gauge at zero."""
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)


class Histogram:
    """A fixed-edge bucketed distribution.

    ``edges`` are the inclusive lower bounds of buckets 1..N; values
    below ``edges[0]`` land in bucket 0, values at or above ``edges[-1]``
    in the last bucket.  The histogram also tracks the observation count
    and sum, so means survive the bucketing.
    """

    __slots__ = ("name", "edges", "counts", "total", "sum")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        """Create the histogram with the given bucket edges."""
        if len(edges) < 1:
            raise ValueError("histogram needs at least one edge")
        if list(edges) != sorted(edges):
            raise ValueError("histogram edges must be sorted")
        self.name = name
        self.edges = np.asarray(edges, dtype=np.float64)
        self.counts = np.zeros(len(edges) + 1, dtype=np.float64)
        self.total = 0.0
        self.sum = 0.0

    def observe(self, value: float, weight: float = 1.0) -> None:
        """Record one observation with an optional weight."""
        index = int(np.searchsorted(self.edges, value, side="right"))
        self.counts[index] += weight
        self.total += weight
        self.sum += value * weight

    def observe_many(self, values: np.ndarray) -> None:
        """Record a batch of observations (weight 1 each)."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        indices = np.searchsorted(self.edges, values, side="right")
        np.add.at(self.counts, indices, 1.0)
        self.total += float(values.size)
        self.sum += float(values.sum())

    def mean(self) -> float:
        """Return the mean of all observations (0 when empty)."""
        return self.sum / self.total if self.total else 0.0


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Every catalogued metric is pre-created so :meth:`snapshot` always
    returns the complete key set.  Accessors raise ``KeyError`` for
    unknown names and ``TypeError`` for kind mismatches, so a typo at an
    instrumentation site fails loudly instead of minting a shadow
    metric outside the documented catalogue.
    """

    def __init__(self) -> None:
        """Pre-create every metric declared in the catalogue."""
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        for spec in METRIC_CATALOGUE.values():
            if spec.kind == "counter":
                self._counters[spec.name] = Counter(spec.name)
            elif spec.kind == "gauge":
                self._gauges[spec.name] = Gauge(spec.name)
            elif spec.kind == "histogram":
                self._histograms[spec.name] = Histogram(
                    spec.name, spec.edges
                )
            else:  # pragma: no cover - catalogue is static
                raise ValueError(f"unknown metric kind {spec.kind!r}")

    def counter(self, name: str) -> Counter:
        """Return the catalogued counter called ``name``."""
        return self._lookup(self._counters, name, "counter")

    def gauge(self, name: str) -> Gauge:
        """Return the catalogued gauge called ``name``."""
        return self._lookup(self._gauges, name, "gauge")

    def histogram(self, name: str) -> Histogram:
        """Return the catalogued histogram called ``name``."""
        return self._lookup(self._histograms, name, "histogram")

    @staticmethod
    def _lookup(table: Dict[str, Any], name: str, kind: str) -> Any:
        metric = table.get(name)
        if metric is None:
            if name in METRIC_CATALOGUE:
                raise TypeError(
                    f"metric {name!r} is a "
                    f"{METRIC_CATALOGUE[name].kind}, not a {kind}"
                )
            raise KeyError(f"metric {name!r} is not in the catalogue")
        return metric

    def snapshot(self) -> Dict[str, Any]:
        """Return a plain-dict, JSON-compatible view of every metric."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "edges": [float(e) for e in h.edges],
                    "counts": [float(c) for c in h.counts],
                    "total": h.total,
                    "sum": h.sum,
                }
                for name, h in sorted(self._histograms.items())
            },
        }


def metric_names() -> Tuple[str, ...]:
    """Return every catalogued metric name, sorted."""
    return tuple(sorted(METRIC_CATALOGUE))
