"""Per-access latency distributions (Figure 7).

The batched engine knows, for every quantum, how many accesses were served
at each latency class (fast read, fast write, slow read, slow write,
hint-faulted access).  :class:`LatencyMixture` accumulates these weighted
latency points and answers mean/median/P99 queries exactly over the
discrete mixture -- no sampling noise, and the CDF steps land at the class
latencies just like the paper's Figure 7a staircase.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np


class LatencyMixture:
    """A weighted discrete latency distribution."""

    def __init__(self) -> None:
        self._mass: Dict[int, float] = {}

    def add(self, latency_ns: float, count: float) -> None:
        """Account ``count`` accesses completing at ``latency_ns``."""
        if count < 0:
            raise ValueError("count cannot be negative")
        if latency_ns < 0:
            raise ValueError("latency cannot be negative")
        if count == 0:
            return
        key = int(round(latency_ns))
        self._mass[key] = self._mass.get(key, 0.0) + float(count)

    def merge(self, other: "LatencyMixture") -> None:
        """Fold another mixture into this one."""
        for latency, count in other._mass.items():
            self._mass[latency] = self._mass.get(latency, 0.0) + count

    @property
    def total(self) -> float:
        return sum(self._mass.values())

    def _sorted(self) -> Tuple[np.ndarray, np.ndarray]:
        if not self._mass:
            raise ValueError("empty latency mixture")
        latencies = np.array(sorted(self._mass), dtype=np.float64)
        counts = np.array(
            [self._mass[int(l)] for l in latencies], dtype=np.float64
        )
        return latencies, counts

    def mean(self) -> float:
        latencies, counts = self._sorted()
        return float((latencies * counts).sum() / counts.sum())

    def quantile(self, q: float) -> float:
        """The smallest latency whose CDF reaches ``q``."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        latencies, counts = self._sorted()
        cdf = np.cumsum(counts) / counts.sum()
        index = int(np.searchsorted(cdf, q, side="left"))
        index = min(index, len(latencies) - 1)
        return float(latencies[index])

    def median(self) -> float:
        return self.quantile(0.5)

    def p99(self) -> float:
        return self.quantile(0.99)

    def cdf_points(self) -> List[Tuple[float, float]]:
        """(latency, cumulative fraction) staircase for plotting."""
        latencies, counts = self._sorted()
        cdf = np.cumsum(counts) / counts.sum()
        return list(zip(latencies.tolist(), cdf.tolist()))

    def summary(self) -> Dict[str, float]:
        """The Figure 7 statistics."""
        return {
            "average": self.mean(),
            "median": self.median(),
            "p99": self.p99(),
        }
