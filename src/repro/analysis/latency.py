"""Per-access latency distributions (Figure 7).

The batched engine knows, for every quantum, how many accesses were served
at each latency class (fast read, fast write, slow read, slow write,
hint-faulted access).  :class:`LatencyMixture` accumulates these weighted
latency points and answers mean/median/P99 queries exactly over the
discrete mixture -- no sampling noise, and the CDF steps land at the class
latencies just like the paper's Figure 7a staircase.

The mixture is written once per latency class per quantum (hot path) and
read a handful of times at the end of a run, so writes are cheap dict
accumulations with a bulk :meth:`add_many` entry point, while the sorted
array views the statistics need are built lazily and cached until the
next write invalidates them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


class LatencyMixture:
    """A weighted discrete latency distribution."""

    def __init__(self) -> None:
        self._mass: Dict[int, float] = {}
        #: cached (latencies, counts) sorted views; rebuilt lazily and
        #: dropped on any write (add/add_many/merge)
        self._views: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._total: float = 0.0

    def add(self, latency_ns: float, count: float) -> None:
        """Account ``count`` accesses completing at ``latency_ns``."""
        if count < 0:
            raise ValueError("count cannot be negative")
        if latency_ns < 0:
            raise ValueError("latency cannot be negative")
        if count == 0:
            return
        key = int(round(latency_ns))
        self._mass[key] = self._mass.get(key, 0.0) + float(count)
        self._total += float(count)
        self._views = None

    def add_keyed(self, key: int, count: float) -> None:
        """Accumulate onto a precomputed integer latency key (hot path).

        ``key`` must equal ``int(round(latency_ns))`` for the latency
        class being recorded -- exactly what :meth:`add` computes.
        Callers pricing a fixed set of latency classes every quantum
        hoist the rounding out of their inner loop and land here; the
        dict accumulation is bit-identical to :meth:`add`.
        """
        if count <= 0.0:
            if count == 0.0:
                return
            raise ValueError("count cannot be negative")
        self._mass[key] = self._mass.get(key, 0.0) + count
        self._total += count
        self._views = None

    def add_many(
        self, latencies_ns: np.ndarray, counts: np.ndarray
    ) -> None:
        """Bulk-account a batch of latency classes.

        ``latencies_ns`` and ``counts`` are parallel arrays; zero-count
        classes are skipped (they must not create empty CDF steps).  The
        batch is validated vectorised, then folded in array order so the
        accumulation matches an equivalent sequence of :meth:`add` calls
        bit for bit.
        """
        latencies_ns = np.asarray(latencies_ns, dtype=np.float64)
        counts = np.asarray(counts, dtype=np.float64)
        if latencies_ns.shape != counts.shape:
            raise ValueError("latencies and counts must be parallel")
        if counts.size == 0:
            return
        if np.any(counts < 0):
            raise ValueError("count cannot be negative")
        if np.any(latencies_ns < 0):
            raise ValueError("latency cannot be negative")
        nonzero = counts > 0
        if not np.any(nonzero):
            return
        mass = self._mass
        for latency, count in zip(
            latencies_ns[nonzero], counts[nonzero]
        ):
            key = int(round(latency))
            mass[key] = mass.get(key, 0.0) + float(count)
            self._total += float(count)
        self._views = None

    def merge(self, other: "LatencyMixture") -> None:
        """Fold another mixture into this one."""
        for latency, count in other._mass.items():
            self._mass[latency] = self._mass.get(latency, 0.0) + count
            self._total += count
        self._views = None

    @property
    def total(self) -> float:
        return self._total

    def _sorted(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._views is not None:
            return self._views
        if not self._mass:
            raise ValueError("empty latency mixture")
        latencies = np.array(sorted(self._mass), dtype=np.float64)
        counts = np.array(
            [self._mass[int(lat)] for lat in latencies],
            dtype=np.float64,
        )
        self._views = (latencies, counts)
        return self._views

    def mean(self) -> float:
        latencies, counts = self._sorted()
        return float((latencies * counts).sum() / counts.sum())

    def quantile(self, q: float) -> float:
        """The smallest latency whose CDF reaches ``q``."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        latencies, counts = self._sorted()
        cdf = np.cumsum(counts) / counts.sum()
        index = int(np.searchsorted(cdf, q, side="left"))
        index = min(index, len(latencies) - 1)
        return float(latencies[index])

    def median(self) -> float:
        return self.quantile(0.5)

    def p99(self) -> float:
        return self.quantile(0.99)

    def cdf_points(self) -> List[Tuple[float, float]]:
        """(latency, cumulative fraction) staircase for plotting."""
        latencies, counts = self._sorted()
        cdf = np.cumsum(counts) / counts.sum()
        return list(zip(latencies.tolist(), cdf.tolist()))

    def summary(self) -> Dict[str, float]:
        """The Figure 7 statistics."""
        return {
            "average": self.mean(),
            "median": self.median(),
            "p99": self.p99(),
        }
