"""Hot-page identification quality metrics (Section 2.4 / Figure 2a).

The paper scores identification methods with two metrics:

* **F1-score** -- ground-truth positives are accesses to the constructed
  hot region; predicted positives are accesses served by DRAM (promoted
  pages).  We compute it access-weighted, exactly as the PMU-based
  methodology does.
* **Page promotion ratio (PPR)** -- pages promoted to DRAM over total
  accessed slow-tier pages; lower is better for the same F1 (fewer wasted
  migrations).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def precision_recall(
    truth_mask: np.ndarray,
    predicted_mask: np.ndarray,
    weights: np.ndarray = None,
) -> Tuple[float, float]:
    """Precision and recall of a hot-page prediction.

    ``weights`` (e.g. per-page access counts) makes the score
    access-weighted; ``None`` scores pages equally.
    """
    truth_mask = np.asarray(truth_mask, dtype=bool)
    predicted_mask = np.asarray(predicted_mask, dtype=bool)
    if truth_mask.shape != predicted_mask.shape:
        raise ValueError("masks must be the same shape")
    if weights is None:
        weights = np.ones(truth_mask.shape)
    weights = np.asarray(weights, dtype=np.float64)

    tp = weights[truth_mask & predicted_mask].sum()
    fp = weights[~truth_mask & predicted_mask].sum()
    fn = weights[truth_mask & ~predicted_mask].sum()
    precision = tp / (tp + fp) if (tp + fp) > 0 else 0.0
    recall = tp / (tp + fn) if (tp + fn) > 0 else 0.0
    return float(precision), float(recall)


def f1_score(
    truth_mask: np.ndarray,
    predicted_mask: np.ndarray,
    weights: np.ndarray = None,
) -> float:
    """Harmonic mean of precision and recall."""
    precision, recall = precision_recall(truth_mask, predicted_mask, weights)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def page_promotion_ratio(
    pages_promoted: float, slow_pages_accessed: float
) -> float:
    """PPR: promotions over accessed slow-tier pages (lower is better)."""
    if pages_promoted < 0 or slow_pages_accessed < 0:
        raise ValueError("counts cannot be negative")
    if slow_pages_accessed == 0:
        return 0.0
    return pages_promoted / slow_pages_accessed


def fast_tier_access_ratio(
    fast_accesses: float, total_accesses: float
) -> float:
    """FMAR: share of memory accesses served by the fast tier."""
    if fast_accesses < 0 or total_accesses < 0:
        raise ValueError("counts cannot be negative")
    if total_accesses == 0:
        return 0.0
    if fast_accesses > total_accesses:
        raise ValueError("fast accesses cannot exceed total accesses")
    return fast_accesses / total_accesses


def top_fraction_mask(values: np.ndarray, fraction: float) -> np.ndarray:
    """Mask of the top ``fraction`` entries by value (at least one)."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    values = np.asarray(values)
    n_top = max(1, int(values.size * fraction))
    idx = np.argpartition(values, -n_top)[-n_top:]
    mask = np.zeros(values.size, dtype=bool)
    mask[idx] = True
    return mask


def normalized(values, baseline_index: int = 0) -> np.ndarray:
    """Normalize a sequence to one of its entries (paper-style plots)."""
    values = np.asarray(values, dtype=np.float64)
    baseline = values[baseline_index]
    if baseline == 0:
        raise ValueError("baseline value is zero")
    return values / baseline
