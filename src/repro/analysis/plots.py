"""Terminal-friendly plotting helpers.

Everything in this repository reports through text, so these helpers give
examples and reports lightweight visuals: sparklines for time series,
horizontal bars for histograms/heat maps, and labeled series tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

_BLOCKS = " ▁▂▃▄▅▆▇█"
_ASCII_BLOCKS = " .:-=+*#%@"


def sparkline(
    values: Sequence[float],
    width: int = 60,
    ascii_only: bool = False,
) -> str:
    """Render a series as a single-line sparkline.

    Longer series are averaged into ``width`` buckets; the scale runs from
    0 to the series maximum.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return ""
    if values.size > width:
        chunks = np.array_split(values, width)
        values = np.array([chunk.mean() for chunk in chunks])
    blocks = _ASCII_BLOCKS if ascii_only else _BLOCKS
    top = float(values.max())
    if top <= 0:
        return blocks[0] * values.size
    indices = np.minimum(
        (values / top * (len(blocks) - 1)).astype(int),
        len(blocks) - 1,
    )
    return "".join(blocks[i] for i in indices)


def hbar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart with right-aligned values."""
    if len(labels) != len(values):
        raise ValueError("labels and values must be parallel")
    if width <= 0:
        raise ValueError("width must be positive")
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return ""
    top = float(values.max())
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = 0 if top <= 0 else int(round(value / top * width))
        bar = "#" * filled
        lines.append(
            f"{label.ljust(label_width)}  {bar.ljust(width)}  "
            f"{value:g}{unit}"
        )
    return "\n".join(lines)


def heat_map_rows(
    heat_map: Sequence[float],
    bucket_labels: Sequence[str],
    max_rows: int = 14,
) -> str:
    """Render a CIT heat map (or any histogram) as labeled bars, folding
    the tail buckets into a final "(colder)" row."""
    heat_map = np.asarray(list(heat_map), dtype=np.float64)
    if heat_map.size != len(bucket_labels):
        raise ValueError("labels must cover every bucket")
    if max_rows < 2:
        raise ValueError("need at least two rows")
    if heat_map.size > max_rows:
        shown = heat_map[: max_rows - 1]
        labels = list(bucket_labels[: max_rows - 1]) + ["(colder)"]
        values = np.append(shown, heat_map[max_rows - 1:].sum())
    else:
        labels = list(bucket_labels)
        values = heat_map
    return hbar_chart(labels, values)


def series_panel(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    ascii_only: bool = False,
) -> str:
    """A panel of named sparklines with min/max annotations."""
    lines = []
    label_width = max((len(name) for name in series), default=0)
    for name, values in series.items():
        values = list(values)
        spark = sparkline(values, width=width, ascii_only=ascii_only)
        if values:
            annotation = f"min {min(values):g}  max {max(values):g}"
        else:
            annotation = "(empty)"
        lines.append(f"{name.ljust(label_width)}  {spark}  {annotation}")
    return "\n".join(lines)
