"""Metrics, latency modelling, and the paper's theoretical analysis.

* :mod:`repro.analysis.metrics` -- hot-page identification quality (F1,
  PPR), FMAR, and summary statistics used across the evaluation.
* :mod:`repro.analysis.latency` -- per-access latency mixtures and the
  average/median/P99 statistics of Figure 7.
* :mod:`repro.analysis.theory` -- Appendix B: the mean- vs max-value CIT
  estimators, the h(x, alpha) hotness-density family, and the n-round
  selection-efficiency analysis that justifies two-round filtering.
"""

from repro.analysis.latency import LatencyMixture
from repro.analysis.metrics import (
    f1_score,
    fast_tier_access_ratio,
    page_promotion_ratio,
    precision_recall,
)

__all__ = [
    "LatencyMixture",
    "f1_score",
    "fast_tier_access_ratio",
    "page_promotion_ratio",
    "precision_recall",
]
