"""Appendix B: the statistics behind candidate filtering.

Three results are reproduced here:

* **B.1, estimator variance** -- with CIT samples ``t_i ~ U[0, T0]``, the
  mean-value estimator ``T1 = (2/n) * sum(t_i)`` and the max-value
  estimator ``T2 = ((n+1)/n) * max(t_i)`` are both unbiased, but
  ``Var(T1) = T0^2 / (3n)`` while ``Var(T2) = T0^2 / (n(n+2))`` -- the
  max-value estimator (what two-round filtering implements) is strictly
  better, and is in fact the MVUE.
* **B.2, selection efficiency** -- a cold page with access period ``T_i``
  above the threshold ``TH`` still passes an ``n``-round filter with
  probability ``(TH/T_i)^n``.  With hotness density ``f`` over
  ``x = t/TH``, the real-hot ratio is ``R_f(n) = 1/(1+S_f(n))`` with
  ``S_f(n) = integral_1^inf f(x) x^-n dx``, and the efficiency
  ``E_f(n) = R_f(n)/n`` peaks at ``n = 2`` for realistic densities.
* **The h(x, alpha) density family** (Figure B1) used to model realistic
  hot-dense / cold-sparse distributions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import integrate


# ----------------------------------------------------------------------
# B.1: estimator variance
# ----------------------------------------------------------------------
def mean_estimator_variance(n_rounds: int, period: float = 1.0) -> float:
    """Closed-form variance of the mean-value estimator, T0^2 / (3n)."""
    _check_rounds(n_rounds)
    return period**2 / (3 * n_rounds)


def max_estimator_variance(n_rounds: int, period: float = 1.0) -> float:
    """Closed-form variance of the max-value estimator,
    T0^2 / (n (n+2))."""
    _check_rounds(n_rounds)
    return period**2 / (n_rounds * (n_rounds + 2))


def simulate_estimators(
    n_rounds: int,
    period: float,
    trials: int,
    rng: np.random.Generator,
) -> Tuple[Tuple[float, float], Tuple[float, float]]:
    """Monte-Carlo check of both estimators.

    Returns ``((mean_T1, var_T1), (mean_T2, var_T2))`` over ``trials``
    experiments of ``n_rounds`` uniform CIT samples each.
    """
    _check_rounds(n_rounds)
    if trials <= 0:
        raise ValueError("need at least one trial")
    samples = rng.uniform(0.0, period, size=(trials, n_rounds))
    t1 = 2.0 / n_rounds * samples.sum(axis=1)
    t2 = (n_rounds + 1) / n_rounds * samples.max(axis=1)
    return (
        (float(t1.mean()), float(t1.var())),
        (float(t2.mean()), float(t2.var())),
    )


def _check_rounds(n_rounds: int) -> None:
    if n_rounds < 1:
        raise ValueError("need at least one scan round")


# ----------------------------------------------------------------------
# The h(x, alpha) density family (Figure B1)
# ----------------------------------------------------------------------
def h_density(x: np.ndarray, alpha: float) -> np.ndarray:
    """The paper's hotness density ``h(x, alpha)``, unnormalized.

    ``h(x, a) = x^(1 - 1/a) * a^(a x + 1/(a x))`` for x > 0, with
    ``0 < a <= 1``.  Smaller alpha concentrates mass near x = 0 (dense hot
    region) and thins the cold tail.
    """
    _check_alpha(alpha)
    x = np.asarray(x, dtype=np.float64)
    if np.any(x <= 0):
        raise ValueError("h is defined for x > 0")
    exponent = alpha * x + 1.0 / (alpha * x)
    return np.power(x, 1.0 - 1.0 / alpha) * np.power(alpha, exponent)


def h_normalization(alpha: float) -> float:
    """``C_alpha`` such that the hot-region mass
    ``integral_0^1 h(x, a)/C_a dx`` equals 1."""
    _check_alpha(alpha)
    value, _ = integrate.quad(
        lambda x: float(h_density(np.array([x]), alpha)[0]),
        0.0,
        1.0,
        limit=200,
    )
    if value <= 0:
        raise ValueError(f"degenerate normalization for alpha={alpha}")
    return value


def h_density_normalized(x: np.ndarray, alpha: float) -> np.ndarray:
    """``h(x, alpha) / C_alpha`` -- the f(x) used in the efficiency
    integral."""
    return h_density(x, alpha) / h_normalization(alpha)


def _check_alpha(alpha: float) -> None:
    if not 0 < alpha <= 1:
        raise ValueError("alpha must be in (0, 1]")


# ----------------------------------------------------------------------
# B.2: selection efficiency
# ----------------------------------------------------------------------
def misclassified_mass(alpha: float, n_rounds: int) -> float:
    """``S_f(n) = integral_1^inf f(x) x^-n dx`` for f = normalized h."""
    _check_rounds(n_rounds)
    norm = h_normalization(alpha)

    def integrand(x: float) -> float:
        return float(h_density(np.array([x]), alpha)[0]) / norm / x**n_rounds

    value, _ = integrate.quad(integrand, 1.0, np.inf, limit=200)
    return value


def real_hot_ratio(alpha: float, n_rounds: int) -> float:
    """``R_f(n) = 1 / (1 + S_f(n))`` -- purity of the selected hot set."""
    return 1.0 / (1.0 + misclassified_mass(alpha, n_rounds))


def selection_efficiency(alpha: float, n_rounds: int) -> float:
    """``E_f(n) = R_f(n) / n`` -- purity per unit of scan cost."""
    return real_hot_ratio(alpha, n_rounds) / n_rounds


def selection_efficiency_uniform(n_rounds: int) -> float:
    """Closed form for alpha = 1 (h == 1): ``E(n) = (n-1) / n^2``.

    The integral ``S(n) = 1/(n-1)`` diverges for n = 1 -- a single-round
    filter over an unbounded uniform period distribution admits unbounded
    cold mass, so its efficiency is 0.
    """
    _check_rounds(n_rounds)
    if n_rounds == 1:
        return 0.0
    return (n_rounds - 1) / n_rounds**2


def best_round_count(alpha: float, max_rounds: int = 7) -> int:
    """The round count maximizing selection efficiency for this alpha."""
    if max_rounds < 2:
        raise ValueError("need to consider at least two round counts")
    efficiencies = [
        selection_efficiency(alpha, n) for n in range(2, max_rounds + 1)
    ]
    return 2 + int(np.argmax(efficiencies))
