"""Command-line interface: ``chrono-sim``.

Four subcommands:

* ``chrono-sim run`` -- one experiment (policy x workload), printing the
  headline metrics (optionally as JSON).
* ``chrono-sim compare`` -- several policies on identical fleets,
  printing the paper-style normalized tables.
* ``chrono-sim policies`` -- the available tiering systems and the
  Table 1 characteristics.
* ``chrono-sim defaults`` -- Chrono's Table 2 parameter defaults.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.harness.experiments import (
    EVALUATED_POLICIES,
    StandardSetup,
    graph500_processes,
    kvstore_processes,
    pmbench_processes,
    run_policy_comparison,
)
from repro.harness.reporting import (
    attribution_table,
    latency_table,
    throughput_table,
)
from repro.harness.runner import run_experiment
from repro.policies.registry import (
    characteristics_table,
    make_policy,
    policy_names,
)
from repro.sim.rng import RngStreams
from repro.sim.timeunits import SECOND
from repro.vm.process import SimProcess
from repro.workloads.dynamic import shifting_hotspot

WORKLOADS = (
    "pmbench", "graph500", "memcached", "redis", "shifting-hotspot",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="chrono-sim",
        description=(
            "Chrono (EuroSys '25) tiered-memory simulator: run tiering "
            "policies against synthetic memory-intensive workloads."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one experiment")
    _add_machine_args(run_p)
    run_p.add_argument(
        "--policy", default="chrono", choices=policy_names(),
        help="tiering policy (default: chrono)",
    )
    run_p.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of a table",
    )

    cmp_p = sub.add_parser(
        "compare", help="run several policies on identical fleets"
    )
    _add_machine_args(cmp_p)
    cmp_p.add_argument(
        "--policies", nargs="+", default=list(EVALUATED_POLICIES),
        choices=policy_names(), metavar="POLICY",
        help="policies to compare (default: the paper's six)",
    )
    cmp_p.add_argument(
        "--baseline", default="linux-nb",
        help="normalization baseline (default: linux-nb)",
    )

    sub.add_parser("policies", help="list policies and Table 1")
    sub.add_parser("defaults", help="print Chrono's Table 2 defaults")
    return parser


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload", default="pmbench", choices=WORKLOADS,
        help="workload family (default: pmbench)",
    )
    parser.add_argument("--procs", type=int, default=8,
                        help="number of processes (default: 8)")
    parser.add_argument("--pages", type=int, default=4_096,
                        help="pages per process (default: 4096)")
    parser.add_argument("--rw-ratio", type=float, default=0.95,
                        help="read share for pmbench (default: 0.95)")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds (default: 60)")
    parser.add_argument("--fast-pages", type=int, default=4_096,
                        help="fast-tier capacity (default: 4096)")
    parser.add_argument("--slow-pages", type=int, default=32_768,
                        help="slow-tier capacity (default: 32768)")
    parser.add_argument("--page-scale", type=int, default=64,
                        help="real pages per simulated page (default: 64)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root RNG seed (default: 0)")


def _setup_from_args(args) -> StandardSetup:
    return StandardSetup(
        fast_pages=args.fast_pages,
        slow_pages=args.slow_pages,
        page_scale=args.page_scale,
        duration_ns=int(args.duration * SECOND),
        seed=args.seed,
    )


def _fleet_factory(setup: StandardSetup, args):
    workload = args.workload
    if workload == "pmbench":
        return lambda: pmbench_processes(
            setup,
            n_procs=args.procs,
            pages_per_proc=args.pages,
            read_write_ratio=args.rw_ratio,
        )
    if workload == "graph500":
        return lambda: graph500_processes(
            setup, n_procs=args.procs, pages_per_proc=args.pages
        )
    if workload in ("memcached", "redis"):
        return lambda: kvstore_processes(
            setup,
            flavor=workload,
            n_procs=args.procs,
            pages_per_proc=args.pages,
        )
    if workload == "shifting-hotspot":

        def build():
            streams = RngStreams(setup.seed)
            return [
                SimProcess(
                    pid=pid,
                    workload=shifting_hotspot(
                        n_pages=args.pages,
                        phase_len_ns=setup.duration_ns // 2,
                    ),
                    rng=streams.spawn(f"shift-{pid}").get("access"),
                )
                for pid in range(args.procs)
            ]

        return build
    raise ValueError(f"unknown workload {workload!r}")


def cmd_run(args) -> int:
    setup = _setup_from_args(args)
    fleet = _fleet_factory(setup, args)
    policy = setup.build_policy(args.policy)
    result = run_experiment(fleet(), policy, setup.run_config())
    if args.json:
        payload = {
            "policy": result.policy_name,
            "workload": args.workload,
            "duration_sec": result.duration_ns / 1e9,
            "throughput_per_sec": result.throughput_per_sec,
            "fmar": result.fmar,
            "latency_ns": result.latency_summary,
            "kernel_time_fraction": result.kernel_time_fraction,
            "context_switches_per_sec": (
                result.context_switches_per_sec
            ),
            "counters": result.stats,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"policy            {result.policy_name}")
        print(f"workload          {args.workload}")
        print(f"simulated         {result.duration_ns / 1e9:.1f} s")
        print(
            f"throughput        {result.throughput_per_sec:.3e} ops/s"
        )
        print(f"FMAR              {100 * result.fmar:.1f} %")
        print(
            "latency avg/med/p99  "
            + " / ".join(
                f"{result.latency_summary[k]:.0f} ns"
                for k in ("average", "median", "p99")
            )
        )
        print(
            f"kernel time       "
            f"{100 * result.kernel_time_fraction:.1f} %"
        )
        print(
            f"promoted/demoted  {result.stats['pgpromote']:.0f} / "
            f"{result.stats['pgdemote']:.0f} pages"
        )
    return 0


def cmd_compare(args) -> int:
    setup = _setup_from_args(args)
    fleet = _fleet_factory(setup, args)
    if args.baseline not in args.policies:
        print(
            f"error: baseline {args.baseline!r} must be among the "
            f"compared policies",
            file=sys.stderr,
        )
        return 2
    results = run_policy_comparison(
        setup, fleet, policies=args.policies
    )
    title = (
        f"{args.workload}, {args.procs} procs x {args.pages} pages, "
        f"{args.duration:.0f}s simulated"
    )
    print(throughput_table(results, title, baseline=args.baseline))
    print()
    print(latency_table(results, "Latency", baseline=args.baseline))
    print()
    print(attribution_table(results, "Run-time characteristics"))
    return 0


def cmd_policies(_args) -> int:
    print("Available policies:", ", ".join(policy_names()))
    print()
    print(characteristics_table())
    return 0


def cmd_defaults(_args) -> int:
    from repro.kernel.kernel import Kernel

    kernel = Kernel()
    kernel.set_policy(make_policy("chrono"))
    print(kernel.sysctl.describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "compare": cmd_compare,
        "policies": cmd_policies,
        "defaults": cmd_defaults,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
