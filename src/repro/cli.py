"""Command-line interface: ``chrono-sim``.

Nine subcommands:

* ``chrono-sim run`` -- one experiment (policy x workload), printing the
  headline metrics (optionally as JSON).  ``--profile`` adds
  per-subsystem wall-time shares, ``--trace FILE`` streams structured
  events to a JSONL file, ``--metrics`` reports the metrics-registry
  snapshot, and ``--observe FILE`` turns all three on at once.
* ``chrono-sim trace`` -- filter and aggregate a JSONL trace written by
  ``run --trace``: event-type summary, per-epoch migration counts, and
  per-page timelines (``--page PID:VPN``).
* ``chrono-sim compare`` -- several policies on identical fleets,
  printing the paper-style normalized tables; ``--jobs N`` fans the
  policies out over a worker pool through the sweep layer.
* ``chrono-sim sweep`` -- a (policy x seed) grid through the parallel
  sweep layer with result caching; ``--progress`` streams per-cell
  timing and an ETA as cells complete.
* ``chrono-sim tournament`` -- every registered tiering system across
  several workload families, scored against per-workload all-DRAM
  reference runs and ranked by geomean slowdown; prints the
  leaderboard and writes a JSON artifact.
* ``chrono-sim replay`` -- compile recorded traces (window ``.npz``,
  event ``.npz``, or event ``.csv``) through the trace compiler and
  replay them on the fused fast path under any policy.
* ``chrono-sim traffic`` -- the fleet traffic generator: Zipf tenant
  popularity, diurnal load, churn, and scripted phase shifts at
  arena+interning speed.
* ``chrono-sim policies`` -- the available tiering systems and the
  Table 1 characteristics.
* ``chrono-sim defaults`` -- Chrono's Table 2 parameter defaults.

The event schema and metric catalogue behind ``--trace``/``--metrics``
are documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.harness.experiments import (
    EVALUATED_POLICIES,
    TOURNAMENT_POLICIES,
    StandardSetup,
    build_fleet,
    policy_comparison_cells,
    sweep_policy_comparison,
)
from repro.harness.reporting import (
    attribution_table,
    format_table,
    latency_table,
    throughput_table,
)
from repro.harness.runner import run_experiment
from repro.harness.sweep import default_jobs, iter_cells
from repro.obs.hub import ObsHub
from repro.obs.tracefile import (
    epoch_migrations,
    page_timeline,
    read_events,
    summarize,
)
from repro.policies.registry import (
    characteristics_table,
    make_policy,
    policy_names,
)
from repro.sim.timeunits import MILLISECOND, SECOND

WORKLOADS = (
    "pmbench", "graph500", "memcached", "multitenant", "redis",
    "shifting-hotspot", "traffic",
)


def build_parser() -> argparse.ArgumentParser:
    """Build the ``chrono-sim`` argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="chrono-sim",
        description=(
            "Chrono (EuroSys '25) tiered-memory simulator: run tiering "
            "policies against synthetic memory-intensive workloads."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one experiment")
    _add_machine_args(run_p)
    run_p.add_argument(
        "--policy", default="chrono", choices=policy_names(),
        help="tiering policy (default: chrono)",
    )
    run_p.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of a table",
    )
    run_p.add_argument(
        "--profile", action="store_true",
        help="report per-subsystem wall-time shares",
    )
    run_p.add_argument(
        "--trace", metavar="FILE",
        help="stream structured trace events to FILE (JSONL; see "
        "docs/OBSERVABILITY.md for the event schema)",
    )
    run_p.add_argument(
        "--metrics", action="store_true",
        help="collect and report the metrics-registry snapshot",
    )
    run_p.add_argument(
        "--observe", metavar="FILE",
        help="one-flag observability: implies --profile --metrics "
        "--trace FILE",
    )

    trace_p = sub.add_parser(
        "trace",
        help="filter/aggregate a JSONL trace from `run --trace`",
    )
    trace_p.add_argument("file", help="JSONL trace file to read")
    trace_p.add_argument(
        "--epoch-sec", type=float, default=1.0, metavar="SEC",
        help="epoch length for the migration timeline (default: 1.0)",
    )
    trace_p.add_argument(
        "--page", metavar="PID:VPN",
        help="print the event timeline of one page instead of the "
        "aggregate views",
    )
    trace_p.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of tables",
    )

    cmp_p = sub.add_parser(
        "compare", help="run several policies on identical fleets"
    )
    _add_machine_args(cmp_p)
    cmp_p.add_argument(
        "--policies", nargs="+", default=list(EVALUATED_POLICIES),
        choices=policy_names(), metavar="POLICY",
        help="policies to compare (default: the paper's six)",
    )
    cmp_p.add_argument(
        "--baseline", default="linux-nb",
        help="normalization baseline (default: linux-nb)",
    )
    _add_sweep_args(cmp_p)
    cmp_p.add_argument(
        "--profile", action="store_true",
        help="append per-policy subsystem wall-time shares",
    )

    sweep_p = sub.add_parser(
        "sweep",
        help="run a (policy x seed) grid through the parallel sweep "
        "layer with result caching",
    )
    _add_machine_args(sweep_p)
    sweep_p.add_argument(
        "--policies", nargs="+", default=list(EVALUATED_POLICIES),
        choices=policy_names(), metavar="POLICY",
        help="policies to sweep (default: the paper's six)",
    )
    sweep_p.add_argument(
        "--seeds", type=int, nargs="+", default=[0], metavar="SEED",
        help="seeds to sweep (default: 0)",
    )
    sweep_p.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of a table",
    )
    sweep_p.add_argument(
        "--progress", action="store_true",
        help=(
            "stream one line per completed cell (wall time, result "
            "source, ETA) to stderr while the grid runs"
        ),
    )
    _add_sweep_args(sweep_p)

    tour_p = sub.add_parser(
        "tournament",
        help="rank every tiering system across workload families "
        "against all-DRAM references",
    )
    tour_p.add_argument(
        "--policies", nargs="+", default=list(TOURNAMENT_POLICIES),
        choices=policy_names(), metavar="POLICY",
        help="policies to rank (default: all 12 distinct systems)",
    )
    tour_p.add_argument(
        "--workloads", nargs="+", metavar="WORKLOAD",
        default=["pmbench", "graph500", "memcached"],
        choices=WORKLOADS,
        help="workload families (default: pmbench graph500 memcached)",
    )
    tour_p.add_argument(
        "--seeds", type=int, nargs="+", default=[0], metavar="SEED",
        help="seeds per (policy, workload) cell (default: 0)",
    )
    tour_p.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds per cell (default: 60)")
    tour_p.add_argument("--fast-pages", type=int, default=4_096,
                        help="fast-tier capacity (default: 4096)")
    tour_p.add_argument("--slow-pages", type=int, default=32_768,
                        help="slow-tier capacity (default: 32768)")
    tour_p.add_argument("--page-scale", type=int, default=64,
                        help="real pages per simulated page (default: 64)")
    tour_p.add_argument(
        "--no-fusion", action="store_true",
        help="disable event-horizon quantum fusion in every cell",
    )
    tour_p.add_argument(
        "--no-arena", action="store_true",
        help="disable cross-process arena stepping in every cell",
    )
    tour_p.add_argument(
        "--no-intern", action="store_true",
        help="disable arena distribution interning in every cell",
    )
    tour_p.add_argument(
        "--out", metavar="FILE", default="tournament.json",
        help="leaderboard JSON artifact path (default: "
        "tournament.json)",
    )
    tour_p.add_argument(
        "--json", action="store_true",
        help="print the JSON artifact to stdout instead of the table",
    )
    tour_p.add_argument(
        "--progress", action="store_true",
        help="stream one line per completed cell to stderr",
    )
    _add_sweep_args(tour_p)

    replay_p = sub.add_parser(
        "replay",
        help="compile recorded traces and replay them on the fused "
        "fast path",
    )
    replay_p.add_argument(
        "files", nargs="+", metavar="FILE",
        help="trace files: recorder window .npz, event .npz "
        "(timestamp_ns/pid/vpn/is_write), or event .csv",
    )
    replay_p.add_argument(
        "--policy", default="chrono", choices=policy_names(),
        help="tiering policy (default: chrono)",
    )
    replay_p.add_argument(
        "--window-ms", type=float, default=None, metavar="MS",
        help="binning window for event-format traces (default: 1000; "
        "window-format traces always use their recorded interval)",
    )
    replay_p.add_argument(
        "--threshold", type=float, default=0.25,
        help="total-variation change-point threshold for phase "
        "segmentation (default: 0.25)",
    )
    replay_p.add_argument(
        "--delay-units", type=int, default=0,
        help="per-access think time added to every replayed process, "
        "in pmbench delay units (default: 0)",
    )
    replay_p.add_argument(
        "--duration", type=float, default=0.0,
        help="simulated seconds (default: one full replay cycle of "
        "the longest compiled trace)",
    )
    replay_p.add_argument("--fast-pages", type=int, default=4_096,
                          help="fast-tier capacity (default: 4096)")
    replay_p.add_argument("--slow-pages", type=int, default=32_768,
                          help="slow-tier capacity (default: 32768)")
    replay_p.add_argument(
        "--page-scale", type=int, default=64,
        help="real pages per simulated page (default: 64)",
    )
    replay_p.add_argument("--seed", type=int, default=0,
                          help="root RNG seed (default: 0)")
    replay_p.add_argument(
        "--no-fusion", action="store_true",
        help="disable event-horizon quantum fusion",
    )
    replay_p.add_argument(
        "--no-arena", action="store_true",
        help="disable cross-process arena stepping",
    )
    replay_p.add_argument(
        "--no-intern", action="store_true",
        help="disable arena distribution interning",
    )
    replay_p.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of a table",
    )

    traffic_p = sub.add_parser(
        "traffic",
        help="run the fleet traffic generator (Zipf tenants, diurnal "
        "load, churn, phase shifts) under one policy",
    )
    _add_machine_args(traffic_p)
    traffic_p.add_argument(
        "--policy", default="chrono", choices=policy_names(),
        help="tiering policy (default: chrono)",
    )
    traffic_p.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of a table",
    )

    sub.add_parser("policies", help="list policies and Table 1")
    sub.add_parser("defaults", help="print Chrono's Table 2 defaults")
    return parser


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload", default="pmbench", choices=WORKLOADS,
        help="workload family (default: pmbench)",
    )
    parser.add_argument("--procs", type=int, default=8,
                        help="number of processes (default: 8)")
    parser.add_argument("--pages", type=int, default=4_096,
                        help="pages per process (default: 4096)")
    parser.add_argument("--rw-ratio", type=float, default=0.95,
                        help="read share for pmbench (default: 0.95)")
    parser.add_argument(
        "--tenants", type=int, default=50,
        help="tenant count for the multitenant workload (default: 50)",
    )
    parser.add_argument(
        "--delay-step-units", type=int, default=1,
        help="per-tenant pmbench delay step for the multitenant "
        "workload: tenant i stalls i*STEP delay units per access "
        "(default: 1)",
    )
    parser.add_argument(
        "--base-delay-units", type=int, default=0,
        help="uniform pmbench think time added to every multitenant "
        "tenant on top of the per-tenant stagger (default: 0)",
    )
    parser.add_argument(
        "--distinct-tables", type=int, default=1,
        help="distinct distribution tables shared round-robin across "
        "multitenant tenants (default: 1; >1 exercises the arena's "
        "distribution interning)",
    )
    parser.add_argument(
        "--users", type=int, default=1_000_000,
        help="simulated users mapped onto traffic-workload tenants "
        "via Zipf popularity (default: 1000000)",
    )
    parser.add_argument(
        "--patterns", type=int, default=8,
        help="distinct shared page-popularity tables for the traffic "
        "workload (default: 8)",
    )
    parser.add_argument(
        "--zipf", type=float, default=1.1,
        help="Zipf exponent of traffic-workload tenant popularity "
        "(default: 1.1)",
    )
    parser.add_argument(
        "--churn-fraction", type=float, default=0.0,
        help="fraction of traffic-workload tenants that churn: half "
        "exit mid-run, half spawn mid-run (default: 0)",
    )
    parser.add_argument(
        "--shift-fraction", type=float, default=0.0,
        help="fraction of traffic-workload tenants with scripted "
        "phase shifts between two pattern tables (default: 0)",
    )
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds (default: 60)")
    parser.add_argument("--fast-pages", type=int, default=4_096,
                        help="fast-tier capacity (default: 4096)")
    parser.add_argument("--slow-pages", type=int, default=32_768,
                        help="slow-tier capacity (default: 32768)")
    parser.add_argument("--page-scale", type=int, default=64,
                        help="real pages per simulated page (default: 64)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root RNG seed (default: 0)")
    parser.add_argument(
        "--no-fusion", action="store_true",
        help=(
            "disable event-horizon quantum fusion (per-quantum "
            "reference stepping; slower, for equivalence checking)"
        ),
    )
    parser.add_argument(
        "--no-arena", action="store_true",
        help=(
            "disable cross-process arena stepping (per-process "
            "fast-path stepping; slower, for equivalence checking)"
        ),
    )
    parser.add_argument(
        "--no-intern", action="store_true",
        help=(
            "disable distribution interning inside the arena "
            "(uninterned arena stepping; slower on fleets sharing "
            "compiled tables, for equivalence checking)"
        ),
    )


def _jobs_arg(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            "must be >= 0 (0 picks one worker per core)"
        )
    return jobs


def _add_sweep_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_jobs_arg, default=1, metavar="N",
        help=(
            "worker processes for the experiment grid "
            f"(default: 1; this host would use {default_jobs()} "
            "with --jobs 0)"
        ),
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache",
    )
    parser.add_argument(
        "--no-shm", action="store_true",
        help=(
            "do not share compiled workload tables with sweep workers "
            "(each worker rebuilds its own copy)"
        ),
    )


def _setup_from_args(args) -> StandardSetup:
    return StandardSetup(
        fast_pages=args.fast_pages,
        slow_pages=args.slow_pages,
        page_scale=args.page_scale,
        duration_ns=int(args.duration * SECOND),
        seed=args.seed,
    )


def _setup_kwargs(args) -> dict:
    """StandardSetup overrides for declarative sweep cells (sans seed)."""
    return dict(
        fast_pages=args.fast_pages,
        slow_pages=args.slow_pages,
        page_scale=args.page_scale,
        duration_ns=int(args.duration * SECOND),
    )


def _config_overrides(args) -> dict:
    """RunConfig overrides derived from engine-mode flags."""
    overrides = {}
    if args.no_fusion:
        overrides["fusion"] = False
    if args.no_arena:
        overrides["arena"] = False
    if args.no_intern:
        overrides["intern"] = False
    return overrides


def _workload_kwargs(args) -> dict:
    if args.workload == "multitenant":
        return dict(
            n_tenants=args.tenants,
            pages_per_tenant=args.pages,
            delay_step_units=args.delay_step_units,
            n_distinct=args.distinct_tables,
            read_write_ratio=args.rw_ratio,
            base_delay_units=args.base_delay_units,
        )
    if args.workload == "traffic":
        return dict(
            n_tenants=args.tenants,
            n_users=args.users,
            pages_per_tenant=args.pages,
            n_patterns=args.patterns,
            zipf_s=args.zipf,
            # the multitenant flag's 0 default means "unset" here: the
            # traffic generator needs a positive think-time base
            base_delay_units=args.base_delay_units or 200,
            churn_fraction=args.churn_fraction,
            phase_shift_fraction=args.shift_fraction,
        )
    kwargs = dict(n_procs=args.procs, pages_per_proc=args.pages)
    if args.workload == "pmbench":
        kwargs["read_write_ratio"] = args.rw_ratio
    return kwargs


def _resolve_jobs(jobs: int) -> int:
    return default_jobs() if jobs == 0 else jobs


def cmd_run(args) -> int:
    """Run one experiment and print (or JSON-dump) its metrics."""
    if args.observe:
        args.profile = True
        args.metrics = True
        args.trace = args.trace or args.observe
    setup = _setup_from_args(args)
    policy = setup.build_policy(args.policy)
    processes = build_fleet(
        setup, args.workload, **_workload_kwargs(args)
    )
    hub = None
    if args.trace or args.metrics:
        hub = ObsHub.create(trace_sink=args.trace, metrics=args.metrics)
    try:
        result = run_experiment(
            processes, policy, setup.run_config(**_config_overrides(args)),
            profile=args.profile, obs=hub,
        )
    finally:
        if hub is not None:
            hub.close()
    if args.json:
        payload = {
            "policy": result.policy_name,
            "workload": args.workload,
            "duration_sec": result.duration_ns / 1e9,
            "throughput_per_sec": result.throughput_per_sec,
            "fmar": result.fmar,
            "latency_ns": result.latency_summary,
            "kernel_time_fraction": result.kernel_time_fraction,
            "context_switches_per_sec": (
                result.context_switches_per_sec
            ),
            "counters": result.stats,
        }
        if args.profile:
            payload["profile"] = result.profile
        if args.metrics:
            payload["metrics"] = result.metrics
        print(json.dumps(payload, indent=2))
    else:
        print(f"policy            {result.policy_name}")
        print(f"workload          {args.workload}")
        print(f"simulated         {result.duration_ns / 1e9:.1f} s")
        print(
            f"throughput        {result.throughput_per_sec:.3e} ops/s"
        )
        print(f"FMAR              {100 * result.fmar:.1f} %")
        print(
            "latency avg/med/p99  "
            + " / ".join(
                f"{result.latency_summary[k]:.0f} ns"
                for k in ("average", "median", "p99")
            )
        )
        print(
            f"kernel time       "
            f"{100 * result.kernel_time_fraction:.1f} %"
        )
        print(
            f"promoted/demoted  {result.stats['pgpromote']:.0f} / "
            f"{result.stats['pgdemote']:.0f} pages"
        )
        if args.profile and result.profile:
            print()
            print("wall-time profile")
            print(_profile_table(result.profile))
        if args.metrics and result.metrics:
            print()
            print(_metrics_tables(result.metrics))
        if args.trace:
            print()
            print(f"trace written to {args.trace}")
    return 0


def _profile_table(profile: dict) -> str:
    """Format profile rows, hottest subsystem first.

    ``Profiler.report`` already orders its dict by descending
    wall-time, but profiles that round-tripped through JSON (the result
    cache, sweep workers) carry no ordering guarantee, so sort here.
    """
    rows = [
        [name, row["seconds"], 100.0 * row["share"]]
        for name, row in sorted(
            profile.items(), key=lambda item: -item[1]["seconds"]
        )
    ]
    return format_table(["subsystem", "seconds", "share %"], rows)


def _metrics_tables(metrics: dict) -> str:
    """Format a metrics snapshot: counters, gauges, histograms."""
    parts = []
    counters = [
        [name, value]
        for name, value in sorted(metrics["counters"].items())
        if value
    ]
    if counters:
        parts.append(format_table(["counter", "value"], counters,
                                  title="metrics: counters (nonzero)"))
    gauges = [
        [name, value]
        for name, value in sorted(metrics["gauges"].items())
    ]
    if gauges:
        parts.append(format_table(["gauge", "value"], gauges,
                                  title="metrics: gauges"))
    histograms = [
        [name, hist["total"], hist["sum"] / hist["total"]]
        for name, hist in sorted(metrics["histograms"].items())
        if hist["total"]
    ]
    if histograms:
        parts.append(format_table(["histogram", "count", "mean"],
                                  histograms,
                                  title="metrics: histograms"))
    return "\n\n".join(parts) if parts else "metrics: all zero"


def _parse_page_arg(value: str) -> tuple:
    """Parse the ``--page PID:VPN`` argument into an int pair."""
    try:
        pid_str, vpn_str = value.split(":", 1)
        return int(pid_str), int(vpn_str)
    except ValueError:
        raise SystemExit(
            f"error: --page expects PID:VPN (got {value!r})"
        )


def cmd_trace(args) -> int:
    """Aggregate a JSONL trace: summary, epochs, or a page timeline."""
    if args.page is not None:
        pid, vpn = _parse_page_arg(args.page)
        rows = page_timeline(read_events(args.file), pid, vpn)
        if args.json:
            print(json.dumps(rows, indent=2))
            return 0
        if not rows:
            print(f"no events mention page {pid}:{vpn}")
            return 0
        table = [
            [
                row["t"] / 1e9,
                row["type"],
                ", ".join(
                    f"{key}={value}"
                    for key, value in row.items()
                    if key not in ("t", "type")
                ),
            ]
            for row in rows
        ]
        print(format_table(
            ["t (s)", "event", "detail"], table,
            title=f"page {pid}:{vpn} timeline",
        ))
        return 0

    epoch_ns = int(args.epoch_sec * SECOND)
    summary = summarize(read_events(args.file))
    epochs = epoch_migrations(read_events(args.file), epoch_ns)
    if args.json:
        print(json.dumps({"summary": summary, "epochs": epochs},
                         indent=2))
        return 0
    type_rows = [
        [name, row["count"], row["t_first"] / 1e9, row["t_last"] / 1e9]
        for name, row in summary["by_type"].items()
    ]
    print(format_table(
        ["event type", "count", "first (s)", "last (s)"], type_rows,
        title=f"{args.file}: {summary['total']} events",
    ))
    if epochs:
        print()
        epoch_rows = [
            [
                row["t_start"] / 1e9,
                row["promoted"],
                row["demoted"],
                row["faults"],
                row["scan_windows"],
            ]
            for row in epochs
        ]
        print(format_table(
            ["epoch (s)", "promoted", "demoted", "faults", "scans"],
            epoch_rows,
            title=f"migration timeline ({args.epoch_sec:g}s epochs)",
        ))
    return 0


def cmd_compare(args) -> int:
    """Compare policies on identical fleets, normalized to a baseline."""
    if args.baseline not in args.policies:
        print(
            f"error: baseline {args.baseline!r} must be among the "
            f"compared policies",
            file=sys.stderr,
        )
        return 2
    results = sweep_policy_comparison(
        args.workload,
        policies=args.policies,
        jobs=_resolve_jobs(args.jobs),
        use_cache=not args.no_cache,
        profile=args.profile,
        seed=args.seed,
        workload_kwargs=_workload_kwargs(args),
        setup_kwargs=_setup_kwargs(args),
        config_overrides=_config_overrides(args),
        share_tables=not args.no_shm,
    )
    title = (
        f"{args.workload}, {args.procs} procs x {args.pages} pages, "
        f"{args.duration:.0f}s simulated"
    )
    print(throughput_table(results, title, baseline=args.baseline))
    print()
    print(latency_table(results, "Latency", baseline=args.baseline))
    print()
    print(attribution_table(results, "Run-time characteristics"))
    if args.profile:
        for name, summary in results.items():
            if not summary.profile:
                continue
            print()
            print(f"wall-time profile: {name}")
            print(_profile_table(summary.profile))
    return 0


def cmd_sweep(args) -> int:
    """Run a (policy x seed) grid through the cached sweep layer."""
    cells = []
    for seed in args.seeds:
        cells.extend(
            policy_comparison_cells(
                args.workload,
                policies=args.policies,
                seed=seed,
                workload_kwargs=_workload_kwargs(args),
                setup_kwargs=_setup_kwargs(args),
                config_overrides=_config_overrides(args),
            )
        )
    jobs = _resolve_jobs(args.jobs)
    results: List[Optional[object]] = [None] * len(cells)
    done = 0
    executed_walls: List[float] = []
    for result in iter_cells(
        cells,
        jobs=jobs,
        use_cache=not args.no_cache,
        share_tables=not args.no_shm,
    ):
        results[result.index] = result
        done += 1
        if result.source == "run":
            executed_walls.append(result.wall_sec)
        if args.progress:
            remaining = len(cells) - done
            if executed_walls and remaining:
                mean_wall = sum(executed_walls) / len(executed_walls)
                eta = f"eta {mean_wall * remaining / jobs:6.1f}s"
            else:
                eta = "eta    0.0s" if not remaining else "eta      ?"
            cell = result.cell
            print(
                f"[{done:>{len(str(len(cells)))}}/{len(cells)}] "
                f"{cell.policy:<10} {cell.workload:<10} "
                f"seed={cell.seed:<3} {result.wall_sec:7.2f}s "
                f"{result.source:<6} {eta}",
                file=sys.stderr,
            )
    summaries = [result.summary for result in results]
    if args.json:
        payload = [
            {
                "policy": result.cell.policy,
                "workload": result.cell.workload,
                "seed": result.cell.seed,
                "cached": result.summary.cached,
                # host wall time is deliberately omitted: the JSON
                # payload stays byte-identical across jobs/reruns
                "source": result.source,
                **result.summary.to_dict(),
            }
            for result in results
        ]
        print(json.dumps(payload, indent=2))
        return 0
    rows = [
        [
            cell.policy,
            cell.seed,
            summary.throughput_per_sec,
            100.0 * summary.fmar,
            summary.latency_summary["p99"],
            result.source,
        ]
        for cell, summary, result in zip(cells, summaries, results)
    ]
    print(
        format_table(
            ["policy", "seed", "ops/sec", "FMAR %", "p99 ns", "cache"],
            rows,
            title=(
                f"{args.workload} sweep: {len(cells)} cells, "
                f"jobs={jobs}"
            ),
        )
    )
    return 0


def cmd_tournament(args) -> int:
    """Run the cross-policy tournament and print the leaderboard."""
    from repro.harness.tournament import run_tournament

    jobs = _resolve_jobs(args.jobs)
    setup_kwargs = dict(
        fast_pages=args.fast_pages,
        slow_pages=args.slow_pages,
        page_scale=args.page_scale,
        duration_ns=int(args.duration * SECOND),
    )

    def progress(result, done, total) -> None:
        cell = result.cell
        label = cell.label or cell.policy
        print(
            f"[{done:>{len(str(total))}}/{total}] "
            f"{label:<12} {cell.workload:<10} seed={cell.seed:<3} "
            f"{result.wall_sec:7.2f}s {result.source}",
            file=sys.stderr,
        )

    result = run_tournament(
        policies=args.policies,
        workloads=args.workloads,
        seeds=args.seeds,
        jobs=jobs,
        use_cache=not args.no_cache,
        share_tables=not args.no_shm,
        setup_kwargs=setup_kwargs,
        config_overrides=_config_overrides(args),
        progress=progress if args.progress else None,
    )
    result.write_json(args.out)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
        print()
        print(f"leaderboard JSON written to {args.out}")
    return 0


def _fusion_ratio(engine) -> float:
    """Fraction of simulated quanta the engine covered with fused steps."""
    if engine is None or not engine.quanta_run:
        return 0.0
    return engine.fused_quanta / engine.quanta_run


def cmd_replay(args) -> int:
    """Compile trace files and replay them under one policy."""
    from repro.sim.rng import RngStreams
    from repro.vm.process import SimProcess
    from repro.workloads.compile import compile_trace_file

    window_ns = (
        int(args.window_ms * MILLISECOND)
        if args.window_ms is not None
        else None
    )
    compiled = {}
    for path in args.files:
        for pid, trace in compile_trace_file(
            path, window_ns=window_ns, threshold=args.threshold
        ).items():
            compiled[len(compiled)] = (path, pid, trace)
    streams = RngStreams(args.seed)
    processes = [
        SimProcess(
            pid=new_pid,
            workload=trace.to_workload(
                delay_ns_per_access=args.delay_units * 50 / 2.6
            ),
            rng=streams.spawn(f"replay-{new_pid}").get("access"),
            name=f"replay-{new_pid}",
        )
        for new_pid, (_, _, trace) in compiled.items()
    ]
    duration_ns = (
        int(args.duration * SECOND)
        if args.duration > 0
        else max(t.total_ns for _, _, t in compiled.values())
    )
    setup = StandardSetup(
        fast_pages=args.fast_pages,
        slow_pages=args.slow_pages,
        page_scale=args.page_scale,
        duration_ns=duration_ns,
        seed=args.seed,
    )
    policy = setup.build_policy(args.policy)
    result = run_experiment(
        processes, policy, setup.run_config(**_config_overrides(args))
    )
    ratio = _fusion_ratio(result.engine)
    traces = [
        {
            "file": str(path),
            "trace_pid": pid,
            "replay_pid": new_pid,
            "n_events": trace.n_events,
            "n_windows": trace.n_windows,
            "n_idle_windows": trace.n_idle_windows,
            "n_phases": trace.n_phases,
            "n_pages": trace.n_pages,
            "cycle_sec": trace.total_ns / 1e9,
        }
        for new_pid, (path, pid, trace) in compiled.items()
    ]
    if args.json:
        print(json.dumps({
            "policy": result.policy_name,
            "duration_sec": result.duration_ns / 1e9,
            "throughput_per_sec": result.throughput_per_sec,
            "fmar": result.fmar,
            "fusion_ratio": ratio,
            "traces": traces,
        }, indent=2))
        return 0
    print(f"policy            {result.policy_name}")
    print(f"replayed traces   {len(traces)}")
    print(f"simulated         {result.duration_ns / 1e9:.1f} s")
    print(f"throughput        {result.throughput_per_sec:.3e} ops/s")
    print(f"FMAR              {100 * result.fmar:.1f} %")
    print(f"fusion ratio      {100 * ratio:.1f} %")
    print()
    print(format_table(
        ["file", "pid", "events", "windows", "idle", "phases"],
        [
            [
                row["file"], row["trace_pid"], row["n_events"],
                row["n_windows"], row["n_idle_windows"],
                row["n_phases"],
            ]
            for row in traces
        ],
        title="compiled traces",
    ))
    return 0


def cmd_traffic(args) -> int:
    """Run the fleet traffic generator under one policy."""
    args.workload = "traffic"
    setup = _setup_from_args(args)
    policy = setup.build_policy(args.policy)
    hub = ObsHub.create(metrics=True)
    try:
        processes = build_fleet(
            setup, "traffic", obs=hub, **_workload_kwargs(args)
        )
        result = run_experiment(
            processes, policy,
            setup.run_config(**_config_overrides(args)), obs=hub,
        )
        gauges = hub.snapshot()["gauges"]
    finally:
        hub.close()
    ratio = _fusion_ratio(result.engine)
    finished = sum(process.finished for process in processes)
    payload = {
        "policy": result.policy_name,
        "n_tenants": args.tenants,
        "n_users": args.users,
        "n_patterns": args.patterns,
        "duration_sec": result.duration_ns / 1e9,
        "throughput_per_sec": result.throughput_per_sec,
        "fmar": result.fmar,
        "fusion_ratio": ratio,
        "tenants_exited": finished,
        "interned_classes": gauges.get("arena.interned_classes", 0.0),
        "interned_segments": gauges.get(
            "arena.interned_segments", 0.0
        ),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"policy            {result.policy_name}")
    print(f"tenants           {args.tenants} "
          f"({args.users} users, {args.patterns} patterns)")
    print(f"simulated         {result.duration_ns / 1e9:.1f} s")
    print(f"throughput        {result.throughput_per_sec:.3e} ops/s")
    print(f"FMAR              {100 * result.fmar:.1f} %")
    print(f"fusion ratio      {100 * ratio:.1f} %")
    print(f"tenants exited    {finished}")
    print(f"interned          "
          f"{payload['interned_segments']:.0f} segments in "
          f"{payload['interned_classes']:.0f} classes")
    return 0


def cmd_policies(_args) -> int:
    """List the available policies and the Table 1 characteristics."""
    print("Available policies:", ", ".join(policy_names()))
    print()
    print(characteristics_table())
    return 0


def cmd_defaults(_args) -> int:
    """Print Chrono's Table 2 parameter defaults."""
    from repro.kernel.kernel import Kernel

    kernel = Kernel()
    kernel.set_policy(make_policy("chrono"))
    print(kernel.sysctl.describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: dispatch to the chosen subcommand."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "trace": cmd_trace,
        "compare": cmd_compare,
        "sweep": cmd_sweep,
        "tournament": cmd_tournament,
        "replay": cmd_replay,
        "traffic": cmd_traffic,
        "policies": cmd_policies,
        "defaults": cmd_defaults,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
