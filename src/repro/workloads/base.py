"""Workload interface.

A workload answers three questions every simulation quantum:

1. *Where* does the process access memory?  (``access_distribution`` -- a
   probability vector over its pages.)
2. *How* does it access memory?  (``write_fraction`` -- the store share.)
3. *How fast* can it issue accesses?  (``delay_ns_per_access`` -- compute
   stall between accesses; 0 for a pure memory-bound loop.)

Workloads may be phase-changing: ``advance(now_ns)`` lets them rotate their
distribution (BFS frontiers, diurnal key popularity, ...).  The cached
distribution is only rebuilt when a phase actually changes, keeping the
per-quantum cost at a single array read.

Ground truth: ``hot_page_mask`` marks the pages the workload itself
considers hot (e.g. the central 25% of a Gaussian pattern).  The F1/PPR
experiments compare policies against this oracle.

Compiled-table cache
--------------------

Building a workload's access tables can dwarf the simulation itself
(the Graph500 builder constructs an actual scale-free graph and runs a
BFS).  The tables are pure functions of the constructor parameters, so
the module keeps a process-global LRU (:func:`cached_tables`) mapping a
canonical parameter key to the compiled, **read-only** arrays.  Sweep
cells that differ only in policy/seed/delay rebuild nothing, warm sweep
workers reuse tables across cells, and the shared-memory transport
(:mod:`repro.harness.shm`) seeds the same cache in worker processes so
an 8-job sweep holds one copy of each distribution.
"""

from __future__ import annotations

import json
import weakref
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import numpy as np

#: distinct table sets retained in the process-global LRU
TABLE_CACHE_CAPACITY = 64

_TABLE_CACHE: "OrderedDict[str, Dict[str, np.ndarray]]" = OrderedDict()
_TABLE_STATS: Dict[str, int] = {
    "hits": 0,
    "builds": 0,
    "seeded": 0,
    "misses": 0,
}

#: reverse index from a cached array's identity to its canonical cache
#: key: ``id(array) -> (key, table_name, weakref)``.  The weakref guards
#: against id reuse after an eviction frees the array; entries are
#: pruned opportunistically when the index outgrows the cache.
_ARRAY_KEYS: Dict[int, Tuple[str, str, "weakref.ref"]] = {}
_ARRAY_KEYS_SWEEP_LEN = 8 * TABLE_CACHE_CAPACITY


def table_key(kind: str, **params: Any) -> str:
    """Canonical cache key for one workload's compiled tables.

    ``kind`` names the builder (usually the workload's ``name``) and
    ``params`` must include *every* parameter the tables depend on --
    and nothing else, so cells differing only in non-table knobs
    (delay, read/write mix, policy, seed) share an entry.
    """
    return json.dumps(
        {"kind": kind, "params": params}, sort_keys=True, allow_nan=False
    )


def _freeze(tables: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Mark every table read-only (shared across workload instances)."""
    frozen = {}
    for name, array in tables.items():
        array = np.asarray(array)
        array.setflags(write=False)
        frozen[name] = array
    return frozen


def _register_fingerprints(
    key: str, tables: Mapping[str, np.ndarray]
) -> None:
    """Index each frozen array's identity back to its cache key."""
    if len(_ARRAY_KEYS) > _ARRAY_KEYS_SWEEP_LEN:
        dead = [
            array_id
            for array_id, (_, _, ref) in _ARRAY_KEYS.items()
            if ref() is None
        ]
        for array_id in dead:
            del _ARRAY_KEYS[array_id]
    for name, array in tables.items():
        _ARRAY_KEYS[id(array)] = (key, name, weakref.ref(array))


def distribution_fingerprint(
    array: Optional[np.ndarray],
) -> Optional[Tuple[str, str]]:
    """``(cache_key, table_name)`` for a cached table array, else ``None``.

    The arena's distribution-interning layer groups segments by the
    *identity* of their ``probs`` array (two workloads built from the
    same :func:`table_key` parameters share one frozen array); this
    resolves that identity back to the canonical key for reporting and
    equivalence-class fingerprints.  Arrays that never went through
    :func:`cached_tables` / :func:`seed_tables` have no fingerprint.
    """
    if array is None:
        return None
    entry = _ARRAY_KEYS.get(id(array))
    if entry is None:
        return None
    key, name, ref = entry
    if ref() is not array:
        # id reuse after the original array was evicted and freed
        del _ARRAY_KEYS[id(array)]
        return None
    return key, name


def cached_tables(
    key: str, builder: Callable[[], Mapping[str, np.ndarray]]
) -> Dict[str, np.ndarray]:
    """Get-or-build the compiled table set for ``key``.

    On a miss, ``builder()`` runs once and its arrays are frozen
    read-only before caching -- callers share the arrays, so nobody may
    mutate them in place (phase changes must install *new* arrays,
    which the engine's identity-based caching already requires).
    """
    tables = _TABLE_CACHE.get(key)
    if tables is not None:
        _TABLE_CACHE.move_to_end(key)
        _TABLE_STATS["hits"] += 1
        return tables
    _TABLE_STATS["builds"] += 1
    _TABLE_STATS["misses"] += 1
    tables = _freeze(builder())
    _TABLE_CACHE[key] = tables
    _register_fingerprints(key, tables)
    while len(_TABLE_CACHE) > TABLE_CACHE_CAPACITY:
        _TABLE_CACHE.popitem(last=False)
    return tables


def seed_tables(
    entries: Mapping[str, Mapping[str, np.ndarray]]
) -> None:
    """Install pre-built table sets (the shared-memory attach path)."""
    for key, tables in entries.items():
        frozen = _freeze(tables)
        _TABLE_CACHE[key] = frozen
        _TABLE_CACHE.move_to_end(key)
        _register_fingerprints(key, frozen)
        _TABLE_STATS["seeded"] += 1
    while len(_TABLE_CACHE) > TABLE_CACHE_CAPACITY:
        _TABLE_CACHE.popitem(last=False)


def snapshot_tables(
    min_bytes: int = 0,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Return cached table sets totalling at least ``min_bytes`` each.

    The parent side of the shared-memory transport exports this
    snapshot to sweep workers.
    """
    return {
        key: dict(tables)
        for key, tables in _TABLE_CACHE.items()
        if sum(a.nbytes for a in tables.values()) >= min_bytes
    }


def table_cache_stats() -> Dict[str, int]:
    """Hit/build/seed/miss counters plus the current entry count and
    resident table bytes (the obs registry's ``workload.table_*``
    gauges read these at snapshot time)."""
    stats = dict(_TABLE_STATS)
    stats["entries"] = len(_TABLE_CACHE)
    stats["bytes"] = sum(
        array.nbytes
        for tables in _TABLE_CACHE.values()
        for array in tables.values()
    )
    return stats


def reset_table_cache() -> None:
    """Drop every cached table set and zero the counters (tests)."""
    _TABLE_CACHE.clear()
    _ARRAY_KEYS.clear()
    for counter in _TABLE_STATS:
        _TABLE_STATS[counter] = 0


class Workload(ABC):
    """Base class for access-distribution workloads."""

    name: str = "workload"

    def __init__(
        self,
        n_pages: int,
        write_fraction: float = 0.05,
        delay_ns_per_access: float = 0.0,
    ) -> None:
        if n_pages <= 0:
            raise ValueError("workload needs at least one page")
        if not 0 <= write_fraction <= 1:
            raise ValueError("write fraction must be in [0, 1]")
        if delay_ns_per_access < 0:
            raise ValueError("delay cannot be negative")
        self.n_pages = int(n_pages)
        self.write_fraction = float(write_fraction)
        self.delay_ns_per_access = float(delay_ns_per_access)

    @abstractmethod
    def access_distribution(self, now_ns: Optional[int] = None) -> np.ndarray:
        """Per-page access probabilities (sum to 1).

        ``now_ns=None`` means "the current phase" (whatever the last
        ``advance`` selected); passing a time lets callers peek at a
        specific phase.
        """

    def advance(self, now_ns: int) -> None:
        """Hook for phase changes; stationary workloads do nothing."""

    def stable_until_ns(self, now_ns: int) -> Optional[int]:
        """Earliest future instant at which the access profile may change.

        The engine's quantum-fusion horizon must not cross this time: up
        to (but excluding) the returned instant, ``advance`` is guaranteed
        not to change the distribution returned by
        ``access_distribution``.  ``None`` means the profile is stationary
        (never changes).

        The default is conservative: a workload that overrides ``advance``
        without also overriding this method reports ``now_ns`` (no
        stability guarantee, fusion disabled); a workload that keeps the
        base no-op ``advance`` is stationary.
        """
        if type(self).advance is Workload.advance:
            return None
        return now_ns

    def hot_page_mask(self, hot_fraction: float = 0.25) -> np.ndarray:
        """Oracle hot mask: the top ``hot_fraction`` of pages by access
        probability."""
        if not 0 < hot_fraction <= 1:
            raise ValueError("hot fraction must be in (0, 1]")
        probs = self.access_distribution()
        n_hot = max(1, int(self.n_pages * hot_fraction))
        threshold_idx = np.argpartition(probs, -n_hot)[-n_hot:]
        mask = np.zeros(self.n_pages, dtype=bool)
        mask[threshold_idx] = True
        return mask

    @staticmethod
    def _normalize(weights: np.ndarray) -> np.ndarray:
        weights = np.asarray(weights, dtype=np.float64)
        total = weights.sum()
        if total <= 0:
            raise ValueError("access weights must have positive mass")
        return weights / total


class TraceWorkload(Workload):
    """A workload with an explicitly supplied (possibly phased) profile.

    Useful for tests and for replaying recorded page-weight traces.
    ``phases`` is a list of (duration_ns, weight-vector) pairs cycled
    forever; a single phase makes the workload stationary.

    A phase whose weight vector has zero total mass is an *idle*
    (zero-traffic) phase: the engine completes no accesses while it is
    active, which preserves the wall-clock shape of recorded traces
    that contain idle windows.  At least one phase must carry positive
    mass.  ``assume_normalized=True`` stores positive-mass vectors by
    reference instead of copy-normalizing them -- the trace compiler
    uses this to hand every instance the *same* frozen
    :func:`cached_tables` array so the engine's identity-based fusion
    witness and the arena's interning keys see shared tables.
    """

    name = "trace"

    def __init__(
        self,
        phases,
        write_fraction: float = 0.05,
        delay_ns_per_access: float = 0.0,
        assume_normalized: bool = False,
    ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        durations, weights = zip(*phases)
        if any(d <= 0 for d in durations):
            raise ValueError("phase durations must be positive")
        n_pages = len(weights[0])
        if any(len(w) != n_pages for w in weights):
            raise ValueError("all phases must cover the same pages")
        super().__init__(n_pages, write_fraction, delay_ns_per_access)
        self._durations = [int(d) for d in durations]
        self._probs = []
        positive_phases = 0
        for w in weights:
            arr = np.asarray(w, dtype=np.float64)
            if float(arr.sum()) > 0.0:
                positive_phases += 1
                if not assume_normalized:
                    arr = self._normalize(arr)
            else:
                arr = np.zeros(n_pages, dtype=np.float64)
                arr.setflags(write=False)
            self._probs.append(arr)
        if positive_phases == 0:
            raise ValueError("access weights must have positive mass")
        self._cycle_ns = sum(self._durations)
        self._phase = 0

    def _phase_at(self, now_ns: int) -> int:
        offset = now_ns % self._cycle_ns
        for index, duration in enumerate(self._durations):
            if offset < duration:
                return index
            offset -= duration
        return len(self._durations) - 1  # pragma: no cover

    def advance(self, now_ns: int) -> None:
        self._phase = self._phase_at(now_ns)

    def stable_until_ns(self, now_ns: int) -> Optional[int]:
        """Next phase boundary in the cycle (``None`` for a single phase)."""
        if len(self._probs) == 1:
            return None
        offset = now_ns % self._cycle_ns
        elapsed = 0
        for duration in self._durations:
            elapsed += duration
            if offset < elapsed:
                return now_ns - offset + elapsed
        return now_ns + self._cycle_ns - offset  # pragma: no cover

    def access_distribution(self, now_ns: Optional[int] = None) -> np.ndarray:
        if now_ns is not None:
            self._phase = self._phase_at(now_ns)
        return self._probs[self._phase]
