"""Pmbench-style paging microbenchmark.

Pmbench issues loads/stores over a private working set following a
configurable address distribution.  The paper's main configuration is
``normal_ih`` (Gaussian over the address space) with ``stride 2``
("scattered Gaussian distributed accesses"), run at read/write ratios from
95:5 to 5:95, optionally with a per-access ``delay`` (units of 50 CPU
cycles) to throttle throughput -- the knob behind the 50-cgroup mixed
hotness experiment.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.workloads.base import Workload, cached_tables, table_key

#: one pmbench delay unit = 50 cycles at the testbed's 2.6 GHz
DELAY_UNIT_NS: float = 50 / 2.6


class PmbenchWorkload(Workload):
    """Gaussian / uniform / linear access patterns with stride."""

    name = "pmbench"

    PATTERNS = ("normal", "uniform", "linear", "zipf")

    def __init__(
        self,
        n_pages: int,
        pattern: str = "normal",
        stride: int = 1,
        read_write_ratio: float = 0.95,
        delay_units: int = 0,
        sigma_fraction: float = 0.125,
        zipf_s: float = 0.99,
        background_fraction: float = 0.10,
    ) -> None:
        """Create a pmbench workload.

        Args:
            n_pages: working-set size in base pages.
            pattern: ``normal`` (normal_ih), ``uniform``, ``linear``
                (triangular ramp), or ``zipf``.
            stride: access stride; ``stride=2`` touches every other page,
                spreading the pattern ("scattered").
            read_write_ratio: read share, e.g. 0.95 for the paper's 95:5.
            delay_units: pmbench ``delay`` -- stall units (50 cycles each)
                inserted before every access.
            sigma_fraction: Gaussian sigma as a fraction of the address
                space.  The default 0.125 puts ~68% of accesses in the
                central 25% -- the paper's hot region definition.
            zipf_s: Zipf exponent for the ``zipf`` pattern.
            background_fraction: share of accesses spread uniformly over
                the (stride-allowed) working set.  Real pmbench runs touch
                every page occasionally -- the paper's Figure 1 measures
                20-40 accesses/minute on the *average* NVM page -- and
                this floor is what defeats recency-based classification.
        """
        if pattern not in self.PATTERNS:
            raise ValueError(
                f"unknown pattern {pattern!r}; pick from {self.PATTERNS}"
            )
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if not 0 <= read_write_ratio <= 1:
            raise ValueError("read/write ratio must be in [0, 1]")
        if delay_units < 0:
            raise ValueError("delay cannot be negative")
        if not 0 <= background_fraction < 1:
            raise ValueError("background fraction must be in [0, 1)")
        super().__init__(
            n_pages,
            write_fraction=1.0 - read_write_ratio,
            delay_ns_per_access=delay_units * DELAY_UNIT_NS,
        )
        self.pattern = pattern
        self.stride = int(stride)
        self.sigma_fraction = float(sigma_fraction)
        self.zipf_s = float(zipf_s)
        self.background_fraction = float(background_fraction)
        # The distribution depends on the pattern geometry only -- not
        # on delay/read-write mix -- so fleets of throttled tenants
        # (the 50-cgroup experiment) share a single compiled table.
        key = table_key(
            self.name,
            n_pages=self.n_pages,
            pattern=self.pattern,
            stride=self.stride,
            sigma_fraction=self.sigma_fraction,
            zipf_s=self.zipf_s,
            background_fraction=self.background_fraction,
        )
        self._probs = cached_tables(
            key, lambda: {"probs": self._build_distribution()}
        )["probs"]

    def _build_distribution(self) -> np.ndarray:
        positions = np.arange(self.n_pages, dtype=np.float64)
        if self.pattern == "normal":
            center = (self.n_pages - 1) / 2.0
            sigma = max(self.sigma_fraction * self.n_pages, 1.0)
            weights = np.exp(-0.5 * ((positions - center) / sigma) ** 2)
        elif self.pattern == "uniform":
            weights = np.ones(self.n_pages)
        elif self.pattern == "linear":
            # Hotness ramps down linearly with address.
            weights = np.maximum(self.n_pages - positions, 1.0)
        else:  # zipf
            weights = 1.0 / np.power(positions + 1.0, self.zipf_s)
        if self.stride > 1:
            mask = (np.arange(self.n_pages) % self.stride) != 0
            weights = weights.copy()
            weights[mask] = 0.0
        probs = self._normalize(weights)
        if self.background_fraction > 0 and self.pattern != "uniform":
            background = np.zeros(self.n_pages)
            allowed = probs >= 0 if self.stride == 1 else (
                np.arange(self.n_pages) % self.stride == 0
            )
            background[allowed] = 1.0 / np.count_nonzero(allowed)
            probs = (
                (1.0 - self.background_fraction) * probs
                + self.background_fraction * background
            )
        return probs

    def access_distribution(self, now_ns: Optional[int] = None) -> np.ndarray:
        return self._probs

    def center_region_mask(self, fraction: float = 0.25) -> np.ndarray:
        """The paper's ground-truth hot region for ``normal``: accesses
        falling in the central ``fraction`` of the address space."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        half_width = fraction / 2.0
        low = int(self.n_pages * (0.5 - half_width))
        high = int(np.ceil(self.n_pages * (0.5 + half_width)))
        mask = np.zeros(self.n_pages, dtype=bool)
        mask[low:high] = True
        return mask

    def hot_page_mask(self, hot_fraction: float = 0.25) -> np.ndarray:
        if self.pattern == "normal":
            mask = self.center_region_mask(hot_fraction)
            if self.stride > 1:
                mask &= self._probs > 0
            return mask
        return super().hot_page_mask(hot_fraction)
