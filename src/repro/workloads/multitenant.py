"""The 50-cgroup mixed-hotness experiment setup (Section 5.1.3).

One pmbench process per cgroup, all with *random* (uniform) access pattern
and identical working sets, differentiated only by the ``delay`` parameter:
process ``i`` stalls ``i`` delay units (50 cycles each) before every access,
so cgroup-0 is the hottest tenant and cgroup-49 the coldest (the paper
measures 2.8x throughput spread under Linux-NB).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.rng import RngStreams
from repro.vm.process import SimProcess
from repro.workloads.pmbench import PmbenchWorkload


def make_multitenant_processes(
    n_tenants: int = 50,
    pages_per_tenant: int = 1024,
    delay_step_units: int = 1,
    read_write_ratio: float = 0.95,
    seed: int = 0,
) -> List[Tuple[SimProcess, str]]:
    """Build the tenant processes and their cgroup names.

    Returns a list of ``(process, cgroup_name)`` pairs; the caller registers
    them with the kernel (``kernel.register_process(proc, cgroup=name)``).
    """
    if n_tenants <= 0:
        raise ValueError("need at least one tenant")
    if delay_step_units < 0:
        raise ValueError("delay step cannot be negative")
    streams = RngStreams(seed)
    tenants = []
    for i in range(n_tenants):
        workload = PmbenchWorkload(
            n_pages=pages_per_tenant,
            pattern="uniform",
            read_write_ratio=read_write_ratio,
            delay_units=i * delay_step_units,
        )
        process = SimProcess(
            pid=i,
            workload=workload,
            rng=streams.spawn(f"tenant-{i}").get("access"),
            name=f"pmbench-{i}",
        )
        tenants.append((process, f"cgroup-{i}"))
    return tenants
