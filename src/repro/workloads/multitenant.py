"""The 50-cgroup mixed-hotness experiment setup (Section 5.1.3).

One pmbench process per cgroup, all with *random* (uniform) access pattern
and identical working sets, differentiated only by the ``delay`` parameter:
process ``i`` stalls ``i`` delay units (50 cycles each) before every access,
so cgroup-0 is the hottest tenant and cgroup-49 the coldest (the paper
measures 2.8x throughput spread under Linux-NB).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.rng import RngStreams
from repro.vm.process import SimProcess
from repro.workloads.pmbench import PmbenchWorkload


def make_multitenant_processes(
    n_tenants: int = 50,
    pages_per_tenant: int = 1024,
    delay_step_units: int = 1,
    read_write_ratio: float = 0.95,
    seed: int = 0,
    n_distinct: int = 1,
    base_delay_units: int = 0,
) -> List[Tuple[SimProcess, str]]:
    """Build the tenant processes and their cgroup names.

    Returns a list of ``(process, cgroup_name)`` pairs; the caller registers
    them with the kernel (``kernel.register_process(proc, cgroup=name)``).

    ``n_distinct`` cycles the pmbench access ``stride`` across tenants
    (tenant ``i`` gets ``stride = 1 + i % n_distinct``) so the fleet
    compiles exactly ``n_distinct`` distinct distribution tables, shared
    round-robin.  The default 1 keeps the paper's setup (every tenant on
    the same uniform table); larger values drive the arena's
    distribution-interning benchmark, where 1024 tenants share <= 8
    tables.

    ``base_delay_units`` adds a uniform think time to every tenant on
    top of the per-tenant stagger (tenant ``i`` stalls
    ``base_delay_units + i * delay_step_units`` units per access).  A
    fleet of compute-bound tenants (``delay_step_units=0`` plus a
    nonzero base) keeps equal per-access cost -- so shared-table
    tenants still intern into one class -- while holding aggregate
    bandwidth demand below tier saturation.
    """
    if n_tenants <= 0:
        raise ValueError("need at least one tenant")
    if delay_step_units < 0:
        raise ValueError("delay step cannot be negative")
    if base_delay_units < 0:
        raise ValueError("base delay cannot be negative")
    if n_distinct < 1:
        raise ValueError("need at least one distinct distribution")
    streams = RngStreams(seed)
    tenants = []
    for i in range(n_tenants):
        workload = PmbenchWorkload(
            n_pages=pages_per_tenant,
            pattern="uniform",
            stride=1 + i % n_distinct,
            read_write_ratio=read_write_ratio,
            delay_units=base_delay_units + i * delay_step_units,
        )
        process = SimProcess(
            pid=i,
            workload=workload,
            rng=streams.spawn(f"tenant-{i}").get("access"),
            name=f"pmbench-{i}",
        )
        tenants.append((process, f"cgroup-{i}"))
    return tenants
