"""Fleet traffic generator: millions of users on the interned fast path.

Chrono's Section 5.1.3 fleet is 50 identical tenants; real multi-tenant
memory pressure comes from *skewed* fleets -- a few huge tenants, a long
tail of small ones, load that breathes with the time of day, tenants
arriving and leaving mid-run.  This module maps ``n_users`` simulated
users onto ``n_tenants`` processes with exactly that structure, while
keeping every tenant on the batched arena/fusion/interning fast path:

* **Zipf tenant popularity** -- tenant ``i`` serves a user share
  proportional to ``(i+1) ** -zipf_s``, so a 1024-tenant fleet carries a
  realistic heavy tail.
* **Diurnal load curves + arrival processes** -- each tenant samples a
  peak-hour phase; its user load is modulated by a sinusoidal diurnal
  factor, and the combined load maps onto per-tenant ``delay_units``
  (more load per tenant => less think time per access).
* **Delay bucketing** -- per-tenant delays are quantized onto a small
  geometric ladder, because the arena's interning key is the *exact*
  ``(table identity, write_fraction, delay)`` triple: same-bucket
  tenants share one equivalence class instead of fragmenting into 1024.
* **Shared pattern tables** -- the ``n_patterns`` page-popularity tables
  are built once under :func:`~repro.workloads.base.cached_tables`; all
  tenants on a pattern present one frozen array identity.
* **Tenant churn** -- a slice of tenants exits mid-run via
  ``target_accesses`` (the arena retires their segments) and another
  slice spawns mid-run as a zero-traffic lead-in phase followed by its
  pattern (mid-run registration is not supported; an idle lead-in
  models the arrival without breaking upfront placement).
* **Scripted phase shifts** -- a slice of tenants cycles two pattern
  tables on long, honest ``stable_until_ns`` horizons, so quantum
  fusion still engages *within* phases.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.sim.rng import RngStreams
from repro.sim.timeunits import MINUTE
from repro.vm.process import SimProcess
from repro.workloads.base import TraceWorkload, cached_tables, table_key
from repro.workloads.compile import StationaryTableWorkload
from repro.workloads.pmbench import DELAY_UNIT_NS

#: default diurnal period (a scaled "day"; runs shorter than this see a
#: frozen slice of the curve, which is the realistic regime)
DEFAULT_PERIOD_NS = 10 * MINUTE

#: Zipf exponent over page ranks inside one pattern table
PATTERN_ALPHA = 1.2


def pattern_table(
    n_pages: int, pattern: int, n_patterns: int
) -> np.ndarray:
    """One shared page-popularity table (frozen, cache-interned).

    Pattern ``p`` is a Zipf-ranked popularity rolled by ``p/n_patterns``
    of the page range, so distinct patterns hit distinct hot sets.  All
    callers with the same parameters receive the *same* frozen array.
    """
    key = table_key(
        "tracegen-pattern",
        n_pages=int(n_pages),
        pattern=int(pattern) % max(int(n_patterns), 1),
        n_patterns=int(n_patterns),
        alpha=PATTERN_ALPHA,
    )

    def build():
        ranks = np.arange(1, n_pages + 1, dtype=np.float64)
        weights = np.roll(
            ranks ** -PATTERN_ALPHA,
            (int(pattern) * n_pages) // max(int(n_patterns), 1),
        )
        return {"probs": weights / weights.sum()}

    return cached_tables(key, build)["probs"]


def tenant_user_shares(n_tenants: int, zipf_s: float) -> np.ndarray:
    """Zipf user-share vector over tenants (sums to 1)."""
    if n_tenants <= 0:
        raise ValueError("need at least one tenant")
    weights = np.arange(1, n_tenants + 1, dtype=np.float64) ** -float(
        zipf_s
    )
    return weights / weights.sum()


def make_traffic_processes(
    n_tenants: int = 256,
    n_users: int = 1_000_000,
    pages_per_tenant: int = 1024,
    n_patterns: int = 8,
    zipf_s: float = 1.1,
    base_delay_units: int = 200,
    n_delay_buckets: int = 8,
    diurnal_amplitude: float = 0.5,
    period_ns: int = DEFAULT_PERIOD_NS,
    churn_fraction: float = 0.0,
    phase_shift_fraction: float = 0.0,
    phase_len_ns: Optional[int] = None,
    duration_ns: int = DEFAULT_PERIOD_NS,
    write_fraction: float = 0.05,
    seed: int = 0,
    obs=None,
) -> List[SimProcess]:
    """Build the traffic fleet as engine-ready processes.

    Tenant ``i`` serves ``n_users * share_i`` users (Zipf over tenant
    rank), modulated by a per-tenant diurnal factor sampled from its
    arrival phase; the resulting load maps onto a geometric
    ``delay_units`` ladder (hotter tenant => shorter think time) with
    ``n_delay_buckets`` rungs so interning classes stay coarse.  A
    ``churn_fraction`` slice of tenants churns -- half exit mid-run via
    ``target_accesses``, half spawn mid-run via an idle lead-in phase --
    and a ``phase_shift_fraction`` slice cycles two pattern tables every
    ``phase_len_ns`` (default: a quarter of ``duration_ns``).  With both
    fractions at 0 every tenant is stationary and internable.
    """
    if n_users <= 0:
        raise ValueError("need at least one user")
    if not 0 <= churn_fraction <= 1:
        raise ValueError("churn fraction must be in [0, 1]")
    if not 0 <= phase_shift_fraction <= 1:
        raise ValueError("phase-shift fraction must be in [0, 1]")
    if churn_fraction + phase_shift_fraction > 1:
        raise ValueError("churn + phase-shift fractions exceed the fleet")
    if base_delay_units < 1 or n_delay_buckets < 1:
        raise ValueError("delay ladder parameters must be positive")
    if duration_ns <= 0 or period_ns <= 0:
        raise ValueError("durations must be positive")

    streams = RngStreams(seed)
    fleet_rng = streams.spawn("traffic-fleet").get("roles")

    shares = tenant_user_shares(n_tenants, zipf_s)
    # Arrival process: each tenant's position in the diurnal cycle at
    # run start, i.e. where in the "day" its user base peaks.
    peak_phase = fleet_rng.random(n_tenants)
    diurnal = 1.0 + float(diurnal_amplitude) * np.sin(
        2.0 * np.pi * peak_phase
    )
    load = shares * n_users * np.maximum(diurnal, 1e-3)

    # Geometric delay ladder: hotter tenants think less per access.
    rel = load / load.max()
    bucket = np.clip(
        np.round(-np.log2(rel)), 0, n_delay_buckets - 1
    ).astype(int)
    delay_units = (int(base_delay_units) * (2 ** bucket)).astype(np.int64)

    # Role assignment: spread churners/shifters across the popularity
    # curve instead of concentrating them in the head.
    order = fleet_rng.permutation(n_tenants)
    n_shift = int(round(phase_shift_fraction * n_tenants))
    n_churn = int(round(churn_fraction * n_tenants))
    shifters = set(order[:n_shift].tolist())
    churners = order[n_shift:n_shift + n_churn].tolist()
    exiters = set(churners[: len(churners) // 2])
    spawners = set(churners[len(churners) // 2:])

    if phase_len_ns is None:
        phase_len_ns = max(duration_ns // 4, 1)

    processes: List[SimProcess] = []
    for i in range(n_tenants):
        pattern = i % max(n_patterns, 1)
        table = pattern_table(pages_per_tenant, pattern, n_patterns)
        delay_ns = float(delay_units[i]) * DELAY_UNIT_NS
        tenant_rng = streams.spawn(f"traffic-{i}")
        if i in shifters:
            # Scripted phase shift between two pattern tables, long
            # honest horizons so fusion engages within each phase.
            other = pattern_table(
                pages_per_tenant, pattern + 1, n_patterns
            )
            workload = TraceWorkload(
                [(int(phase_len_ns), table), (int(phase_len_ns), other)],
                write_fraction=write_fraction,
                delay_ns_per_access=delay_ns,
                assume_normalized=True,
            )
        elif i in spawners:
            # Mid-run arrival: idle until the arrival instant, then the
            # pattern table for far longer than any run (no wraparound).
            arrival = int(
                (0.1 + 0.4 * tenant_rng.get("arrival").random())
                * duration_ns
            )
            workload = TraceWorkload(
                [
                    (max(arrival, 1),
                     np.zeros(pages_per_tenant, dtype=np.float64)),
                    (16 * int(duration_ns), table),
                ],
                write_fraction=write_fraction,
                delay_ns_per_access=delay_ns,
                assume_normalized=True,
            )
        else:
            workload = StationaryTableWorkload(
                table,
                write_fraction=write_fraction,
                delay_ns_per_access=delay_ns,
            )
        process = SimProcess(
            pid=i,
            workload=workload,
            rng=tenant_rng.get("access"),
            name=f"tenant-{i}",
        )
        if i in exiters:
            # Exit mid-run: budget enough accesses to reach a uniform
            # random instant in the middle half of the run, estimated
            # from the tenant's dominant per-access cost (think time
            # plus a nominal memory latency).
            exit_at = (
                0.25 + 0.5 * tenant_rng.get("exit").random()
            ) * duration_ns
            process.target_accesses = max(
                1.0, exit_at / (delay_ns + 100.0)
            )
        processes.append(process)

    if obs is not None:
        obs.emit(
            "tracegen.fleet",
            0,
            n_tenants=int(n_tenants),
            n_users=int(n_users),
            n_patterns=int(n_patterns),
            n_churn=int(n_churn),
            n_shifting=int(n_shift),
        )
        obs.set_gauge("tracegen.tenants", float(n_tenants))
        obs.set_gauge("tracegen.users", float(n_users))
        obs.set_gauge("tracegen.patterns", float(n_patterns))
        obs.set_gauge("tracegen.churn_tenants", float(n_churn))
    return processes
