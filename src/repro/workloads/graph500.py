"""Graph500-style BFS/SSSP page traffic.

Graph500 runs breadth-first search and single-source shortest paths over a
scale-free (Kronecker/RMAT) graph.  Its memory behaviour, which the paper
leans on in Section 5.2, has two defining properties:

* page hotness follows the *degree distribution* -- adjacency pages of
  high-degree vertices are touched by many traversal steps, with "mild
  access frequency difference" between hotter and colder items, and
* traversal proceeds in *frontier phases*: each BFS level adds emphasis on
  the pages of the current frontier.

We build an actual scale-free graph (Barabási–Albert preferential
attachment via networkx -- the same heavy-tail family as RMAT), pack
vertices' adjacency lists into pages, and derive per-page weights from
resident degree mass.  BFS levels from a random source give the phase
schedule.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx
import numpy as np

from repro.sim.timeunits import SECOND
from repro.workloads.base import Workload, cached_tables, table_key


class Graph500Workload(Workload):
    """Degree-skewed graph traversal with rotating BFS frontiers."""

    name = "graph500"

    def __init__(
        self,
        n_pages: int,
        vertices_per_page: int = 2,
        attachment: int = 2,
        frontier_boost: float = 3.0,
        phase_len_ns: int = 2 * SECOND,
        write_fraction: float = 0.10,
        seed: int = 1,
    ) -> None:
        """Create a Graph500 workload.

        Args:
            n_pages: working-set size (adjacency storage) in base pages.
            vertices_per_page: how many vertices' adjacency lists share a
                page (packing density).
            attachment: Barabási–Albert attachment parameter (mean degree
                is ~2x this; higher = flatter hotness).
            frontier_boost: multiplicative emphasis on the current BFS
                frontier's pages.
            phase_len_ns: wall time per BFS level.
            write_fraction: store share (visited marks / distance updates).
            seed: graph and BFS-source seed.
        """
        if vertices_per_page <= 0:
            raise ValueError("need at least one vertex per page")
        if frontier_boost < 1.0:
            raise ValueError("frontier boost must be >= 1")
        if phase_len_ns <= 0:
            raise ValueError("phase length must be positive")
        super().__init__(n_pages, write_fraction=write_fraction)
        self.vertices_per_page = int(vertices_per_page)
        self.phase_len_ns = int(phase_len_ns)
        self.frontier_boost = float(frontier_boost)

        n_vertices = self.n_pages * self.vertices_per_page
        attachment = min(attachment, max(1, n_vertices - 1))
        self.attachment = int(attachment)
        self.seed = int(seed)

        # Graph construction + BFS is by far the most expensive build in
        # the workload zoo; the result depends only on the shape/seed
        # parameters below, so repeated cells (other policies, other
        # frontier boosts) reuse the compiled tables.
        key = table_key(
            self.name,
            n_pages=self.n_pages,
            vertices_per_page=self.vertices_per_page,
            attachment=self.attachment,
            seed=self.seed,
        )
        tables = cached_tables(key, self._build_tables)
        self._vertex_page = tables["vertex_page"]
        self._base_weights = tables["base_weights"]
        lengths = tables["frontier_lengths"].astype(np.int64)
        self._frontier_pages: List[np.ndarray] = np.split(
            tables["frontier_pages"], np.cumsum(lengths)[:-1]
        )
        self._phase = 0
        self._probs = self._phase_distribution(0)

    def _build_tables(self) -> dict:
        """Build the graph, page placement, and BFS frontier schedule."""
        n_vertices = self.n_pages * self.vertices_per_page
        graph = nx.barabasi_albert_graph(
            n_vertices, self.attachment, seed=self.seed
        )
        degrees = np.array(
            [graph.degree(v) for v in range(n_vertices)], dtype=np.float64
        )
        # Page weight = degree mass of the vertices stored on it.  Vertices
        # are shuffled across pages (allocation order is not degree order).
        rng = np.random.default_rng(self.seed)
        placement = rng.permutation(n_vertices)
        vertex_page = placement // self.vertices_per_page
        base = np.bincount(
            vertex_page, weights=degrees, minlength=self.n_pages
        )

        # BFS levels from a random source define the frontier schedule.
        source = int(rng.integers(n_vertices))
        levels = nx.single_source_shortest_path_length(graph, source)
        max_level = max(levels.values())
        frontiers: List[np.ndarray] = []
        for level in range(max_level + 1):
            verts = [v for v, d in levels.items() if d == level]
            frontiers.append(np.unique(vertex_page[verts]))
        return {
            "vertex_page": vertex_page,
            "base_weights": base + base.mean() * 0.02,  # cold floor
            "frontier_pages": np.concatenate(frontiers),
            "frontier_lengths": np.array(
                [f.size for f in frontiers], dtype=np.int64
            ),
        }

    @property
    def n_levels(self) -> int:
        """Number of BFS levels (phases) in the traversal."""
        return len(self._frontier_pages)

    def _phase_distribution(self, phase: int) -> np.ndarray:
        weights = self._base_weights.copy()
        frontier = self._frontier_pages[phase % self.n_levels]
        weights[frontier] *= self.frontier_boost
        return self._normalize(weights)

    def advance(self, now_ns: int) -> None:
        phase = (now_ns // self.phase_len_ns) % self.n_levels
        if phase != self._phase:
            self._phase = int(phase)
            self._probs = self._phase_distribution(self._phase)

    def stable_until_ns(self, now_ns: int) -> Optional[int]:
        """Next BFS-level boundary (``None`` for a single-level graph)."""
        if self.n_levels == 1:
            return None
        return (now_ns // self.phase_len_ns + 1) * self.phase_len_ns

    def access_distribution(self, now_ns: Optional[int] = None) -> np.ndarray:
        if now_ns is not None:
            self.advance(now_ns)
        return self._probs

    def hot_page_mask(self, hot_fraction: float = 0.25) -> np.ndarray:
        """Hot pages by *base* degree mass (frontier emphasis excluded)."""
        if not 0 < hot_fraction <= 1:
            raise ValueError("hot fraction must be in (0, 1]")
        n_hot = max(1, int(self.n_pages * hot_fraction))
        idx = np.argpartition(self._base_weights, -n_hot)[-n_hot:]
        mask = np.zeros(self.n_pages, dtype=bool)
        mask[idx] = True
        return mask
