"""Phase-changing workload builders.

Chrono's adaptive tuning exists "to adjust its migration parameters
transparently and adaptively" when access patterns shift; these builders
produce the shifting patterns to exercise that claim (and the DCSC
re-convergence extension benchmark).

All builders return :class:`repro.workloads.base.TraceWorkload` instances
(cycling phase schedules), so they compose with everything the static
workloads do.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import TraceWorkload, cached_tables, table_key


def shifting_hotspot(
    n_pages: int,
    n_phases: int = 4,
    phase_len_ns: int = 20_000_000_000,
    sigma_fraction: float = 0.07,
    background_fraction: float = 0.10,
    write_fraction: float = 0.1,
) -> TraceWorkload:
    """A Gaussian hotspot that relocates every phase.

    Phase ``i`` centres the hotspot at ``(i + 0.5) / n_phases`` of the
    address space; each shift invalidates the previously learned placement
    and the tiering system must re-identify the hot set from scratch.
    """
    if n_phases < 2:
        raise ValueError("need at least two phases to shift between")

    def build() -> dict:
        positions = np.arange(n_pages, dtype=np.float64)
        sigma = max(sigma_fraction * n_pages, 1.0)
        rows = []
        for phase in range(n_phases):
            center = (phase + 0.5) / n_phases * n_pages
            weights = np.exp(-0.5 * ((positions - center) / sigma) ** 2)
            rows.append(
                (1.0 - background_fraction) * weights / weights.sum()
                + background_fraction / n_pages
            )
        return {"weights": np.stack(rows)}

    # Phase weights depend on geometry only (not phase length or write
    # mix), so sweeps over timing knobs share one compiled table.
    key = table_key(
        "shifting-hotspot",
        n_pages=int(n_pages),
        n_phases=int(n_phases),
        sigma_fraction=float(sigma_fraction),
        background_fraction=float(background_fraction),
    )
    weights = cached_tables(key, build)["weights"]
    return TraceWorkload(
        [(phase_len_ns, weights[phase]) for phase in range(n_phases)],
        write_fraction=write_fraction,
    )


def expanding_working_set(
    n_pages: int,
    n_phases: int = 3,
    phase_len_ns: int = 20_000_000_000,
    start_fraction: float = 0.2,
    write_fraction: float = 0.1,
) -> TraceWorkload:
    """A working set that grows phase by phase (memory-demand ramp).

    Phase ``i`` accesses the first ``start + i * step`` fraction of pages
    uniformly -- the classic warm-up-then-grow footprint that stresses the
    demotion side (cold pages must vacate DRAM as pressure builds).
    """
    if n_phases < 1:
        raise ValueError("need at least one phase")
    if not 0 < start_fraction <= 1:
        raise ValueError("start fraction must be in (0, 1]")
    step = (1.0 - start_fraction) / max(n_phases - 1, 1)
    phases = []
    for phase in range(n_phases):
        fraction = min(start_fraction + phase * step, 1.0)
        boundary = max(int(n_pages * fraction), 1)
        weights = np.zeros(n_pages)
        weights[:boundary] = 1.0
        phases.append((phase_len_ns, weights))
    return TraceWorkload(phases, write_fraction=write_fraction)


def diurnal_mix(
    n_pages: int,
    phase_len_ns: int = 20_000_000_000,
    sigma_fraction: float = 0.08,
    write_fraction: float = 0.1,
) -> TraceWorkload:
    """Two alternating hotspots of different intensity (day / night).

    Daytime traffic hammers the front of the address space; night-time
    batch work sweeps the back half more evenly -- a two-phase cycle that
    rewards fast re-classification without full churn (half the hot set
    carries over).
    """
    positions = np.arange(n_pages, dtype=np.float64)
    sigma = max(sigma_fraction * n_pages, 1.0)
    day = np.exp(-0.5 * ((positions - 0.25 * n_pages) / sigma) ** 2)
    day = 0.85 * day / day.sum() + 0.15 / n_pages
    night_zone = np.zeros(n_pages)
    night_zone[n_pages // 2:] = 1.0
    night = (
        0.45 * day
        + 0.55 * night_zone / max(night_zone.sum(), 1.0)
    )
    return TraceWorkload(
        [(phase_len_ns, day), (phase_len_ns, night)],
        write_fraction=write_fraction,
    )
