"""Synthetic workload generators.

Each workload drives one simulated process by exposing a per-page access
probability distribution (optionally phase-changing over time), a read/write
mix, and an optional per-access stall (pmbench's ``delay`` knob).  The
distributions are constructed to match the footprint characteristics the
paper's benchmarks exhibit:

* :mod:`repro.workloads.pmbench` -- Gaussian/uniform patterns with stride,
  the Section 5.1 microbenchmark.
* :mod:`repro.workloads.graph500` -- degree-skewed BFS/SSSP page traffic
  with frontier phases, the Section 5.2 macrobenchmark.
* :mod:`repro.workloads.kvstore` -- memtier-driven Memcached/Redis-style
  key-value traffic, the Section 5.3 applications.
* :mod:`repro.workloads.multitenant` -- the 50-cgroup mixed-hotness setup
  of Section 5.1.3.
* :mod:`repro.workloads.compile` -- the trace compiler: raw address-event
  streams binned and phase-segmented into fast-path distribution tables.
* :mod:`repro.workloads.tracegen` -- the fleet traffic generator: Zipf
  tenant popularity, diurnal load, churn, and scripted phase shifts.
"""

from repro.workloads.base import (
    TraceWorkload,
    Workload,
    cached_tables,
    distribution_fingerprint,
    reset_table_cache,
    seed_tables,
    snapshot_tables,
    table_cache_stats,
    table_key,
)
from repro.workloads.compile import (
    CompiledTrace,
    StationaryTableWorkload,
    compile_event_stream,
    compile_events,
    compile_trace_file,
    compile_windows,
    segment_windows,
    synthetic_event_stream,
)
from repro.workloads.graph500 import Graph500Workload
from repro.workloads.kvstore import KVStoreWorkload
from repro.workloads.multitenant import make_multitenant_processes
from repro.workloads.pmbench import PmbenchWorkload
from repro.workloads.tracegen import make_traffic_processes

__all__ = [
    "CompiledTrace",
    "Graph500Workload",
    "KVStoreWorkload",
    "PmbenchWorkload",
    "StationaryTableWorkload",
    "TraceWorkload",
    "Workload",
    "cached_tables",
    "compile_event_stream",
    "compile_events",
    "compile_trace_file",
    "compile_windows",
    "distribution_fingerprint",
    "make_multitenant_processes",
    "make_traffic_processes",
    "reset_table_cache",
    "seed_tables",
    "segment_windows",
    "snapshot_tables",
    "synthetic_event_stream",
    "table_cache_stats",
    "table_key",
]
