"""Synthetic workload generators.

Each workload drives one simulated process by exposing a per-page access
probability distribution (optionally phase-changing over time), a read/write
mix, and an optional per-access stall (pmbench's ``delay`` knob).  The
distributions are constructed to match the footprint characteristics the
paper's benchmarks exhibit:

* :mod:`repro.workloads.pmbench` -- Gaussian/uniform patterns with stride,
  the Section 5.1 microbenchmark.
* :mod:`repro.workloads.graph500` -- degree-skewed BFS/SSSP page traffic
  with frontier phases, the Section 5.2 macrobenchmark.
* :mod:`repro.workloads.kvstore` -- memtier-driven Memcached/Redis-style
  key-value traffic, the Section 5.3 applications.
* :mod:`repro.workloads.multitenant` -- the 50-cgroup mixed-hotness setup
  of Section 5.1.3.
"""

from repro.workloads.base import (
    TraceWorkload,
    Workload,
    cached_tables,
    distribution_fingerprint,
    reset_table_cache,
    seed_tables,
    snapshot_tables,
    table_cache_stats,
    table_key,
)
from repro.workloads.graph500 import Graph500Workload
from repro.workloads.kvstore import KVStoreWorkload
from repro.workloads.multitenant import make_multitenant_processes
from repro.workloads.pmbench import PmbenchWorkload

__all__ = [
    "Graph500Workload",
    "KVStoreWorkload",
    "PmbenchWorkload",
    "TraceWorkload",
    "Workload",
    "cached_tables",
    "distribution_fingerprint",
    "make_multitenant_processes",
    "reset_table_cache",
    "seed_tables",
    "snapshot_tables",
    "table_cache_stats",
    "table_key",
]
