"""Access-trace recording and replay.

Research workflows often need to re-run the exact page-traffic history of
one experiment under a different policy (or share it as an artifact).  The
simulator's ground-truth counters make this cheap:

* :class:`TraceRecorder` hooks the engine's observer, snapshotting each
  process's per-window page-access counts;
* :func:`save_trace` / :func:`load_trace` persist the windows as a
  compressed ``.npz``;
* :meth:`TraceRecorder.to_workload` / :func:`load_trace` rebuild a
  :class:`~repro.workloads.base.TraceWorkload` that replays the recorded
  phases.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Union

import numpy as np

from repro.workloads.base import TraceWorkload

PathLike = Union[str, pathlib.Path]

TRACE_FORMAT_VERSION = 1


class TraceRecorder:
    """Snapshots per-process page-access counts at fixed intervals.

    Use as an engine observer::

        recorder = TraceRecorder(interval_ns=SECOND)
        engine.run(duration, observer=recorder.observe,
                   observe_every_ns=recorder.interval_ns)
        workload = recorder.to_workload(pid=0)
    """

    def __init__(self, interval_ns: int) -> None:
        if interval_ns <= 0:
            raise ValueError("recording interval must be positive")
        self.interval_ns = int(interval_ns)
        self._windows: Dict[int, List[np.ndarray]] = {}
        self._last_counts: Dict[int, np.ndarray] = {}
        self._write_fraction: Dict[int, float] = {}

    def observe(self, engine, now_ns: int) -> None:
        """Engine observer hook: record one window per process."""
        for process in engine.kernel.processes:
            # Reading ``access_count`` materialises the engine's pending
            # deferred-accounting ledger, so each window is exact.
            counts = process.pages.access_count
            previous = self._last_counts.get(process.pid)
            window = (
                counts.copy() if previous is None else counts - previous
            )
            self._last_counts[process.pid] = counts.copy()
            self._windows.setdefault(process.pid, []).append(window)
            self._write_fraction[process.pid] = (
                process.workload.write_fraction
            )

    def pids(self) -> List[int]:
        return sorted(self._windows)

    def n_windows(self, pid: int) -> int:
        return len(self._windows.get(pid, []))

    def to_workload(self, pid: int) -> TraceWorkload:
        """Rebuild a replayable workload from a process's recorded
        windows (windows without traffic are skipped)."""
        windows = [
            w for w in self._windows.get(pid, []) if w.sum() > 0
        ]
        if not windows:
            raise ValueError(f"no recorded traffic for pid {pid}")
        return TraceWorkload(
            [(self.interval_ns, w) for w in windows],
            write_fraction=self._write_fraction.get(pid, 0.05),
        )

    def save(self, path: PathLike, pid: int) -> None:
        """Persist one process's trace."""
        save_trace(
            path,
            self._windows.get(pid, []),
            self.interval_ns,
            self._write_fraction.get(pid, 0.05),
        )


def save_trace(
    path: PathLike,
    windows: List[np.ndarray],
    interval_ns: int,
    write_fraction: float = 0.05,
) -> None:
    """Write a page-access trace to a compressed ``.npz`` file."""
    if not windows:
        raise ValueError("cannot save an empty trace")
    stacked = np.stack([np.asarray(w, dtype=np.float64) for w in windows])
    np.savez_compressed(
        path,
        version=np.int64(TRACE_FORMAT_VERSION),
        interval_ns=np.int64(interval_ns),
        write_fraction=np.float64(write_fraction),
        windows=stacked,
    )


def load_trace(path: PathLike) -> TraceWorkload:
    """Load a trace file into a replayable workload."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version}"
            )
        interval_ns = int(data["interval_ns"])
        write_fraction = float(data["write_fraction"])
        windows = data["windows"]
    phases = [
        (interval_ns, windows[i])
        for i in range(windows.shape[0])
        if windows[i].sum() > 0
    ]
    if not phases:
        raise ValueError(f"trace {path!r} contains no traffic")
    return TraceWorkload(phases, write_fraction=write_fraction)
