"""Access-trace recording and replay.

Research workflows often need to re-run the exact page-traffic history of
one experiment under a different policy (or share it as an artifact).  The
simulator's ground-truth counters make this cheap:

* :class:`TraceRecorder` hooks the engine's observer, snapshotting each
  process's per-window page-access counts;
* :func:`save_trace` / :func:`load_trace` persist the windows as a
  compressed ``.npz``;
* :meth:`TraceRecorder.to_workload` / :func:`load_trace` rebuild a
  :class:`~repro.workloads.base.TraceWorkload` that replays the recorded
  phases.

Format history
--------------

* **v1** stacked the recorded windows but readers *dropped* windows with
  zero traffic, silently compressing replay time and shifting every
  later phase boundary.
* **v2** (current) preserves idle windows: consecutive zero-traffic
  windows become one coalesced zero-traffic phase, so a replayed trace
  keeps the original wall-clock shape.  The on-disk layout is unchanged
  (v1 files load fine); only the version stamp and the reader's idle
  handling differ.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.workloads.base import TraceWorkload

PathLike = Union[str, pathlib.Path]

TRACE_FORMAT_VERSION = 2

#: versions :func:`load_trace` accepts (v1 traces stay readable)
READABLE_TRACE_VERSIONS = (1, 2)


def windows_to_phases(
    windows: np.ndarray, interval_ns: int
) -> List[Tuple[int, np.ndarray]]:
    """Convert stacked per-window counts into ``(duration_ns, weights)``
    phases, preserving idle windows.

    Windows with traffic become one phase each; runs of consecutive
    zero-traffic windows coalesce into a single zero-weight phase whose
    duration covers the whole idle run, so replay neither compresses
    time nor splits the idle span into per-window phases.
    """
    windows = np.asarray(windows, dtype=np.float64)
    phases: List[Tuple[int, np.ndarray]] = []
    idle_run = 0
    for i in range(windows.shape[0]):
        window = windows[i]
        if float(window.sum()) > 0.0:
            if idle_run:
                phases.append(
                    (idle_run * interval_ns,
                     np.zeros(windows.shape[1], dtype=np.float64))
                )
                idle_run = 0
            phases.append((interval_ns, window))
        else:
            idle_run += 1
    if idle_run:
        phases.append(
            (idle_run * interval_ns,
             np.zeros(windows.shape[1], dtype=np.float64))
        )
    return phases


class TraceRecorder:
    """Snapshots per-process page-access counts at fixed intervals.

    Use as an engine observer::

        recorder = TraceRecorder(interval_ns=SECOND)
        engine.run(duration, observer=recorder.observe,
                   observe_every_ns=recorder.interval_ns)
        workload = recorder.to_workload(pid=0)
    """

    def __init__(self, interval_ns: int) -> None:
        if interval_ns <= 0:
            raise ValueError("recording interval must be positive")
        self.interval_ns = int(interval_ns)
        self._windows: Dict[int, List[np.ndarray]] = {}
        self._last_counts: Dict[int, np.ndarray] = {}
        self._write_fraction: Dict[int, float] = {}

    def observe(self, engine, now_ns: int) -> None:
        """Engine observer hook: record one window per process."""
        for process in engine.kernel.processes:
            # Reading ``access_count`` materialises the engine's pending
            # deferred-accounting ledger, so each window is exact.
            counts = process.pages.access_count
            previous = self._last_counts.get(process.pid)
            window = (
                counts.copy() if previous is None else counts - previous
            )
            self._last_counts[process.pid] = counts.copy()
            self._windows.setdefault(process.pid, []).append(window)
            # Duck-typed workloads (test stubs, custom drivers) may not
            # expose a write mix; fall back to the recorder default.
            self._write_fraction[process.pid] = float(
                getattr(process.workload, "write_fraction", 0.05)
            )

    def pids(self) -> List[int]:
        return sorted(self._windows)

    def n_windows(self, pid: int) -> int:
        return len(self._windows.get(pid, []))

    def windows(self, pid: int) -> List[np.ndarray]:
        """The raw recorded windows for one process (idle included)."""
        return list(self._windows.get(pid, []))

    def to_workload(self, pid: int) -> TraceWorkload:
        """Rebuild a replayable workload from a process's recorded
        windows; idle windows are preserved as zero-traffic phases."""
        recorded = self._windows.get(pid, [])
        if not recorded or not any(w.sum() > 0 for w in recorded):
            raise ValueError(f"no recorded traffic for pid {pid}")
        phases = windows_to_phases(np.stack(recorded), self.interval_ns)
        return TraceWorkload(
            phases,
            write_fraction=self._write_fraction.get(pid, 0.05),
        )

    def save(self, path: PathLike, pid: int) -> None:
        """Persist one process's trace."""
        save_trace(
            path,
            self._windows.get(pid, []),
            self.interval_ns,
            self._write_fraction.get(pid, 0.05),
        )

    def save_all(self, path_dir: PathLike) -> Dict[int, pathlib.Path]:
        """Persist every recorded process under ``path_dir``.

        Writes one ``trace_pid<PID>.npz`` per process and returns the
        ``pid -> path`` mapping, so multi-process runs persist in one
        call.  The directory is created if needed.
        """
        directory = pathlib.Path(path_dir)
        directory.mkdir(parents=True, exist_ok=True)
        saved: Dict[int, pathlib.Path] = {}
        for pid in self.pids():
            path = directory / f"trace_pid{pid}.npz"
            self.save(path, pid)
            saved[pid] = path
        return saved


def save_trace(
    path: PathLike,
    windows: List[np.ndarray],
    interval_ns: int,
    write_fraction: float = 0.05,
) -> None:
    """Write a page-access trace to a compressed ``.npz`` file."""
    if not windows:
        raise ValueError("cannot save an empty trace")
    stacked = np.stack([np.asarray(w, dtype=np.float64) for w in windows])
    np.savez_compressed(
        path,
        version=np.int64(TRACE_FORMAT_VERSION),
        interval_ns=np.int64(interval_ns),
        write_fraction=np.float64(write_fraction),
        windows=stacked,
    )


def load_trace_windows(
    path: PathLike,
) -> Tuple[np.ndarray, int, float]:
    """Load a trace file's raw ``(windows, interval_ns, write_fraction)``.

    The trace compiler ingests these for re-binning and phase
    segmentation; :func:`load_trace` wraps the same reader for direct
    replay.  Accepts any version in :data:`READABLE_TRACE_VERSIONS`.
    """
    with np.load(path) as data:
        version = int(data["version"])
        if version not in READABLE_TRACE_VERSIONS:
            raise ValueError(
                f"unsupported trace format version {version}"
            )
        interval_ns = int(data["interval_ns"])
        write_fraction = float(data["write_fraction"])
        windows = np.asarray(data["windows"], dtype=np.float64)
    return windows, interval_ns, write_fraction


def load_trace(path: PathLike) -> TraceWorkload:
    """Load a trace file into a replayable workload.

    Idle windows are preserved as coalesced zero-traffic phases (the v2
    semantics); v1 files load under the same rules, so replaying an old
    trace no longer compresses its idle time.
    """
    windows, interval_ns, write_fraction = load_trace_windows(path)
    phases = windows_to_phases(windows, interval_ns)
    if not any(float(w.sum()) > 0.0 for _, w in phases):
        raise ValueError(f"trace {path!r} contains no traffic")
    return TraceWorkload(phases, write_fraction=write_fraction)
