"""Trace compiler: raw address events -> fused-fast-path workloads.

Replaying a recorded trace one address at a time would forfeit every
batching win from the arena/fusion/interning stack.  This module
*compiles* traces instead: raw ``(timestamp_ns, pid, vpn, is_write)``
event streams (or the recorder's ``.npz`` window format) are binned into
per-window page histograms with vectorized, chunked accumulation, then a
phase-segmentation pass (change-point detection on the windowed
histograms) merges statistically-stable windows into long phases.  The
output is a :class:`CompiledTrace`: per-phase ``(duration_ns, probs)``
distribution tables that plug straight into the engine:

* phase tables are routed through :func:`~repro.workloads.base.cached_tables`
  keyed by a content digest, so same-pattern traces (and same-pattern
  fleet tenants) share one frozen array -- the arena's
  distribution-interning key;
* long phases give :class:`~repro.workloads.base.TraceWorkload` honest
  ``stable_until_ns`` horizons, so quantum fusion and the steady-state
  cache engage *within* phases instead of being defeated by per-window
  churn;
* idle stretches compile to zero-traffic phases, preserving the
  recording's wall-clock shape.

The binning is memory-bounded: :func:`compile_event_stream` consumes an
iterable of event chunks and only ever holds one chunk plus the growing
per-process window histograms, so arbitrarily long event files stream
through a fixed working set.
"""

from __future__ import annotations

import csv
import hashlib
import pathlib
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.sim.timeunits import SECOND
from repro.workloads.base import (
    TraceWorkload,
    Workload,
    cached_tables,
    table_key,
)
from repro.workloads.trace_io import load_trace_windows

PathLike = Union[str, pathlib.Path]

#: default binning window for event streams
DEFAULT_WINDOW_NS = SECOND

#: default total-variation distance that opens a new phase
DEFAULT_SEGMENT_THRESHOLD = 0.25

#: events per chunk when one-shot arrays are streamed internally
DEFAULT_CHUNK_EVENTS = 1 << 20

#: one event chunk: (timestamp_ns, pid, vpn, is_write) parallel arrays
EventChunk = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class StationaryTableWorkload(Workload):
    """Stationary workload over a pre-built, frozen probability table.

    Keeps the base no-op ``advance`` -- an infinite fusion horizon --
    and ``access_distribution`` returns the table array *itself*, so
    every process built from the same cached table presents one array
    identity and the arena interns them into a single equivalence
    class.  The compiler emits this for single-phase traces; the fleet
    traffic generator uses it for all non-shifting tenants.
    """

    name = "table"

    def __init__(
        self,
        probs: np.ndarray,
        write_fraction: float = 0.05,
        delay_ns_per_access: float = 0.0,
    ) -> None:
        probs = np.asarray(probs, dtype=np.float64)
        if probs.ndim != 1:
            raise ValueError("probability table must be 1-D")
        super().__init__(len(probs), write_fraction, delay_ns_per_access)
        total = float(probs.sum())
        if not np.isclose(total, 1.0):
            raise ValueError("probability table must sum to 1")
        self._probs = probs

    def access_distribution(self, now_ns: Optional[int] = None) -> np.ndarray:
        """The frozen table; identical object every call (interning key)."""
        return self._probs


def intern_distribution(weights: np.ndarray) -> np.ndarray:
    """Normalize ``weights`` and route the result through the table cache.

    The cache key is a content digest, so any two callers compiling the
    same histogram -- different traces, different fleet tenants --
    receive the *same* frozen array and the arena's identity-keyed
    interning groups them into one equivalence class.
    """
    weights = np.asarray(weights, dtype=np.float64)
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("access weights must have positive mass")
    probs = weights / total
    digest = hashlib.sha256(probs.tobytes()).hexdigest()[:32]
    key = table_key(
        "trace-compile", digest=digest, n_pages=int(probs.size)
    )
    return cached_tables(key, lambda: {"probs": probs})["probs"]


@dataclass
class Segment:
    """One detected phase: windows ``[start, end)``; idle iff zero mass."""

    start: int
    end: int
    idle: bool


def segment_windows(
    windows: np.ndarray,
    threshold: float = DEFAULT_SEGMENT_THRESHOLD,
    min_windows: int = 1,
) -> List[Segment]:
    """Greedy change-point detection over windowed histograms.

    Walks the window sequence keeping a running mean of the current
    phase's normalized histograms; a window whose total-variation
    distance from that mean exceeds ``threshold`` (after the phase has
    at least ``min_windows`` members) closes the phase and opens a new
    one.  Zero-traffic windows always form their own idle segments, so
    phase boundaries never straddle an idle gap.
    """
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim != 2 or windows.shape[0] == 0:
        raise ValueError("need a non-empty (n_windows, n_pages) array")
    segments: List[Segment] = []
    totals = windows.sum(axis=1)
    start = 0
    mean: Optional[np.ndarray] = None
    count = 0
    idle = bool(totals[0] <= 0.0)
    for i in range(windows.shape[0]):
        window_idle = bool(totals[i] <= 0.0)
        if window_idle != idle:
            segments.append(Segment(start, i, idle))
            start, mean, count, idle = i, None, 0, window_idle
        if window_idle:
            continue
        p = windows[i] / totals[i]
        if mean is None:
            mean, count = p.copy(), 1
            continue
        distance = 0.5 * float(np.abs(p - mean).sum())
        if distance > threshold and count >= min_windows:
            segments.append(Segment(start, i, False))
            start, mean, count = i, p.copy(), 1
        else:
            count += 1
            mean += (p - mean) / count
    segments.append(Segment(start, windows.shape[0], idle))
    return segments


@dataclass
class CompiledTrace:
    """A compiled trace: phase tables ready for the batched fast path."""

    phases: List[Tuple[int, np.ndarray]]
    n_pages: int
    window_ns: int
    write_fraction: float
    n_events: int
    n_windows: int
    n_idle_windows: int
    boundaries: List[int]

    @property
    def n_phases(self) -> int:
        """Number of compiled phases (idle phases included)."""
        return len(self.phases)

    @property
    def total_ns(self) -> int:
        """Wall-clock span of one replay cycle."""
        return sum(duration for duration, _ in self.phases)

    def to_workload(
        self,
        delay_ns_per_access: float = 0.0,
        write_fraction: Optional[float] = None,
    ) -> Workload:
        """Build the replay workload for this compiled trace.

        A single-phase trace becomes a :class:`StationaryTableWorkload`
        (infinite fusion horizon, arena-internable); multi-phase traces
        become a :class:`~repro.workloads.base.TraceWorkload` whose
        ``stable_until_ns`` reports the compiled phase boundaries.
        """
        wf = self.write_fraction if write_fraction is None else write_fraction
        if len(self.phases) == 1:
            return StationaryTableWorkload(
                self.phases[0][1],
                write_fraction=wf,
                delay_ns_per_access=delay_ns_per_access,
            )
        return TraceWorkload(
            self.phases,
            write_fraction=wf,
            delay_ns_per_access=delay_ns_per_access,
            assume_normalized=True,
        )


def compile_windows(
    windows: np.ndarray,
    window_ns: int,
    write_fraction: float = 0.05,
    threshold: float = DEFAULT_SEGMENT_THRESHOLD,
    min_windows: int = 1,
    n_events: Optional[int] = None,
    obs=None,
    pid: int = 0,
) -> CompiledTrace:
    """Compile stacked per-window histograms into phase tables.

    This is the recorder-format entry point (and the tail of the event
    path): segments the windows, pools each busy segment's counts into
    one interned distribution table, and emits ``compile.*``
    observability when an obs hub is supplied.
    """
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim != 2 or windows.shape[0] == 0:
        raise ValueError("need a non-empty (n_windows, n_pages) array")
    if window_ns <= 0:
        raise ValueError("window duration must be positive")
    totals = windows.sum(axis=1)
    if not np.any(totals > 0.0):
        raise ValueError("trace contains no traffic")
    segments = segment_windows(
        windows, threshold=threshold, min_windows=min_windows
    )
    phases: List[Tuple[int, np.ndarray]] = []
    for seg in segments:
        duration = (seg.end - seg.start) * int(window_ns)
        if seg.idle:
            zeros = np.zeros(windows.shape[1], dtype=np.float64)
            zeros.setflags(write=False)
            phases.append((duration, zeros))
        else:
            pooled = windows[seg.start:seg.end].sum(axis=0)
            phases.append((duration, intern_distribution(pooled)))
    n_idle = int(np.count_nonzero(totals <= 0.0))
    compiled = CompiledTrace(
        phases=phases,
        n_pages=int(windows.shape[1]),
        window_ns=int(window_ns),
        write_fraction=float(write_fraction),
        n_events=int(totals.sum()) if n_events is None else int(n_events),
        n_windows=int(windows.shape[0]),
        n_idle_windows=n_idle,
        boundaries=[seg.start for seg in segments],
    )
    if obs is not None:
        obs.emit(
            "compile.trace",
            compiled.total_ns,
            pid=int(pid),
            n_events=compiled.n_events,
            n_windows=compiled.n_windows,
            n_idle=compiled.n_idle_windows,
            n_phases=compiled.n_phases,
        )
        obs.inc("compile.events", compiled.n_events)
        obs.inc("compile.windows", compiled.n_windows)
        obs.inc("compile.idle_windows", compiled.n_idle_windows)
        obs.inc("compile.phases", compiled.n_phases)
    return compiled


class _EventBinner:
    """Accumulates chunked events into per-pid window histograms.

    Holds one growing ``(n_windows, n_pages)`` count matrix per pid plus
    scalar write/event tallies; each chunk folds in via one
    ``bincount`` over a combined ``window * n_pages + vpn`` index, so
    the per-event cost is a handful of vectorized passes.
    """

    def __init__(self, n_pages: Optional[int], window_ns: int) -> None:
        if window_ns <= 0:
            raise ValueError("window duration must be positive")
        self.window_ns = int(window_ns)
        self.n_pages = n_pages
        self.counts: Dict[int, np.ndarray] = {}
        self.events: Dict[int, int] = {}
        self.writes: Dict[int, int] = {}
        self.max_window: Dict[int, int] = {}

    def add_chunk(self, chunk: EventChunk) -> int:
        timestamps, pids, vpns, is_write = (
            np.asarray(chunk[0], dtype=np.int64),
            np.asarray(chunk[1], dtype=np.int64),
            np.asarray(chunk[2], dtype=np.int64),
            np.asarray(chunk[3], dtype=bool),
        )
        if not (
            timestamps.size == pids.size == vpns.size == is_write.size
        ):
            raise ValueError("event chunk arrays must share one length")
        if timestamps.size == 0:
            return 0
        if np.any(timestamps < 0) or np.any(vpns < 0):
            raise ValueError("timestamps and vpns must be non-negative")
        if self.n_pages is None:
            self.n_pages = int(vpns.max()) + 1
        elif np.any(vpns >= self.n_pages):
            raise ValueError(
                f"vpn out of range for n_pages={self.n_pages}"
            )
        windows = timestamps // self.window_ns
        for pid in np.unique(pids).tolist():
            mask = pids == pid
            self._fold(int(pid), windows[mask], vpns[mask], is_write[mask])
        return int(timestamps.size)

    def _fold(
        self,
        pid: int,
        windows: np.ndarray,
        vpns: np.ndarray,
        is_write: np.ndarray,
    ) -> None:
        top = int(windows.max())
        matrix = self.counts.get(pid)
        if matrix is None or top >= matrix.shape[0]:
            grown = np.zeros(
                (max(top + 1, 2 * (0 if matrix is None else matrix.shape[0])),
                 self.n_pages),
                dtype=np.float64,
            )
            if matrix is not None:
                grown[: matrix.shape[0]] = matrix
            self.counts[pid] = matrix = grown
        flat = windows * self.n_pages + vpns
        binned = np.bincount(flat, minlength=(top + 1) * self.n_pages)
        matrix[: top + 1] += binned.reshape(top + 1, self.n_pages)
        self.events[pid] = self.events.get(pid, 0) + int(windows.size)
        self.writes[pid] = self.writes.get(pid, 0) + int(
            np.count_nonzero(is_write)
        )
        self.max_window[pid] = max(self.max_window.get(pid, 0), top)

    def windows_for(self, pid: int) -> np.ndarray:
        matrix = self.counts[pid]
        return matrix[: self.max_window[pid] + 1]

    def write_fraction_for(self, pid: int) -> float:
        events = self.events.get(pid, 0)
        if events == 0:
            return 0.05
        return self.writes[pid] / events


def compile_event_stream(
    chunks: Iterable[EventChunk],
    n_pages: Optional[int] = None,
    window_ns: int = DEFAULT_WINDOW_NS,
    threshold: float = DEFAULT_SEGMENT_THRESHOLD,
    min_windows: int = 1,
    obs=None,
) -> Dict[int, CompiledTrace]:
    """Compile a memory-bounded stream of event chunks, one trace per pid.

    Each chunk is a ``(timestamp_ns, pid, vpn, is_write)`` tuple of
    parallel arrays; only the current chunk and the per-pid window
    histograms are resident.  Returns ``{pid: CompiledTrace}``.
    """
    binner = _EventBinner(n_pages, window_ns)
    for chunk in chunks:
        binner.add_chunk(chunk)
    if not binner.counts:
        raise ValueError("event stream contains no events")
    compiled: Dict[int, CompiledTrace] = {}
    for pid in sorted(binner.counts):
        compiled[pid] = compile_windows(
            binner.windows_for(pid),
            window_ns,
            write_fraction=binner.write_fraction_for(pid),
            threshold=threshold,
            min_windows=min_windows,
            n_events=binner.events[pid],
            obs=obs,
            pid=pid,
        )
    return compiled


def compile_events(
    timestamps: Sequence[int],
    pids: Sequence[int],
    vpns: Sequence[int],
    is_write: Sequence[bool],
    n_pages: Optional[int] = None,
    window_ns: int = DEFAULT_WINDOW_NS,
    threshold: float = DEFAULT_SEGMENT_THRESHOLD,
    min_windows: int = 1,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
    obs=None,
) -> Dict[int, CompiledTrace]:
    """One-shot event-array entry point (chunks internally)."""
    timestamps = np.asarray(timestamps, dtype=np.int64)
    pids = np.asarray(pids, dtype=np.int64)
    vpns = np.asarray(vpns, dtype=np.int64)
    is_write = np.asarray(is_write, dtype=bool)

    def chunks() -> Iterator[EventChunk]:
        for lo in range(0, timestamps.size, int(chunk_events)):
            hi = lo + int(chunk_events)
            yield (
                timestamps[lo:hi],
                pids[lo:hi],
                vpns[lo:hi],
                is_write[lo:hi],
            )

    return compile_event_stream(
        chunks(),
        n_pages=n_pages,
        window_ns=window_ns,
        threshold=threshold,
        min_windows=min_windows,
        obs=obs,
    )


def read_event_csv(
    path: PathLike, chunk_events: int = DEFAULT_CHUNK_EVENTS
) -> Iterator[EventChunk]:
    """Stream ``timestamp_ns,pid,vpn,is_write`` rows as event chunks.

    A header row naming the columns is skipped if present; chunks hold
    at most ``chunk_events`` events so huge files stay memory-bounded.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        rows: List[Tuple[int, int, int, int]] = []
        for row in reader:
            if not row or row[0].strip().lstrip("-").isdigit() is False:
                continue  # header or blank line
            rows.append(
                (int(row[0]), int(row[1]), int(row[2]), int(row[3]))
            )
            if len(rows) >= chunk_events:
                yield _rows_to_chunk(rows)
                rows = []
        if rows:
            yield _rows_to_chunk(rows)


def _rows_to_chunk(rows: List[Tuple[int, int, int, int]]) -> EventChunk:
    """Transpose accumulated csv rows into one chunk of parallel arrays."""
    array = np.asarray(rows, dtype=np.int64)
    return (
        array[:, 0],
        array[:, 1],
        array[:, 2],
        array[:, 3].astype(bool),
    )


def read_event_npz(path: PathLike) -> EventChunk:
    """Load an event-format ``.npz`` (timestamp_ns/pid/vpn/is_write keys)."""
    with np.load(path) as data:
        return (
            np.asarray(data["timestamp_ns"], dtype=np.int64),
            np.asarray(data["pid"], dtype=np.int64),
            np.asarray(data["vpn"], dtype=np.int64),
            np.asarray(data["is_write"], dtype=bool),
        )


def compile_trace_file(
    path: PathLike,
    window_ns: Optional[int] = None,
    threshold: float = DEFAULT_SEGMENT_THRESHOLD,
    min_windows: int = 1,
    obs=None,
    pid: int = 0,
) -> Dict[int, CompiledTrace]:
    """Compile a trace file of either supported format.

    ``.npz`` files are sniffed: a ``windows`` key is the recorder's
    window format (binned at its recorded interval; ``window_ns`` must
    then be omitted or match), a ``timestamp_ns`` key is the raw event
    format.  ``.csv`` files stream through :func:`read_event_csv`.
    """
    path = pathlib.Path(path)
    if path.suffix == ".csv":
        return compile_event_stream(
            read_event_csv(path),
            window_ns=window_ns or DEFAULT_WINDOW_NS,
            threshold=threshold,
            min_windows=min_windows,
            obs=obs,
        )
    with np.load(path) as data:
        keys = set(data.files)
    if "windows" in keys:
        windows, interval_ns, write_fraction = load_trace_windows(path)
        if window_ns is not None and int(window_ns) != interval_ns:
            raise ValueError(
                "window format traces are pre-binned; window_ns must "
                f"match the recorded interval ({interval_ns})"
            )
        return {
            pid: compile_windows(
                windows,
                interval_ns,
                write_fraction=write_fraction,
                threshold=threshold,
                min_windows=min_windows,
                obs=obs,
                pid=pid,
            )
        }
    return compile_event_stream(
        [read_event_npz(path)],
        window_ns=window_ns or DEFAULT_WINDOW_NS,
        threshold=threshold,
        min_windows=min_windows,
        obs=obs,
    )


def synthetic_event_stream(
    n_events: int,
    n_pages: int = 256,
    n_phases: int = 3,
    pid: int = 0,
    window_ns: int = DEFAULT_WINDOW_NS,
    windows_per_phase: int = 8,
    write_fraction: float = 0.1,
    seed: int = 0,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
) -> Iterator[EventChunk]:
    """Deterministic sample event generator (benchmarks and tests).

    Emits ``n_events`` events whose hotspot rotates every
    ``windows_per_phase`` windows through ``n_phases`` Zipf-like page
    popularities, with evenly spaced timestamps -- a known-phase-count
    stream for compile-throughput measurement and segmentation checks.
    """
    if n_events <= 0 or n_phases <= 0 or windows_per_phase <= 0:
        raise ValueError("event/phase counts must be positive")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_pages + 1, dtype=np.float64)
    cdfs = []
    for phase in range(n_phases):
        weights = np.roll(
            ranks ** -1.2, (phase * n_pages) // n_phases
        )
        cdfs.append(np.cumsum(weights / weights.sum()))
    total_ns = n_phases * windows_per_phase * window_ns
    step_ns = max(1, total_ns // n_events)
    emitted = 0
    while emitted < n_events:
        count = min(int(chunk_events), n_events - emitted)
        timestamps = (
            np.arange(emitted, emitted + count, dtype=np.int64) * step_ns
        )
        phase_idx = (
            timestamps // (windows_per_phase * window_ns)
        ) % n_phases
        uniform = rng.random(count)
        vpns = np.empty(count, dtype=np.int64)
        for phase in range(n_phases):
            mask = phase_idx == phase
            if np.any(mask):
                vpns[mask] = np.searchsorted(
                    cdfs[phase], uniform[mask]
                )
        np.clip(vpns, 0, n_pages - 1, out=vpns)
        is_write = rng.random(count) < write_fraction
        pids = np.full(count, pid, dtype=np.int64)
        yield (timestamps, pids, vpns, is_write)
        emitted += count
