"""PEBS (processor event-based sampling) substrate.

Hardware event sampling is how HeMem/Memtis/FlexMem measure hotness.  Its
defining constraint -- and the root of the paper's Section 2.3 critique --
is the *bounded sample budget*: the kernel caps the sampling rate (and
system designers lower it further for overhead), so the per-page counter
mass available in a cooling period is fixed.  Spread over millions of base
pages it is statistically meaningless; concentrated on thousands of huge
pages it works.  :class:`PebsSampler` reproduces exactly that budget
behaviour, and :class:`CoolingHistogram` the Memtis-style log-scale hotness
histogram built on top of it.
"""

from repro.pebs.histogram import CoolingHistogram
from repro.pebs.sampler import PebsSampler

__all__ = ["CoolingHistogram", "PebsSampler"]
