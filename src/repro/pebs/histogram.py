"""Memtis-style cooling histogram over sampled access counts.

Memtis keeps a per-page access counter fed by PEBS samples, periodically
*cools* all counters (halving them), and maintains a global histogram over
log2-scale bins.  The hot set is chosen by walking the histogram from the
hottest bin down until the covered pages fill the fast tier -- the
"fast-slow memory ratio configuration" classification criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np


def bin_of(counts: np.ndarray) -> np.ndarray:
    """log2-scale hotness bin of each counter value.

    Bin 0 holds counters < 1; bin ``i`` (i >= 1) holds values in
    ``[2^(i-1), 2^i)``.  This is the binning behind Figure 2b.
    """
    counts = np.asarray(counts, dtype=np.float64)
    bins = np.zeros(counts.shape, dtype=np.int64)
    positive = counts >= 1
    bins[positive] = np.floor(np.log2(counts[positive])).astype(np.int64) + 1
    return bins


@dataclass
class CoolingHistogram:
    """Per-page counters with periodic cooling and log-scale histogram.

    Attributes:
        n_pages: number of tracked (base or huge) pages.
        n_bins: histogram bins (bin 0 = never sampled / cooled away).
        cooling_period_ns: interval between halvings.
    """

    n_pages: int
    n_bins: int = 16
    cooling_period_ns: int = 2_000_000_000
    counts: np.ndarray = field(init=False)
    _last_cool_ns: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.n_pages <= 0:
            raise ValueError("need at least one tracked page")
        if self.n_bins < 2:
            raise ValueError("need at least two bins")
        if self.cooling_period_ns <= 0:
            raise ValueError("cooling period must be positive")
        self.counts = np.zeros(self.n_pages, dtype=np.float64)

    def record(self, sampled_counts: np.ndarray) -> None:
        """Add one sampling window's hits to the counters."""
        sampled_counts = np.asarray(sampled_counts)
        if sampled_counts.shape != self.counts.shape:
            raise ValueError("sample array must match tracked pages")
        self.counts += sampled_counts

    def maybe_cool(self, now_ns: int) -> bool:
        """Halve every counter if a cooling period elapsed."""
        if now_ns - self._last_cool_ns < self.cooling_period_ns:
            return False
        self.counts *= 0.5
        self._last_cool_ns = now_ns
        return True

    def histogram(self) -> np.ndarray:
        """Page counts per hotness bin (clipped into ``n_bins``)."""
        bins = np.minimum(bin_of(self.counts), self.n_bins - 1)
        return np.bincount(bins, minlength=self.n_bins)

    def hot_threshold_bin(self, fast_capacity_pages: int) -> int:
        """Lowest bin considered hot, by the capacity-ratio criterion.

        Walk bins from hottest to coldest, accumulating pages, and stop at
        the last bin that still fits in ``fast_capacity_pages``.  Returns
        ``n_bins`` when even the hottest bin overflows the fast tier.
        """
        if fast_capacity_pages < 0:
            raise ValueError("capacity cannot be negative")
        hist = self.histogram()
        covered = 0
        threshold = self.n_bins
        for b in range(self.n_bins - 1, 0, -1):
            if covered + hist[b] > fast_capacity_pages:
                break
            covered += hist[b]
            threshold = b
        return threshold

    def classify(
        self, fast_capacity_pages: int
    ) -> Tuple[np.ndarray, int]:
        """Return (hot-page mask, threshold bin)."""
        threshold = self.hot_threshold_bin(fast_capacity_pages)
        bins = np.minimum(bin_of(self.counts), self.n_bins - 1)
        return bins >= threshold, threshold

    def coefficient_of_variation(self) -> float:
        """CV of the positive counters -- the paper's instability metric
        for base-page PEBS classification (Section 2.4)."""
        positive = self.counts[self.counts > 0]
        if positive.size == 0:
            return 0.0
        mean = positive.mean()
        if mean == 0:
            return 0.0
        return float(positive.std() / mean)
