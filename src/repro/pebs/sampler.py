"""Bounded-rate memory-access sampler.

A PEBS counter fires every N-th retired load/store (the *sampling period*),
so over a window of ``T`` seconds the whole system collects at most
``rate * T`` samples no matter how many pages are live.  Each sample also
costs CPU time to drain from the PEBS buffer -- the overhead that forces
designers to keep the rate low.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class PebsConfig:
    """Sampler tunables.

    ``max_samples_per_sec`` is the system-wide budget (the kernel caps perf
    sampling around 100k/s and tiering systems configure less than that).
    ``sample_drain_cost_ns`` is the per-sample interrupt/drain overhead.
    """

    max_samples_per_sec: float = 100_000.0
    sample_drain_cost_ns: int = 300

    def __post_init__(self) -> None:
        if self.max_samples_per_sec <= 0:
            raise ValueError("sample budget must be positive")
        if self.sample_drain_cost_ns < 0:
            raise ValueError("drain cost cannot be negative")


class PebsSampler:
    """Samples page accesses under a fixed system-wide budget."""

    def __init__(
        self, config: PebsConfig, rng: np.random.Generator
    ) -> None:
        self.config = config
        self._rng = rng
        self.total_samples = 0.0
        self.total_overhead_ns = 0.0
        #: optional :class:`repro.obs.hub.ObsHub` (wired by the owning
        #: policy at attach time); window events and sample counters
        #: flow to it
        self.obs = None

    def sample_window(
        self,
        access_probs: np.ndarray,
        n_accesses: float,
        window_ns: int,
        budget_share: float = 1.0,
        pid: Optional[int] = None,
        now_ns: Optional[int] = None,
    ) -> np.ndarray:
        """Sample one window of a process's traffic.

        Args:
            access_probs: per-page access distribution (sums to 1).
            n_accesses: accesses the process issued in the window.
            window_ns: window length.
            budget_share: this process's share of the machine-wide sample
                budget (1 / number of sampled processes).
            pid / now_ns: owning process and window timestamp for the
                ``pebs.window`` trace event (optional; the event is only
                emitted when both are provided and a hub is wired).

        Returns:
            Per-page sampled hit counts.  The expected total is
            ``min(n_accesses, rate * window * share)`` -- the budget cap in
            action.  Counts are Poisson around the expectation, matching
            the randomness of period-based sampling.
        """
        n_samples = self.window_budget(n_accesses, window_ns, budget_share)
        return self.draw(access_probs, n_samples, pid=pid, now_ns=now_ns)

    def window_budget(
        self,
        n_accesses: float,
        window_ns: int,
        budget_share: float = 1.0,
    ) -> float:
        """Samples the budget admits for one window: O(1).

        ``min(n_accesses, rate * window * share)``.  Policies that defer
        the Poisson draw accumulate these scalars and call :meth:`draw`
        at consumption time -- Poisson additivity makes drawing once over
        the summed budget statistically identical to drawing per window.
        """
        if not 0 < budget_share <= 1:
            raise ValueError("budget share must be in (0, 1]")
        if n_accesses < 0:
            raise ValueError("access count cannot be negative")
        budget = (
            self.config.max_samples_per_sec * (window_ns / 1e9) * budget_share
        )
        return min(float(n_accesses), budget)

    def draw(
        self,
        access_probs: np.ndarray,
        n_samples: float,
        pid: Optional[int] = None,
        now_ns: Optional[int] = None,
    ) -> np.ndarray:
        """Draw per-page Poisson hit counts for ``n_samples`` samples."""
        if n_samples <= 0:
            return np.zeros_like(np.asarray(access_probs))
        expected = np.asarray(access_probs, dtype=np.float64) * n_samples
        counts = self._rng.poisson(expected).astype(np.float64)
        drawn = float(counts.sum())
        overhead = drawn * self.config.sample_drain_cost_ns
        self.total_samples += drawn
        self.total_overhead_ns += overhead
        if self.obs is not None:
            self.obs.inc("pebs.samples", drawn)
            self.obs.inc("pebs.overhead_ns", overhead)
            if pid is not None and now_ns is not None:
                self.obs.emit(
                    "pebs.window",
                    now_ns,
                    pid=pid,
                    n_samples=drawn,
                    overhead_ns=overhead,
                )
        return counts

    def draw_many(
        self,
        runs,
        pid: Optional[int] = None,
        now_ns: Optional[int] = None,
    ) -> np.ndarray:
        """Draw several pending sampling runs with one stacked RNG call.

        ``runs`` is a sequence of ``(access_probs, n_samples)`` pairs
        over the same page range.  Returns the per-run count matrix
        (``len(live runs) x n_pages``), where *live* means a positive
        sample budget -- non-positive runs are skipped without touching
        the RNG stream, exactly as :meth:`draw` skips them.

        Bit-identical to calling :meth:`draw` once per run, in the same
        order: ``Generator.poisson`` over the stacked rate matrix
        consumes the bit stream element by element in C order (row 0
        first), which is the same consumption sequence as the per-run
        calls; overhead accounting and ``pebs.window`` events are
        replayed per run in order.
        """
        live = [
            (np.asarray(probs, dtype=np.float64), float(n_samples))
            for probs, n_samples in runs
            if n_samples > 0
        ]
        if not live:
            n_pages = len(runs[0][0]) if len(runs) else 0
            return np.zeros((0, n_pages), dtype=np.float64)
        lam = np.stack([probs for probs, _ in live])
        lam *= np.asarray(
            [n_samples for _, n_samples in live], dtype=np.float64
        )[:, None]
        counts = self._rng.poisson(lam).astype(np.float64)
        for drawn in counts.sum(axis=1).tolist():
            overhead = drawn * self.config.sample_drain_cost_ns
            self.total_samples += drawn
            self.total_overhead_ns += overhead
            if self.obs is not None:
                self.obs.inc("pebs.samples", drawn)
                self.obs.inc("pebs.overhead_ns", overhead)
                if pid is not None and now_ns is not None:
                    self.obs.emit(
                        "pebs.window",
                        now_ns,
                        pid=pid,
                        n_samples=drawn,
                        overhead_ns=overhead,
                    )
        return counts

    def drain_overhead_ns(self) -> float:
        """Read and reset the accumulated sampling overhead."""
        overhead = self.total_overhead_ns
        self.total_overhead_ns = 0.0
        return overhead
