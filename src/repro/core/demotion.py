"""Proactive demotion support: the ``pro`` watermark sizing and the
page-thrashing monitor (Section 3.3).

The watermark math lives in :class:`repro.kernel.reclaim.Watermarks`; this
module computes Chrono's dynamic gap (twice the scan interval times the
promotion rate limit) and tracks thrashing: a demoted page re-selected as a
promotion candidate within one scan period is a wasted round trip.  When
thrash events exceed 20% of promotions in a period, the promotion rate
limit is halved for the next period.
"""

from __future__ import annotations

from dataclasses import dataclass


def pro_watermark_gap_pages(
    scan_period_ns: int, rate_limit_pages_per_sec: float
) -> int:
    """Headroom above ``high``: two scan intervals of promotions."""
    if scan_period_ns <= 0:
        raise ValueError("scan period must be positive")
    if rate_limit_pages_per_sec <= 0:
        raise ValueError("rate limit must be positive")
    return int(2.0 * (scan_period_ns / 1e9) * rate_limit_pages_per_sec)


@dataclass
class ThrashingMonitor:
    """Thrash-event accounting with rate-limit backoff."""

    threshold_ratio: float = 0.20
    backoff_factor: float = 0.5
    window_ns: int = 60_000_000_000  # one scan period

    thrash_events: int = 0
    promotions: int = 0
    total_thrash_events: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.threshold_ratio < 1:
            raise ValueError("threshold ratio must be in (0, 1)")
        if not 0 < self.backoff_factor < 1:
            raise ValueError("backoff factor must be in (0, 1)")
        if self.window_ns <= 0:
            raise ValueError("window must be positive")

    def record_promotions(self, count: int) -> None:
        if count < 0:
            raise ValueError("promotion count cannot be negative")
        self.promotions += count

    def record_thrash(self, count: int) -> None:
        """A recently demoted page became a promotion candidate again."""
        if count < 0:
            raise ValueError("thrash count cannot be negative")
        self.thrash_events += count
        self.total_thrash_events += count

    def thrash_ratio(self) -> float:
        if self.promotions == 0:
            return 0.0
        return self.thrash_events / self.promotions

    def end_window(self, rate_limit_pages_per_sec: float) -> float:
        """Close the window: return the (possibly halved) rate limit and
        reset the counters."""
        if rate_limit_pages_per_sec <= 0:
            raise ValueError("rate limit must be positive")
        new_rate = rate_limit_pages_per_sec
        if self.thrash_ratio() > self.threshold_ratio:
            new_rate = rate_limit_pages_per_sec * self.backoff_factor
        self.thrash_events = 0
        self.promotions = 0
        return new_rate
