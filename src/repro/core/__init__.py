"""Chrono: the paper's primary contribution.

* :mod:`repro.core.cit` -- Captured Idle Time: bucketing, frequency
  estimation, and the CIT metadata conventions.
* :mod:`repro.core.candidates` -- the XArray-backed n-round candidate
  filter (two rounds by default; Appendix B justifies the choice).
* :mod:`repro.core.promotion` -- the rate-limited promotion queue.
* :mod:`repro.core.tuning` -- semi-automatic CIT-threshold tuning.
* :mod:`repro.core.dcsc` -- Dynamic CIT Statistic Collection: randomized
  probing, per-tier heat maps, overlap identification, and fully automatic
  threshold + rate-limit tuning.
* :mod:`repro.core.demotion` -- the promotion-aware ``pro`` watermark and
  the page-thrashing monitor.
* :mod:`repro.core.hugepage` -- huge-page threshold scaling and heat-map
  accounting.
* :mod:`repro.core.policy` -- :class:`ChronoPolicy` tying it together,
  plus the Figure 13 ablation variants.
"""

from repro.core.candidates import CandidateFilter
from repro.core.cit import (
    CIT_BUCKETS,
    bucket_lower_bound_ns,
    bucket_upper_bound_ns,
    cit_bucket,
    cit_to_frequency_per_sec,
)
from repro.core.dcsc import DcscCollector
from repro.core.demotion import ThrashingMonitor
from repro.core.policy import ChronoPolicy, make_chrono_variant
from repro.core.promotion import PromotionQueue
from repro.core.tuning import SemiAutoTuner

__all__ = [
    "CIT_BUCKETS",
    "CandidateFilter",
    "ChronoPolicy",
    "DcscCollector",
    "PromotionQueue",
    "SemiAutoTuner",
    "ThrashingMonitor",
    "bucket_lower_bound_ns",
    "bucket_upper_bound_ns",
    "cit_bucket",
    "cit_to_frequency_per_sec",
    "make_chrono_variant",
]
