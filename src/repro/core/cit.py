"""Captured Idle Time (CIT) primitives.

CIT is the time gap between a Ticking-scan unmapping a page and the next
access faulting on it.  Because the scan fires independently of the
application, the gap is (statistically) a fraction of the page's access
period: low CIT == high access frequency.  Millisecond timers give Chrono a
measurable frequency range up to 1000 accesses/second -- three orders of
magnitude finer than page-fault counters (Table 1).

The DCSC statistics quantize CIT into ``B = 28`` exponential buckets:
bucket 0 holds CITs below 1 ms, bucket ``i`` holds ``[2^(i-1), 2^i) ms``.
A CIT above ``2^27 ms`` (~37 hours idle) carries no useful hotness signal
and saturates into the last bucket.
"""

from __future__ import annotations

import numpy as np

from repro.sim.timeunits import MILLISECOND

#: number of CIT buckets in DCSC heat maps (the paper's ``B-bucket``)
CIT_BUCKETS: int = 28

#: finest CIT granularity on the paper's testbed: 1 ms.  The scaled-down
#: simulation runs with proportionally hotter per-page rates, so
#: experiments pass a finer ``unit_ns`` to keep the bucket resolution in
#: the same *relative* position (unit / scan period) as the real system.
CIT_UNIT_NS: int = MILLISECOND


def cit_bucket(
    cit_ns: np.ndarray,
    n_buckets: int = CIT_BUCKETS,
    unit_ns: int = CIT_UNIT_NS,
) -> np.ndarray:
    """Bucket index of each CIT value.

    Negative CITs (sentinel ``-1`` for unstamped pages) are treated as
    maximally cold and land in the last bucket.
    """
    if n_buckets < 2:
        raise ValueError("need at least two CIT buckets")
    if unit_ns <= 0:
        raise ValueError("CIT unit must be positive")
    cit_ns = np.asarray(cit_ns, dtype=np.int64)
    units = cit_ns / unit_ns
    buckets = np.zeros(cit_ns.shape, dtype=np.int64)
    above = units >= 1.0
    buckets[above] = np.floor(np.log2(units[above])).astype(np.int64) + 1
    buckets = np.minimum(buckets, n_buckets - 1)
    buckets[cit_ns < 0] = n_buckets - 1
    return buckets


def bucket_lower_bound_ns(bucket: int, unit_ns: int = CIT_UNIT_NS) -> int:
    """Inclusive lower CIT bound of a bucket, in nanoseconds."""
    if bucket < 0:
        raise ValueError("bucket index cannot be negative")
    if unit_ns <= 0:
        raise ValueError("CIT unit must be positive")
    if bucket == 0:
        return 0
    return (1 << (bucket - 1)) * unit_ns


def bucket_upper_bound_ns(bucket: int, unit_ns: int = CIT_UNIT_NS) -> int:
    """Exclusive upper CIT bound of a bucket, in nanoseconds."""
    if bucket < 0:
        raise ValueError("bucket index cannot be negative")
    if unit_ns <= 0:
        raise ValueError("CIT unit must be positive")
    return (1 << bucket) * unit_ns


def cit_to_frequency_per_sec(cit_ns: np.ndarray) -> np.ndarray:
    """Rough access-frequency estimate implied by a CIT value.

    With uniform capture, ``E[CIT] = T0 / 2``; the unbiased single-sample
    period estimate is ``2 * CIT`` and the frequency its inverse.  Values
    at or below zero (sentinels) map to frequency 0.
    """
    cit_ns = np.asarray(cit_ns, dtype=np.float64)
    freq = np.zeros(cit_ns.shape, dtype=np.float64)
    valid = cit_ns > 0
    freq[valid] = 1e9 / (2.0 * cit_ns[valid])
    return freq


def max_measurable_frequency_per_sec() -> float:
    """The headline capability: 1 ms timers resolve up to ~1000 acc/sec."""
    return 1e9 / (2.0 * CIT_UNIT_NS) * 2.0
