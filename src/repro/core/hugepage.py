"""Chrono's huge-page support (Section 3.4).

Hotness semantics stay consistent across page sizes by scaling the CIT
threshold with the page's coverage: a 2 MB page aggregates 512 base pages'
traffic, so the *same* per-byte hotness shows up as a 512x shorter idle
gap, and the threshold shrinks accordingly:

    TH_2MB = TH_4KB / 512        TH_1GB = TH_4KB / (512 * 512)

For DCSC accounting a huge page's measurement is spread back over its base
pages: a 2 MB page in CIT bucket ``i`` counts as 512 base pages in bucket
``i + 9`` (adjacent buckets represent 2x frequency, and 512 = 2^9).
"""

from __future__ import annotations

import numpy as np

from repro.vm.hugepage import HUGE_1GB_PAGES, HUGE_2MB_PAGES

#: log2(512): bucket shift for distributing 2MB measurements to base pages
HUGE_2MB_BUCKET_SHIFT: int = 9


def scaled_threshold_ns(base_threshold_ns: float, hp_pages: int) -> float:
    """CIT threshold for a huge page covering ``hp_pages`` base pages."""
    if base_threshold_ns <= 0:
        raise ValueError("threshold must be positive")
    if hp_pages < 1:
        raise ValueError("huge page must cover at least one base page")
    return base_threshold_ns / hp_pages


def threshold_2mb_ns(base_threshold_ns: float) -> float:
    """``TH_2MB = TH_4KB / 512``."""
    return scaled_threshold_ns(base_threshold_ns, HUGE_2MB_PAGES)


def threshold_1gb_ns(base_threshold_ns: float) -> float:
    """``TH_1GB = TH_4KB / (512 * 512)``."""
    return scaled_threshold_ns(base_threshold_ns, HUGE_1GB_PAGES)


def distribute_huge_buckets(
    huge_buckets: np.ndarray,
    n_buckets: int,
    hp_pages: int = HUGE_2MB_PAGES,
) -> np.ndarray:
    """Convert per-huge-page bucket indices to base-page heat-map entries.

    Returns ``(base_buckets, base_counts)`` flattened into a histogram
    contribution array of length ``n_buckets``: each huge page in bucket
    ``i`` contributes ``hp_pages`` base pages in bucket ``i + shift``
    (saturating at the coldest bucket).
    """
    if n_buckets < 2:
        raise ValueError("need at least two buckets")
    if hp_pages < 1:
        raise ValueError("huge page must cover at least one base page")
    shift = int(round(np.log2(hp_pages)))
    huge_buckets = np.asarray(huge_buckets, dtype=np.int64)
    if np.any(huge_buckets < 0):
        raise ValueError("bucket indices cannot be negative")
    shifted = np.minimum(huge_buckets + shift, n_buckets - 1)
    contribution = np.zeros(n_buckets)
    np.add.at(contribution, shifted, float(hp_pages))
    return contribution
