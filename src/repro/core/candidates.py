"""The n-round hot-page candidate filter (Figure 4).

A single CIT sample can misclassify: the scan may have landed just before
an access of an otherwise-cold page.  The filter requires a page to pass
the CIT threshold in ``n`` consecutive measurement rounds before it is
submitted for promotion -- equivalent to thresholding the *maximum* of n
CIT samples, the minimum-variance unbiased estimator of the access period
(Appendix B.1).  Candidates between rounds live in an XArray-like set with
O(1) lookup and a small bounded footprint (the paper measures < 32 KB per
process).

``n_rounds = 1`` reproduces Chrono-basic (no filtering); 2 is the default
(Chrono-twice / Chrono-full); 3 reproduces Chrono-thrice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.vm.process import SimProcess

#: XArray slot cost per candidate entry (vpn key + CIT + round counter)
XARRAY_SLOT_BYTES: int = 16


@dataclass
class FilterResult:
    """Outcome of feeding one fault batch through the filter."""

    ready_vpns: np.ndarray  # passed all rounds: submit for promotion
    new_candidates: int  # entered the candidate set this batch
    rejected: int  # candidates evicted by an over-threshold CIT


class CandidateFilter:
    """Per-process n-round CIT candidate tracking."""

    def __init__(
        self, n_rounds: int = 2, granularity_pages: int = 1
    ) -> None:
        """``granularity_pages > 1`` tracks huge-page groups: the slot ids
        passed to :meth:`observe` are then group indices, and the per-page
        ``candidate`` flags are not maintained (the group is the unit)."""
        if n_rounds < 1:
            raise ValueError("need at least one filtering round")
        if granularity_pages < 1:
            raise ValueError("granularity must cover at least one page")
        self.n_rounds = int(n_rounds)
        self.granularity_pages = int(granularity_pages)
        # pid -> (passes array, max-CIT array); allocated on first use.
        self._passes: Dict[int, np.ndarray] = {}
        self._max_cit: Dict[int, np.ndarray] = {}

    def _slots(self, process: SimProcess) -> int:
        return -(-process.n_pages // self.granularity_pages)

    def _tracks_pages(self) -> bool:
        return self.granularity_pages == 1

    def _arrays(self, process: SimProcess) -> Tuple[np.ndarray, np.ndarray]:
        if process.pid not in self._passes:
            slots = self._slots(process)
            self._passes[process.pid] = np.zeros(slots, dtype=np.int8)
            self._max_cit[process.pid] = np.zeros(slots, dtype=np.int64)
        return self._passes[process.pid], self._max_cit[process.pid]

    def observe(
        self,
        process: SimProcess,
        vpns: np.ndarray,
        cit_ns: np.ndarray,
        threshold_ns: int,
    ) -> FilterResult:
        """Feed one round of CIT measurements for ``vpns``.

        Pages whose CIT is below the threshold advance one round (entering
        the candidate set on their first pass); pages at or above it are
        dropped from the set.  Pages completing ``n_rounds`` are returned
        as promotion-ready and removed from the set.
        """
        if threshold_ns <= 0:
            raise ValueError("CIT threshold must be positive")
        vpns = np.asarray(vpns, dtype=np.int64)
        cit_ns = np.asarray(cit_ns, dtype=np.int64)
        if vpns.shape != cit_ns.shape:
            raise ValueError("vpns and CITs must be parallel")
        passes, max_cit = self._arrays(process)
        pages = process.pages

        below = cit_ns < threshold_ns
        passing = vpns[below]
        failing = vpns[~below]

        new_candidates = int(np.count_nonzero(passes[passing] == 0))
        rejected = int(np.count_nonzero(passes[failing] > 0))

        # Failed measurement evicts the page from the candidate set.
        passes[failing] = 0
        max_cit[failing] = 0
        if self._tracks_pages():
            pages.candidate[failing] = False

        passes[passing] += 1
        np.maximum.at(max_cit, passing, cit_ns[below])
        if self._tracks_pages():
            pages.candidate[passing] = True
            pages.candidate_cit_ns[passing] = max_cit[passing]

        done = passing[passes[passing] >= self.n_rounds]
        passes[done] = 0
        max_cit[done] = 0
        if self._tracks_pages():
            pages.candidate[done] = False

        return FilterResult(
            ready_vpns=done,
            new_candidates=new_candidates,
            rejected=rejected,
        )

    def drop(self, process: SimProcess, vpns: np.ndarray) -> None:
        """Forcibly evict pages from the candidate set (e.g. after they
        migrated or were demoted)."""
        passes, max_cit = self._arrays(process)
        vpns = np.asarray(vpns, dtype=np.int64)
        passes[vpns] = 0
        max_cit[vpns] = 0
        if self._tracks_pages():
            process.pages.candidate[vpns] = False

    def candidate_count(self, process: SimProcess) -> int:
        """Current candidate-set size for a process."""
        passes, _ = self._arrays(process)
        return int(np.count_nonzero(passes))

    def footprint_bytes(self, process: SimProcess) -> int:
        """XArray memory consumed by this process's candidate set."""
        return self.candidate_count(process) * XARRAY_SLOT_BYTES
