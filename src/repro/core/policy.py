"""ChronoPolicy: meticulous promotion + adaptive tuning + proactive
demotion, assembled (Figure 3).

The default configuration is *Chrono-full*: two-round candidate filtering
with DCSC-driven fully automatic tuning of both the CIT threshold and the
promotion rate limit.  The Figure 13 ablation variants are built by
:func:`make_chrono_variant`:

===============  =========  ===========================================
variant          rounds     tuning
===============  =========  ===========================================
``basic``        1          semi-auto (fixed rate limit)
``twice``        2          semi-auto (fixed rate limit)
``thrice``       3          semi-auto (fixed rate limit)
``full``         2          DCSC fully automatic (the default)
``manual``       2          semi-auto, user-supplied rate limit
===============  =========  ===========================================
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.candidates import CandidateFilter
from repro.core.cit import CIT_BUCKETS
from repro.core.dcsc import DcscCollector, DcscConfig
from repro.core.demotion import ThrashingMonitor, pro_watermark_gap_pages
from repro.core.hugepage import scaled_threshold_ns
from repro.core.promotion import PromotionQueue
from repro.core.tuning import SemiAutoTuner
from repro.kernel.scanner import ScanConfig
from repro.kernel.sysctl import fraction, positive
from repro.mem.machine import PAGE_SIZE
from repro.mem.tier import SLOW_TIER
from repro.policies.base import TieringPolicy
from repro.sim.timeunits import MILLISECOND, SECOND
from repro.vm.hugepage import HUGE_2MB_PAGES, base_vpns_of


class ChronoPolicy(TieringPolicy):
    """The paper's system: CIT promotion, adaptive tuning, pro demotion."""

    name = "chrono"

    # Fusion contract: Chrono has no ``on_quantum``; CIT measurement
    # rides the hint-fault path (exact under fused Poisson-merged
    # sampling) and drain/tune/DCSC adaptation are scheduler events
    # (``chrono-drain``/``chrono-tune``/``chrono-dcsc``), so the event
    # horizon bounds fusion to the drain period without a policy cap.
    needs_per_quantum = False
    max_fusion_quanta = None

    def __init__(
        self,
        n_filter_rounds: int = 2,
        tuning: str = "dcsc",
        cit_threshold_ns: float = 1000 * MILLISECOND,
        rate_limit_pages_per_sec: Optional[float] = None,
        delta: float = 0.5,
        scan_period_ns: int = 60 * SECOND,
        scan_step_pages: int = 65_536,
        drain_period_ns: int = 100 * MILLISECOND,
        tune_period_ns: Optional[int] = None,
        dcsc_config: Optional[DcscConfig] = None,
        thrash_threshold: float = 0.20,
        page_granularity: str = "base",
        hp_pages: int = HUGE_2MB_PAGES,
    ) -> None:
        """Create a Chrono policy.

        Args:
            n_filter_rounds: CIT measurement rounds before promotion
                (2 = candidate filtering on, 1 = Chrono-basic).
            tuning: ``dcsc`` (fully automatic) or ``semi``
                (user-fixed rate limit, auto threshold).
            cit_threshold_ns: initial CIT threshold (Table 2: 1000 ms,
                auto-tuned from there).
            rate_limit_pages_per_sec: initial promotion rate limit;
                ``None`` derives a default from the machine at attach
                time (Table 2's 100 MBps scaled to the machine).
            delta: semi-auto adaption step.
            scan_period_ns / scan_step_pages: Ticking-scan cadence.
            drain_period_ns: promotion-queue drain period.
            tune_period_ns: parameter retune period (default: one scan
                period).
            dcsc_config: DCSC knobs (P-victim, B-bucket, probe period).
            thrash_threshold: thrash ratio that halves the rate limit.
            page_granularity: ``base`` or ``huge`` (2 MB migration
                granularity with TH/512 scaling).
            hp_pages: simulated pages per 2 MB region in huge mode
                (scaled-down runs pass ``512 // page_scale``).
        """
        super().__init__()
        if tuning not in ("dcsc", "semi"):
            raise ValueError("tuning must be 'dcsc' or 'semi'")
        if page_granularity not in ("base", "huge"):
            raise ValueError("granularity must be 'base' or 'huge'")
        if cit_threshold_ns <= 0:
            raise ValueError("CIT threshold must be positive")
        if drain_period_ns <= 0:
            raise ValueError("drain period must be positive")
        self.tuning = tuning
        self.page_granularity = page_granularity
        self.scan_period_ns = int(scan_period_ns)
        self.scan_step_pages = int(scan_step_pages)
        self.drain_period_ns = int(drain_period_ns)
        self.tune_period_ns = int(tune_period_ns or scan_period_ns)
        self.cit_threshold_ns = float(cit_threshold_ns)
        self._initial_rate = rate_limit_pages_per_sec
        self.base_rate_limit: float = 0.0  # set at attach
        if hp_pages < 2:
            raise ValueError("a huge-page group needs at least two pages")
        self.hp_pages = int(hp_pages)
        granularity = self.hp_pages if page_granularity == "huge" else 1
        self.filter = CandidateFilter(
            n_rounds=n_filter_rounds, granularity_pages=granularity
        )
        self.dcsc_config = dcsc_config or DcscConfig()
        self.tuner = SemiAutoTuner(
            threshold_ns=float(cit_threshold_ns),
            delta=delta,
            # The threshold can tighten down to the finest CIT level the
            # deployment measures (1 ms on the paper's testbed, finer in
            # scaled simulations).
            min_threshold_ns=float(self.dcsc_config.cit_unit_ns),
        )
        self.dcsc: Optional[DcscCollector] = None
        self.monitor = ThrashingMonitor(
            threshold_ratio=thrash_threshold,
            window_ns=self.tune_period_ns,
        )
        self.queue: Optional[PromotionQueue] = None
        self._last_drain_ns = 0
        self._last_tune_ns = 0
        # Smoothed submission-rate signal: the two-round pipeline makes
        # raw per-window rates bursty (submissions cluster on second-
        # round scan passes), and feeding bursts straight into the
        # multiplicative update ratchets the threshold.  The paper
        # averages the enqueue rate within each Ticking-scan period; the
        # EMA extends that smoothing across periods.
        self._enqueue_rate_ema: Optional[float] = None
        # Persistent thrash backoff: halved on a thrashing window,
        # recovered gradually on clean windows.  Without persistence the
        # next DCSC retarget would undo the halving and the system would
        # oscillate instead of converging to a quiescent placement.
        self._thrash_backoff = 1.0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def _configure(self, kernel) -> None:
        kernel.create_scanner(
            ScanConfig(
                scan_period_ns=self.scan_period_ns,
                scan_step_pages=self.scan_step_pages,
                # Ticking-scan records CIT for slow-tier pages; like the
                # kernel's tiering mode it skips top-tier PTEs (DCSC
                # probes cover the fast tier separately).
                tier_filter=SLOW_TIER,
            )
        )
        kernel.sysctl.set("kernel.numa_balancing", 2)
        self._register_sysctls(kernel)

        if self._initial_rate is None:
            # Table 2's 100 MBps on a 64 GB fast tier, scaled: enough
            # budget to turn the fast tier over in ~20 s.
            self.base_rate_limit = kernel.machine.fast.capacity_pages / 20.0
        else:
            self.base_rate_limit = float(self._initial_rate)
        self.queue = PromotionQueue(self.base_rate_limit)

        if self.tuning == "dcsc":
            self.dcsc = DcscCollector(
                self.dcsc_config, kernel.rng.get("chrono.dcsc")
            )
            self.dcsc.obs = kernel.obs

        # Proactive demotion: mark demoted pages (thrashing monitor) and
        # size the pro watermark for the current rate limit.
        kernel.reclaim.mark_demoted = True
        self._resize_pro_watermark(kernel)

    def _register_sysctls(self, kernel) -> None:
        sysctl = kernel.sysctl
        sysctl.register(
            "chrono.scan_step_pages", 65_536,
            "marked page-set size of a Ticking-scan event (256 MB)",
            validator=positive, unit="pages",
        )
        sysctl.register(
            "chrono.scan_period_sec", 60,
            "period for Ticking-scan to loop over the address space",
            validator=positive, unit="sec",
        )
        sysctl.register(
            "chrono.p_victim", 0.00003,
            "ratio of pages sampled in the DCSC scheme (0.003%)",
            validator=fraction,
        )
        sysctl.register(
            "chrono.b_bucket", CIT_BUCKETS,
            "number of CIT levels in DCSC statistics",
            validator=positive,
        )
        sysctl.register(
            "chrono.delta_step", 0.5,
            "adaption step for CIT threshold adjustment",
            validator=fraction,
        )
        sysctl.register(
            "chrono.cit_threshold_ms", 1000,
            "CIT classification threshold (auto-tuned)",
            validator=positive, unit="ms",
        )
        sysctl.register(
            "chrono.rate_limit_mbps", 100,
            "promotion rate limit (auto-tuned)",
            validator=positive, unit="MBps",
        )

    def _resize_pro_watermark(self, kernel) -> None:
        gap = pro_watermark_gap_pages(
            self.scan_period_ns, self.queue.rate_limit_pages_per_sec
        )
        kernel.watermarks.set_pro_gap(gap)

    # ------------------------------------------------------------------
    # Daemons
    # ------------------------------------------------------------------
    def start(self) -> None:
        kernel = self._require_kernel()
        now = kernel.clock.now
        self._last_drain_ns = now
        self._last_tune_ns = now
        kernel.scheduler.schedule(
            now + self.drain_period_ns, self._drain_tick,
            name="chrono-drain",
        )
        kernel.scheduler.schedule(
            now + self.tune_period_ns, self._tune_tick, name="chrono-tune"
        )
        if self.dcsc is not None:
            kernel.scheduler.schedule(
                now + self.dcsc_config.probe_period_ns,
                self._probe_tick,
                name="chrono-dcsc",
            )

    # -- promotion drain ------------------------------------------------
    def _drain_tick(self, now_ns: int) -> None:
        kernel = self._require_kernel()
        elapsed = now_ns - self._last_drain_ns
        self._last_drain_ns = now_ns
        batches = self.queue.drain(elapsed)
        for process, vpns in batches:
            free = kernel.machine.fast.free_pages
            if free < vpns.size:
                kernel.reclaim.demote_cold_pages(
                    vpns.size - free, now_ns
                )
            moved = kernel.migration.promote(process, vpns)
            self.monitor.record_promotions(int(moved.size))
        if kernel.obs is not None:
            kernel.obs.set_gauge(
                "promotion.queue_depth", len(self.queue)
            )
        kernel.scheduler.schedule(
            now_ns + self.drain_period_ns, self._drain_tick,
            name="chrono-drain",
        )

    # -- parameter tuning ------------------------------------------------
    def _tune_tick(self, now_ns: int) -> None:
        kernel = self._require_kernel()
        window = max(now_ns - self._last_tune_ns, 1)
        self._last_tune_ns = now_ns
        raw_rate = self.queue.enqueue_rate_per_sec(window)
        if self._enqueue_rate_ema is None:
            self._enqueue_rate_ema = raw_rate
        else:
            self._enqueue_rate_ema = (
                0.5 * self._enqueue_rate_ema + 0.5 * raw_rate
            )
        enqueue_rate = self._enqueue_rate_ema

        if self.dcsc is not None:
            targets = self.dcsc.compute_targets(
                fast_capacity_pages=kernel.machine.fast.capacity_pages,
                total_pages=max(
                    sum(p.n_pages for p in kernel.processes), 1
                ),
                scan_period_ns=self.scan_period_ns,
            )
            if targets is not None:
                # DCSC's overlap identification sets the *rate limit*
                # (misplaced mass per scan period -- this is what decays
                # to near zero as placement converges, Figure 10c) and
                # anchors the threshold search range around the capacity
                # quantile.  The threshold itself keeps tracking the
                # enqueue-rate feedback loop: with few misplaced pages
                # the rate target shrinks, the loop tightens the
                # threshold, and promotion traffic quiesces instead of
                # churning DRAM forever.
                anchor_ns, rate = targets
                self.base_rate_limit = min(
                    rate, kernel.machine.fast.capacity_pages / 10.0
                )
                # The anchor is a hard ceiling: pages colder than the
                # capacity quantile cannot all fit in the fast tier, so a
                # threshold above it only manufactures churn.  Below the
                # anchor the enqueue-rate loop is free to tighten.
                self.tuner.min_threshold_ns = max(anchor_ns / 8.0, 1.0)
                self.tuner.max_threshold_ns = float(anchor_ns)
                self.tuner.threshold_ns = float(
                    np.clip(
                        self.tuner.threshold_ns,
                        self.tuner.min_threshold_ns,
                        self.tuner.max_threshold_ns,
                    )
                )
        self.cit_threshold_ns = self.tuner.update(
            self.base_rate_limit * self._thrash_backoff, enqueue_rate
        )

        # Thrashing backoff applies to the effective rate for the next
        # window, whatever produced the base value.  The backoff state is
        # persistent: it halves while thrash windows continue and creeps
        # back up on clean ones.
        if self.monitor.end_window(1.0) < 1.0:
            self._thrash_backoff = max(self._thrash_backoff * 0.5, 0.25)
        else:
            self._thrash_backoff = min(self._thrash_backoff * 1.5, 1.0)
        effective = max(self.base_rate_limit * self._thrash_backoff, 1.0)
        self.queue.set_rate_limit(effective)
        self._resize_pro_watermark(kernel)

        kernel.series.record(
            "chrono.cit_threshold_ms", now_ns,
            self.cit_threshold_ns / MILLISECOND,
        )
        kernel.series.record(
            "chrono.rate_limit_mbps", now_ns,
            effective * PAGE_SIZE / 1e6,
        )
        obs = kernel.obs
        if obs is not None:
            obs.set_gauge("chrono.cit_threshold_ns", self.cit_threshold_ns)
            obs.set_gauge("chrono.rate_limit_pages_per_sec", effective)
            obs.emit(
                "tune.update",
                now_ns,
                cit_threshold_ns=float(self.cit_threshold_ns),
                rate_limit_pages_per_sec=float(effective),
                enqueue_rate=float(enqueue_rate),
                backoff=float(self._thrash_backoff),
            )
        kernel.scheduler.schedule(
            now_ns + self.tune_period_ns, self._tune_tick,
            name="chrono-tune",
        )

    # -- DCSC probing ------------------------------------------------------
    def _probe_tick(self, now_ns: int) -> None:
        kernel = self._require_kernel()
        self.dcsc.decay_maps()
        for process in kernel.processes:
            if process.finished:
                continue
            # Stamp probes at the effective (clock) time; see
            # Kernel.advance_to for why this differs from now_ns.
            probed = self.dcsc.probe_process(process, kernel.clock.now)
            if probed:
                cost = probed * kernel.machine.spec.effective_scan_cost_ns
                process.charge_kernel(cost)
                kernel.stats.kernel_time_ns += cost
                kernel.stats.dcsc_probes += probed
        kernel.scheduler.schedule(
            now_ns + self.dcsc_config.probe_period_ns,
            self._probe_tick,
            name="chrono-dcsc",
        )

    # ------------------------------------------------------------------
    # Fault path
    # ------------------------------------------------------------------
    def on_fault(self, process, batch) -> None:
        kernel = self._require_kernel()
        pages = process.pages
        vpns = batch.vpns
        cits = batch.cit_ns

        probed = pages.probed[vpns]
        if probed.any():
            if self.dcsc is not None:
                profiler = kernel.profiler
                if profiler is not None:
                    profiler.push("dcsc_fold")
                try:
                    self.dcsc.on_probed_fault(
                        process,
                        vpns[probed],
                        cits[probed],
                        batch.fault_ts_ns[probed],
                    )
                finally:
                    if profiler is not None:
                        profiler.pop()
            regular = ~probed
            vpns = vpns[regular]
            cits = cits[regular]

        slow_sel = pages.tier[vpns] == SLOW_TIER
        vpns = vpns[slow_sel]
        cits = cits[slow_sel]
        if vpns.size == 0:
            return

        # Thrashing detection (Section 3.3.2): a page demoted within the
        # last scan period whose CIT already re-qualifies it as a
        # promotion candidate is a wasted round trip.  The event fires at
        # *candidate entry* -- waiting for the full n-round submission
        # would push it outside the detection window.
        now = kernel.clock.now
        thrashing = (
            pages.demoted[vpns]
            & (now - pages.demote_ts_ns[vpns] < self.scan_period_ns)
            & (cits >= 0)
            & (cits < self.cit_threshold_ns)
        )
        n_thrash = int(np.count_nonzero(thrashing))
        if n_thrash:
            self.monitor.record_thrash(n_thrash)
            kernel.stats.thrash_events += n_thrash
            process.stats.thrash_events += n_thrash
            if kernel.obs is not None:
                kernel.obs.inc("thrash.events", n_thrash)
                kernel.obs.emit(
                    "thrash.detect",
                    now,
                    pid=process.pid,
                    n_pages=n_thrash,
                    vpns=vpns[thrashing],
                )
            # Each round trip is counted once.
            pages.demoted[vpns[thrashing]] = False

        if self.page_granularity == "huge":
            self._observe_huge(process, vpns, cits)
        else:
            result = self.filter.observe(
                process, vpns, cits, int(self.cit_threshold_ns)
            )
            self._submit(process, result.ready_vpns)

    def _observe_huge(self, process, vpns, cits) -> None:
        """Huge-page mode: filter at 2 MB group granularity with the
        scaled threshold; ready groups promote wholesale."""
        groups = vpns // self.hp_pages
        order = np.argsort(cits)
        unique_groups, first_idx = np.unique(
            groups[order], return_index=True
        )
        group_cits = cits[order][first_idx]  # min CIT per group
        threshold = scaled_threshold_ns(self.cit_threshold_ns, self.hp_pages)
        result = self.filter.observe(
            process, unique_groups, group_cits, max(int(threshold), 1)
        )
        if result.ready_vpns.size == 0:
            return
        base = base_vpns_of(
            result.ready_vpns, process.n_pages, self.hp_pages
        )
        base = base[process.pages.tier[base] == SLOW_TIER]
        self._submit(process, base)

    def _submit(self, process, ready_vpns: np.ndarray) -> None:
        """Enqueue promotion-ready pages (thrash accounting happens at
        candidate entry in :meth:`on_fault`)."""
        if ready_vpns.size == 0:
            return
        kernel = self._require_kernel()
        added = self.queue.enqueue(process, ready_vpns)
        kernel.stats.promotion_enqueued += added
        obs = kernel.obs
        if obs is not None:
            obs.inc("promotion.submitted", int(ready_vpns.size))
            obs.inc("promotion.enqueued", added)
            obs.set_gauge("promotion.queue_depth", len(self.queue))
            obs.emit(
                "promotion.decision",
                kernel.clock.now,
                pid=process.pid,
                n_submitted=int(ready_vpns.size),
                n_enqueued=added,
                queue_depth=len(self.queue),
                vpns=ready_vpns,
            )


def make_chrono_variant(variant: str, **overrides) -> ChronoPolicy:
    """Build a Figure 13 ablation variant of Chrono."""
    presets = {
        "basic": dict(n_filter_rounds=1, tuning="semi"),
        "twice": dict(n_filter_rounds=2, tuning="semi"),
        "thrice": dict(n_filter_rounds=3, tuning="semi"),
        "full": dict(n_filter_rounds=2, tuning="dcsc"),
        "manual": dict(n_filter_rounds=2, tuning="semi"),
    }
    if variant not in presets:
        raise KeyError(
            f"unknown Chrono variant {variant!r}; "
            f"known: {', '.join(sorted(presets))}"
        )
    kwargs = dict(presets[variant])
    kwargs.update(overrides)
    policy = ChronoPolicy(**kwargs)
    policy.name = f"chrono-{variant}"
    return policy
