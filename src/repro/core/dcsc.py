"""Dynamic CIT Statistic Collection (Section 3.2.2, Figure 5).

DCSC paints a run-time picture of page hotness across *both* tiers:

1. every probe period it samples a small random fraction (``P-victim``,
   default 0.003%) of each process's pages, marks them ``PG_probed`` and
   protects them like a Ticking-scan would;
2. a probed page's first fault yields CIT round one and immediately
   re-protects it (at the fault time); the second fault yields round two,
   and ``max(cit1, cit2)`` -- the same estimator candidate filtering uses
   -- is recorded into the page's tier's *heat map* (a histogram over the
   28 exponential CIT buckets);
3. comparing the heat maps locates the *overlap*: slow-tier pages hotter
   than fast-tier residents.  The overlap point recalibrates the CIT
   threshold; the misplaced-page mass, spread over a scan period, sets the
   promotion rate limit.

Probed pages that never fault within the timeout are, by definition,
extremely cold and are counted into the coldest bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.cit import CIT_BUCKETS, bucket_upper_bound_ns, cit_bucket
from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.sim.jit import dcsc_fold
from repro.sim.timeunits import SECOND
from repro.vm.process import SimProcess


@dataclass
class DcscConfig:
    """DCSC tunables (Table 2's ``P-victim`` and ``B-bucket``)."""

    victim_fraction: float = 0.00003  # 0.003%
    n_buckets: int = CIT_BUCKETS
    cit_unit_ns: int = 1_000_000  # 1 ms, the paper's finest CIT level
    probe_period_ns: int = SECOND
    probe_timeout_ns: int = 30 * SECOND
    decay: float = 0.9
    min_samples: float = 32.0
    min_victims_per_process: int = 4
    #: engine-quantum hint: round the second measurement round's
    #: protection timestamp up to the next multiple of this value.  The
    #: batched engine resolves at most one fault per page per quantum, so
    #: stamping mid-quantum would inflate every round-two CIT by up to a
    #: quantum of dead time.  Because the simulated arrival process is
    #: memoryless, restarting the measurement at the boundary draws from
    #: the same inter-access distribution.  0 disables (event-driven
    #: callers measuring real fault times).
    requantize_ns: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.victim_fraction < 1:
            raise ValueError("victim fraction must be in (0, 1)")
        if self.n_buckets < 2:
            raise ValueError("need at least two buckets")
        if self.cit_unit_ns <= 0:
            raise ValueError("CIT unit must be positive")
        if self.probe_period_ns <= 0 or self.probe_timeout_ns <= 0:
            raise ValueError("periods must be positive")
        if not 0 < self.decay <= 1:
            raise ValueError("decay must be in (0, 1]")
        if self.min_samples <= 0:
            raise ValueError("need a positive sample requirement")
        if self.min_victims_per_process < 1:
            raise ValueError("need at least one victim per process")
        if self.requantize_ns < 0:
            raise ValueError("requantize hint cannot be negative")


class DcscCollector:
    """Randomized probing and per-tier CIT heat maps."""

    def __init__(
        self, config: DcscConfig, rng: np.random.Generator
    ) -> None:
        self.config = config
        self._rng = rng
        #: optional :class:`repro.obs.hub.ObsHub` (wired by the owning
        #: policy at attach time); probe and sample events flow to it
        self.obs = None
        self.heat_maps: Dict[int, np.ndarray] = {
            FAST_TIER: np.zeros(config.n_buckets),
            SLOW_TIER: np.zeros(config.n_buckets),
        }
        self._round: Dict[int, np.ndarray] = {}
        self._first_cit: Dict[int, np.ndarray] = {}
        self._probe_ts: Dict[int, np.ndarray] = {}
        self.probes_issued = 0
        self.samples_recorded = 0.0

    def _arrays(self, process: SimProcess):
        pid = process.pid
        if pid not in self._round:
            self._round[pid] = np.zeros(process.n_pages, dtype=np.int8)
            self._first_cit[pid] = np.zeros(process.n_pages, dtype=np.int64)
            self._probe_ts[pid] = np.zeros(process.n_pages, dtype=np.int64)
        return self._round[pid], self._first_cit[pid], self._probe_ts[pid]

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def probe_process(self, process: SimProcess, now_ns: int) -> int:
        """Select and protect a fresh random victim set; returns count."""
        rounds, _, probe_ts = self._arrays(process)
        self._expire_stale(process, now_ns)
        k = max(
            self.config.min_victims_per_process,
            int(round(self.config.victim_fraction * process.n_pages)),
        )
        k = min(k, process.n_pages)
        victims = self._rng.choice(process.n_pages, size=k, replace=False)
        victims = victims[~process.pages.probed[victims]]
        if victims.size == 0:
            return 0
        # Probe order carries no meaning; sorted victims let the
        # protection path take its monotonic fast paths.
        victims.sort()
        process.pages.probed[victims] = True
        rounds[victims] = 1
        probe_ts[victims] = now_ns
        process.pages.protect_at(
            victims, np.full(victims.size, now_ns, dtype=np.int64)
        )
        self.probes_issued += int(victims.size)
        if self.obs is not None:
            self.obs.inc("dcsc.probes", int(victims.size))
            self.obs.emit(
                "dcsc.probe",
                now_ns,
                pid=process.pid,
                n_probed=int(victims.size),
            )
        return int(victims.size)

    def decay_maps(self) -> None:
        """Age the heat maps so recent windows dominate."""
        for heat_map in self.heat_maps.values():
            heat_map *= self.config.decay

    def _expire_stale(self, process: SimProcess, now_ns: int) -> None:
        """Probes that never faulted are maximally cold."""
        rounds, _, probe_ts = self._arrays(process)
        stale = np.flatnonzero(
            process.pages.probed
            & (now_ns - probe_ts > self.config.probe_timeout_ns)
        )
        if stale.size == 0:
            return
        for tier in (FAST_TIER, SLOW_TIER):
            count = int(
                np.count_nonzero(process.pages.tier[stale] == tier)
            )
            if count:
                self.heat_maps[tier][-1] += count
                self.samples_recorded += count
        process.pages.probed[stale] = False
        process.pages.unprotect(stale)
        rounds[stale] = 0
        if self.obs is not None:
            self.obs.inc("dcsc.expired", int(stale.size))

    # ------------------------------------------------------------------
    # Fault-side collection
    # ------------------------------------------------------------------
    def on_probed_fault(
        self,
        process: SimProcess,
        vpns: np.ndarray,
        cit_ns: np.ndarray,
        fault_ts_ns: np.ndarray,
    ) -> None:
        """Handle faults on PG_probed pages (both measurement rounds)."""
        rounds, first_cit, _ = self._arrays(process)
        vpns = np.asarray(vpns, dtype=np.int64)
        cit_ns = np.asarray(cit_ns, dtype=np.int64)
        fault_ts_ns = np.asarray(fault_ts_ns, dtype=np.int64)

        # Evaluate both round memberships before mutating, or a page
        # advanced to round two by this batch would also be *recorded* by
        # this batch.
        in_round1 = rounds[vpns] == 1
        in_round2 = rounds[vpns] == 2
        round1 = vpns[in_round1]
        if round1.size:
            first_cit[round1] = cit_ns[in_round1]
            rounds[round1] = 2
            # Second measurement round starts at the fault instant
            # (rounded up to the engine boundary when configured; see
            # DcscConfig.requantize_ns).
            restart_ts = fault_ts_ns[in_round1]
            if self.config.requantize_ns > 0:
                q = self.config.requantize_ns
                restart_ts = (restart_ts // q + 1) * q
            process.pages.protect_at(round1, restart_ts)

        round2 = vpns[in_round2]
        if round2.size:
            max_cit = np.maximum(first_cit[round2], cit_ns[in_round2])
            buckets = cit_bucket(
                max_cit, self.config.n_buckets, self.config.cit_unit_ns
            )
            # One fused (tier, bucket) reduction instead of a per-tier
            # ``np.add.at`` scatter; the counts are integer-valued
            # float64, so adding them per tier matches the sequential
            # unit-increments exactly for integer-valued heat cells and
            # to 1 ulp per cell otherwise (decayed maps).
            counts = dcsc_fold(
                process.pages.tier[round2],
                buckets,
                max(FAST_TIER, SLOW_TIER) + 1,
                self.config.n_buckets,
            )
            for tier in (FAST_TIER, SLOW_TIER):
                tier_counts = counts[tier]
                if tier_counts.any():
                    self.heat_maps[tier] += tier_counts
            self.samples_recorded += float(round2.size)
            rounds[round2] = 0
            process.pages.probed[round2] = False
            if self.obs is not None:
                self.obs.inc("dcsc.samples", int(round2.size))
                self.obs.emit(
                    "cit.sample",
                    int(fault_ts_ns[in_round2].max()),
                    pid=process.pid,
                    vpns=round2,
                    cit_ns=max_cit,
                    tiers=process.pages.tier[round2],
                )

    # ------------------------------------------------------------------
    # Overlap identification -> parameter targets
    # ------------------------------------------------------------------
    def compute_targets(
        self,
        fast_capacity_pages: int,
        total_pages: int,
        scan_period_ns: int,
    ) -> Optional[Tuple[int, float]]:
        """Derive (CIT threshold ns, promotion rate pages/sec).

        Returns ``None`` until the heat maps hold enough samples.  The
        threshold is the CIT cutoff under which the page population just
        fills the fast tier; the rate limit is the misplaced (hot-in-slow)
        page mass divided by the scan period.
        """
        if fast_capacity_pages <= 0 or total_pages <= 0:
            raise ValueError("capacities must be positive")
        if scan_period_ns <= 0:
            raise ValueError("scan period must be positive")
        fast_map = self.heat_maps[FAST_TIER]
        slow_map = self.heat_maps[SLOW_TIER]
        total_mass = float(fast_map.sum() + slow_map.sum())
        if total_mass < self.config.min_samples:
            return None

        combined = fast_map + slow_map
        fast_fraction = min(fast_capacity_pages / total_pages, 1.0)
        cumulative = np.cumsum(combined) / total_mass
        cutoff = int(np.searchsorted(cumulative, fast_fraction, side="left"))
        cutoff = min(cutoff, self.config.n_buckets - 1)
        # Repeated-trial correction: the quantile answers "one max-of-two
        # sample below TH", but candidate filtering retries every scan
        # round and promotion is absorbing until demotion, so the
        # effective selected set is larger than one-shot capacity.  One
        # bucket (2x) of tightening keeps the steady-state admitted set
        # near the capacity target.
        threshold_ns = bucket_upper_bound_ns(
            max(cutoff - 1, 0), self.config.cit_unit_ns
        )

        misplaced_fraction = float(slow_map[: cutoff + 1].sum()) / total_mass
        misplaced_pages = misplaced_fraction * total_pages
        rate = misplaced_pages / (scan_period_ns / 1e9)
        rate = max(rate, 1.0)
        return threshold_ns, rate
