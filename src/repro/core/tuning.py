"""Semi-automatic CIT-threshold tuning (Section 3.2.1).

The user fixes the promotion rate limit; Chrono steers the CIT threshold so
the promotion *enqueue* rate converges to it.  Each Ticking-scan period:

    r_i  = rate_limit / enqueue_rate
    TH_{i+1} = (1 - delta + delta * r_i) * TH_i

Too many candidates (r < 1) shrinks the threshold; too few (r > 1) grows
it.  ``delta`` (the paper's adaption step, default 0.5) trades convergence
speed against stability.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SemiAutoTuner:
    """Multiplicative threshold controller."""

    threshold_ns: float
    delta: float = 0.5
    min_threshold_ns: float = 1e6  # 1 ms: the CIT unit
    max_threshold_ns: float = float(1 << 27) * 1e6  # coldest CIT bucket
    max_step_ratio: float = 4.0

    def __post_init__(self) -> None:
        if self.threshold_ns <= 0:
            raise ValueError("threshold must be positive")
        if not 0 < self.delta <= 1:
            raise ValueError("delta must be in (0, 1]")
        if self.min_threshold_ns <= 0:
            raise ValueError("minimum threshold must be positive")
        if self.max_threshold_ns <= self.min_threshold_ns:
            raise ValueError("threshold bounds are inverted")
        if self.max_step_ratio <= 1:
            raise ValueError("step clamp must exceed 1")

    def update(
        self, rate_limit_pages_per_sec: float, enqueue_rate_per_sec: float
    ) -> float:
        """One tuning step; returns the new threshold (ns).

        A zero enqueue rate means the threshold is far too tight; the
        adjustment ratio is clamped to ``max_step_ratio`` per step so a
        silent period cannot blow the threshold out in one jump.
        """
        if rate_limit_pages_per_sec <= 0:
            raise ValueError("rate limit must be positive")
        if enqueue_rate_per_sec < 0:
            raise ValueError("enqueue rate cannot be negative")
        if enqueue_rate_per_sec == 0:
            ratio = self.max_step_ratio
        else:
            ratio = rate_limit_pages_per_sec / enqueue_rate_per_sec
            ratio = min(max(ratio, 1.0 / self.max_step_ratio),
                        self.max_step_ratio)
        factor = 1.0 - self.delta + self.delta * ratio
        self.threshold_ns = float(
            min(
                max(self.threshold_ns * factor, self.min_threshold_ns),
                self.max_threshold_ns,
            )
        )
        return self.threshold_ns
