"""The rate-limited asynchronous promotion queue (Section 3.1.2).

Promotion-ready pages are enqueued; a drain daemon migrates them
asynchronously, at most ``rate_limit`` pages per second.  The queue tracks
enqueue/dequeue rates so the tuning subsystems can steer the CIT threshold
(semi-auto) or resize the rate limit itself (DCSC) -- and so the thrashing
monitor can compare thrash events against the promotion volume.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

import numpy as np

from repro.vm.process import SimProcess


class PromotionQueue:
    """FIFO promotion queue with a pages-per-second drain budget."""

    def __init__(self, rate_limit_pages_per_sec: float) -> None:
        if rate_limit_pages_per_sec <= 0:
            raise ValueError("rate limit must be positive")
        self.rate_limit_pages_per_sec = float(rate_limit_pages_per_sec)
        self._queue: "OrderedDict[Tuple[int, int], SimProcess]" = (
            OrderedDict()
        )
        self.enqueued_total = 0
        self.dequeued_total = 0
        self._enqueued_window = 0
        self._budget_carry = 0.0

    def __len__(self) -> int:
        return len(self._queue)

    def set_rate_limit(self, pages_per_sec: float) -> None:
        if pages_per_sec <= 0:
            raise ValueError("rate limit must be positive")
        self.rate_limit_pages_per_sec = float(pages_per_sec)

    def enqueue(self, process: SimProcess, vpns: np.ndarray) -> int:
        """Add promotion-ready pages; duplicates are ignored.  Returns the
        number of pages actually added.

        The *window* counter records attempted submissions (duplicates
        included): the semi-auto tuner compares submission pressure to
        the rate limit, and a saturated, deduplicating queue would
        otherwise pin the measured rate to the drain rate and starve the
        feedback loop.
        """
        vpns = np.asarray(vpns, dtype=np.int64)
        added = 0
        for vpn in vpns:
            key = (process.pid, int(vpn))
            if key in self._queue:
                continue
            self._queue[key] = process
            added += 1
        self.enqueued_total += added
        self._enqueued_window += int(vpns.size)
        return added

    def remove(self, process: SimProcess, vpns: np.ndarray) -> int:
        """Drop queued pages (e.g. pages that were demoted meanwhile)."""
        removed = 0
        for vpn in np.asarray(vpns, dtype=np.int64):
            if self._queue.pop((process.pid, int(vpn)), None) is not None:
                removed += 1
        return removed

    def drain(
        self, elapsed_ns: int
    ) -> List[Tuple[SimProcess, np.ndarray]]:
        """Dequeue up to the rate budget for ``elapsed_ns`` of wall time.

        Fractional budget carries over between drains so small rate limits
        still make progress.  Returns per-process vpn batches in FIFO
        order.
        """
        if elapsed_ns < 0:
            raise ValueError("elapsed time cannot be negative")
        budget = (
            self.rate_limit_pages_per_sec * (elapsed_ns / 1e9)
            + self._budget_carry
        )
        take = min(int(budget), len(self._queue))
        self._budget_carry = budget - take if take < len(self._queue) else 0.0

        batches: Dict[int, Tuple[SimProcess, List[int]]] = {}
        order: List[int] = []
        for _ in range(take):
            (pid, vpn), process = self._queue.popitem(last=False)
            if pid not in batches:
                batches[pid] = (process, [])
                order.append(pid)
            batches[pid][1].append(vpn)
        self.dequeued_total += take

        return [
            (batches[pid][0], np.array(batches[pid][1], dtype=np.int64))
            for pid in order
        ]

    def enqueue_rate_per_sec(self, window_ns: int) -> float:
        """Average enqueue rate over the window just ended; resets the
        window counter (the semi-auto tuner's input)."""
        if window_ns <= 0:
            raise ValueError("window must be positive")
        rate = self._enqueued_window / (window_ns / 1e9)
        self._enqueued_window = 0
        return rate
