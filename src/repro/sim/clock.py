"""The virtual clock.

A single :class:`VirtualClock` instance is shared by the machine, the kernel,
and the workloads.  Time only moves forward, in integer nanoseconds.
"""

from __future__ import annotations

from repro.sim.timeunits import format_ns


class VirtualClock:
    """Monotonic simulated clock with integer-nanosecond resolution."""

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError("clock cannot start before time zero")
        self._now = int(start_ns)

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    def advance(self, delta_ns: int) -> int:
        """Move the clock forward by ``delta_ns`` and return the new time."""
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock by {delta_ns}ns")
        self._now += int(delta_ns)
        return self._now

    def advance_to(self, when_ns: int) -> int:
        """Move the clock forward to an absolute time ``when_ns``."""
        if when_ns < self._now:
            raise ValueError(
                f"cannot rewind clock from {self._now}ns to {when_ns}ns"
            )
        self._now = int(when_ns)
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={format_ns(self._now)})"
