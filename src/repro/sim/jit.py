"""Optional numba-accelerated kernels behind the ``CHRONO_JIT`` flag.

This module lives in the dependency-free :mod:`repro.sim` substrate so
both the vm layer and the harness can import it without cycles.  The
arena stepping path (:mod:`repro.harness.arena`) and the deferred
ground-truth ledger (:mod:`repro.vm.page_state`) spend their large-array
time in two kernels:

``ledger_fold``
    Materialise one ledger run into the lifetime and window counters:
    ``access[i] += probs[i] * n``, ``window[i] += probs[i] * n``.  At the
    10M-page bench rung this is the single largest remaining O(pages)
    pass.

``searchsorted_right``
    The fault-partition binary search: place aggregate Poisson draws
    first into segments (processes) and then onto pages by inverse-CDF
    lookup.

``scan_filter``
    The Ticking-scan tier filter: gather each window page's tier and
    compress to the pages on the filtered tier, fused into one pass.

``dcsc_fold``
    The DCSC histogram reduction: scatter-add round-2 CIT samples into
    the per-tier heat maps, fused over ``(tier, bucket)`` keys instead
    of one ``np.add.at`` per tier.

``price_fold``
    The arena's masked pricing fold: recompute
    ``mean_lat[i] = sum_t mass[i, t] * (rf[i]*read[t] + wf[i]*write[t])``
    for a subset ``idx`` of segment rows.  The interned stepping path
    re-prices only dirty singleton rows, so the fold takes the row
    subset explicitly instead of sweeping every segment.

Both have a pure-numpy implementation that is the default and the
reference.  Setting ``CHRONO_JIT=1`` in the environment swaps in numba
``@njit`` versions **when numba is importable**; the numba kernels
perform the exact same floating-point operations in the same order, so
they are bit-identical to the numpy path (``tests/test_jit_kernels.py``
asserts this).  When numba is missing -- it is an optional dependency
and never required -- the flag silently degrades to the numpy
implementations; nothing in the simulator ever hard-depends on numba.

The flag is resolved lazily on first use and cached; tests can force a
re-resolution through :func:`reset`.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

#: resolved lazily: ``None`` = not yet resolved, else a dict with the
#: active kernel implementations and the ``enabled`` verdict
_state: Optional[dict] = None


def _numpy_ledger_fold(
    probs: np.ndarray,
    n_accesses: float,
    access: np.ndarray,
    window: np.ndarray,
    buf: np.ndarray,
) -> None:
    """Reference ledger fold: one multiply into ``buf``, two axpys."""
    np.multiply(probs, n_accesses, out=buf)
    access += buf
    window += buf


def _numpy_searchsorted_right(
    cdf: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Reference right-bisect placement of ``values`` into ``cdf``."""
    return np.searchsorted(cdf, values, side="right")


def _numpy_scan_filter(
    tier: np.ndarray, window: np.ndarray, tier_filter: int
) -> np.ndarray:
    """Reference tier filter: gather tiers, compare, compress."""
    return window[tier[window] == tier_filter]


def _numpy_dcsc_fold(
    tiers: np.ndarray, buckets: np.ndarray, n_tiers: int, n_buckets: int
) -> np.ndarray:
    """Reference DCSC reduction: one fused bincount over
    ``tier * n_buckets + bucket`` keys; returns float64 counts of shape
    ``(n_tiers, n_buckets)``."""
    keys = tiers.astype(np.int64) * n_buckets + buckets
    counts = np.bincount(keys, minlength=n_tiers * n_buckets)
    return counts.astype(np.float64).reshape(n_tiers, n_buckets)


def _numpy_price_fold(
    mass: np.ndarray,
    rf: np.ndarray,
    wf: np.ndarray,
    read_lats: np.ndarray,
    write_lats: np.ndarray,
    idx: np.ndarray,
    out: np.ndarray,
) -> None:
    """Reference masked pricing fold.

    Per element the operation sequence is exactly the full-arena fold's
    (``rf*read``, ``wf*write``, add, multiply by mass, accumulate in
    tier order), so a masked refold of an unchanged row reproduces the
    cached value bit for bit.
    """
    sub_rf = rf[idx]
    sub_wf = wf[idx]
    acc = np.zeros(idx.shape[0], dtype=np.float64)
    for tier_id in range(read_lats.shape[0]):
        coef = sub_rf * read_lats[tier_id]
        coef += sub_wf * write_lats[tier_id]
        coef *= mass[idx, tier_id]
        acc += coef
    out[idx] = acc


def _build_numba_kernels() -> Optional[dict]:
    """Compile the numba kernels; ``None`` when numba is unavailable."""
    try:
        from numba import njit  # type: ignore
    except ImportError:
        return None

    @njit(cache=True)
    def _nb_ledger_fold(probs, n_accesses, access, window):  # pragma: no cover - compiled
        for i in range(probs.shape[0]):
            # Same two roundings as the numpy path: round the product,
            # then round each accumulation -- bit-identical by IEEE-754.
            value = probs[i] * n_accesses
            access[i] += value
            window[i] += value

    @njit(cache=True)
    def _nb_searchsorted_right(cdf, values):  # pragma: no cover - compiled
        out = np.empty(values.shape[0], dtype=np.int64)
        n = cdf.shape[0]
        for i in range(values.shape[0]):
            # Right-bisect, the exact np.searchsorted(..., 'right')
            # contract: first index where cdf[index] > value.
            lo = 0
            hi = n
            value = values[i]
            while lo < hi:
                mid = (lo + hi) // 2
                if value < cdf[mid]:
                    hi = mid
                else:
                    lo = mid + 1
            out[i] = lo
        return out

    @njit(cache=True)
    def _nb_scan_filter(tier, window, tier_filter):  # pragma: no cover - compiled
        n = 0
        for i in range(window.shape[0]):
            if tier[window[i]] == tier_filter:
                n += 1
        out = np.empty(n, dtype=np.int64)
        k = 0
        for i in range(window.shape[0]):
            vpn = window[i]
            if tier[vpn] == tier_filter:
                out[k] = vpn
                k += 1
        return out

    @njit(cache=True)
    def _nb_dcsc_fold(tiers, buckets, n_tiers, n_buckets):  # pragma: no cover - compiled
        out = np.zeros((n_tiers, n_buckets), dtype=np.float64)
        for i in range(tiers.shape[0]):
            # Integer-valued float64 counts: identical to the numpy
            # bincount path bit for bit.
            out[tiers[i], buckets[i]] += 1.0
        return out

    @njit(cache=True)
    def _nb_price_fold(mass, rf, wf, read_lats, write_lats, idx, out):  # pragma: no cover - compiled
        for k in range(idx.shape[0]):
            i = idx[k]
            acc = 0.0
            for tier_id in range(read_lats.shape[0]):
                # Same per-element sequence as the numpy fold: rf*read,
                # wf*write, add, multiply by mass, accumulate in tier
                # order -- bit-identical by IEEE-754.
                coef = rf[i] * read_lats[tier_id]
                coef += wf[i] * write_lats[tier_id]
                coef *= mass[i, tier_id]
                acc += coef
            out[i] = acc

    def ledger_fold(probs, n_accesses, access, window, buf):
        _nb_ledger_fold(probs, float(n_accesses), access, window)

    def searchsorted_right(cdf, values):
        return _nb_searchsorted_right(
            np.ascontiguousarray(cdf, dtype=np.float64),
            np.ascontiguousarray(values, dtype=np.float64),
        )

    def scan_filter(tier, window, tier_filter):
        return _nb_scan_filter(
            tier,
            np.ascontiguousarray(window, dtype=np.int64),
            tier_filter,
        )

    def dcsc_fold(tiers, buckets, n_tiers, n_buckets):
        return _nb_dcsc_fold(
            np.ascontiguousarray(tiers, dtype=np.int64),
            np.ascontiguousarray(buckets, dtype=np.int64),
            n_tiers,
            n_buckets,
        )

    def price_fold(mass, rf, wf, read_lats, write_lats, idx, out):
        _nb_price_fold(
            mass,
            rf,
            wf,
            read_lats,
            write_lats,
            np.ascontiguousarray(idx, dtype=np.int64),
            out,
        )

    return {
        "enabled": True,
        "ledger_fold": ledger_fold,
        "searchsorted_right": searchsorted_right,
        "scan_filter": scan_filter,
        "dcsc_fold": dcsc_fold,
        "price_fold": price_fold,
    }


def _resolve() -> dict:
    """Resolve the active kernel set from ``CHRONO_JIT`` (cached)."""
    global _state
    if _state is not None:
        return _state
    flag = os.environ.get("CHRONO_JIT", "").strip().lower()
    wanted = flag not in ("", "0", "false", "off", "no")
    kernels = _build_numba_kernels() if wanted else None
    if kernels is None:
        kernels = {
            "enabled": False,
            "ledger_fold": _numpy_ledger_fold,
            "searchsorted_right": _numpy_searchsorted_right,
            "scan_filter": _numpy_scan_filter,
            "dcsc_fold": _numpy_dcsc_fold,
            "price_fold": _numpy_price_fold,
        }
    _state = kernels
    return _state


def reset() -> None:
    """Drop the cached resolution (tests re-read ``CHRONO_JIT``)."""
    global _state
    _state = None


def jit_enabled() -> bool:
    """True when the numba kernels are active (flag set + importable)."""
    return bool(_resolve()["enabled"])


def ledger_fold(
    probs: np.ndarray,
    n_accesses: float,
    access: np.ndarray,
    window: np.ndarray,
    buf: np.ndarray,
) -> None:
    """Fold one ``(probs, n)`` ledger run into both counters in place."""
    _resolve()["ledger_fold"](probs, n_accesses, access, window, buf)


def searchsorted_right(
    cdf: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """``np.searchsorted(cdf, values, side='right')`` (JIT-swappable)."""
    return _resolve()["searchsorted_right"](cdf, values)


def scan_filter(
    tier: np.ndarray, window: np.ndarray, tier_filter: int
) -> np.ndarray:
    """``window[tier[window] == tier_filter]`` as one fused gather/compress
    (JIT-swappable; order-preserving, bit-identical)."""
    return _resolve()["scan_filter"](tier, window, int(tier_filter))


def dcsc_fold(
    tiers: np.ndarray, buckets: np.ndarray, n_tiers: int, n_buckets: int
) -> np.ndarray:
    """Count ``(tier, bucket)`` CIT samples into a dense float64
    ``(n_tiers, n_buckets)`` table (JIT-swappable; integer-valued counts,
    bit-identical across implementations)."""
    return _resolve()["dcsc_fold"](tiers, buckets, int(n_tiers), int(n_buckets))


def price_fold(
    mass: np.ndarray,
    rf: np.ndarray,
    wf: np.ndarray,
    read_lats: np.ndarray,
    write_lats: np.ndarray,
    idx: np.ndarray,
    out: np.ndarray,
) -> None:
    """Masked arena pricing fold: rewrite ``out[idx]`` with
    ``sum_t mass[idx, t] * (rf[idx]*read[t] + wf[idx]*write[t])``
    (JIT-swappable; same per-element FP sequence as the dense fold,
    bit-identical across implementations)."""
    _resolve()["price_fold"](mass, rf, wf, read_lats, write_lats, idx, out)
