"""Event scheduler used by kernel daemons.

Kernel-side periodic work (Ticking-scan passes, DCSC probes, reclaim
wakeups, tuning updates) registers callbacks here.  The simulation runner
drains due events every time it advances the clock, which mirrors how the
kernel's deferred work runs at timer-interrupt granularity rather than
instantaneously.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

EventCallback = Callable[[int], None]


@dataclass(order=True)
class ScheduledEvent:
    """An event in the timer queue, ordered by (time, insertion order).

    ``soft`` marks a wakeup that is *idempotent under deferral*: firing it
    at any point at or after its scheduled time (still with the scheduled
    time as its argument) is acceptable.  Soft events do not constrain the
    engine's quantum-fusion horizon (:meth:`EventScheduler.next_event_ns`);
    they still fire, in order, whenever the clock passes them.
    """

    when_ns: int
    seq: int
    callback: EventCallback = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    soft: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when it becomes due."""
        self.cancelled = True


class EventScheduler:
    """A min-heap timer queue over simulated time."""

    def __init__(self) -> None:
        self._heap: List[ScheduledEvent] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(
        self,
        when_ns: int,
        callback: EventCallback,
        name: str = "",
        soft: bool = False,
    ) -> ScheduledEvent:
        """Schedule ``callback(now)`` to fire at absolute time ``when_ns``.

        ``soft=True`` declares the callback deferral-tolerant: it must
        still fire once the clock reaches ``when_ns``, but the engine may
        advance past it in one fused step and fire it (with the scheduled
        time) at the end.  Use it only for idempotent periodic checks
        (e.g. kswapd watermark polls) whose effect does not depend on the
        exact observation instant.
        """
        if when_ns < 0:
            raise ValueError("cannot schedule an event before time zero")
        event = ScheduledEvent(
            when_ns=int(when_ns),
            seq=next(self._counter),
            callback=callback,
            name=name,
            soft=soft,
        )
        heapq.heappush(self._heap, event)
        return event

    def next_due(self) -> Optional[int]:
        """Time of the earliest pending event, or ``None`` if queue empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].when_ns

    def next_event_ns(self) -> Optional[int]:
        """Time of the earliest pending *hard* (non-soft) event.

        This is the quantum-fusion horizon: the engine may not step past
        this instant in one fused macro-quantum, because a hard event
        (scan tick, aging pass, policy adaptation) observes or mutates
        state and must see the timeline at its scheduled boundary.  Soft
        events are ignored here; they fire during the catch-up
        :meth:`run_due` at the fused boundary, each still receiving its
        scheduled time, so periodic soft daemons stay drift-free.

        Returns ``None`` when no hard event is pending.
        """
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        horizon: Optional[int] = None
        for event in self._heap:
            if event.cancelled or event.soft:
                continue
            if horizon is None or event.when_ns < horizon:
                horizon = event.when_ns
        return horizon

    def run_due(self, now_ns: int) -> int:
        """Fire every event with ``when_ns <= now_ns``; return count fired.

        Callbacks receive the *scheduled* firing time, not ``now_ns``, so a
        periodic daemon that reschedules itself keeps a drift-free cadence
        even when the runner advances time in coarse quanta.
        """
        fired = 0
        while self._heap and self._heap[0].when_ns <= now_ns:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event.callback(event.when_ns)
            fired += 1
        return fired

    def take_due(
        self, now_ns: int, prefix: str
    ) -> List[ScheduledEvent]:
        """Pop every due event whose name starts with ``prefix``.

        Returns the matching events in firing order (``when_ns``, then
        insertion order) *without* invoking their callbacks; the caller
        becomes responsible for the work they represented.  Non-matching
        due events stay queued and fire from :meth:`run_due` as usual.

        This is the batching hook for fleet-wide transient passes: a
        periodic per-process daemon (e.g. the Ticking-scan) whose event
        fires first at a clock boundary can drain its due *siblings*
        and run one batched pass over all of them.  All events due at a
        boundary share the same effective time (the advanced clock), so
        reordering them relative to other due events is observable only
        through cross-subsystem state -- acceptable exactly when the
        subsystems' per-boundary work commutes (see the
        ``batched_transients`` policy contract).
        """
        taken: List[ScheduledEvent] = []
        kept: List[ScheduledEvent] = []
        while self._heap and self._heap[0].when_ns <= now_ns:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.name.startswith(prefix):
                taken.append(event)
            else:
                kept.append(event)
        for event in kept:
            heapq.heappush(self._heap, event)
        return taken

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
