"""Deterministic named random-number streams.

Every stochastic component of the simulator (each workload process, the
Ticking-scan offset jitter, the DCSC victim sampler, the PEBS sampler, ...)
draws from its *own* :class:`numpy.random.Generator`.  The streams are derived
from a single root seed with :class:`numpy.random.SeedSequence` spawning, so:

* two runs with the same root seed are bit-identical, and
* adding a new consumer of randomness does not perturb existing streams.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RngStreams:
    """A registry of named, independently seeded random generators."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._root = np.random.SeedSequence(self._seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed this registry was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The generator for a given (root seed, name) pair is always seeded
        identically, regardless of creation order.
        """
        if name not in self._streams:
            # Derive a child seed from the root seed and the stream name so
            # the mapping is order-independent.
            digest = np.random.SeedSequence(
                [self._seed, _stable_hash(name)]
            )
            self._streams[name] = np.random.default_rng(digest)
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Create a child registry rooted at a name-derived seed.

        Useful for giving each simulated process its own namespace of
        streams.
        """
        return RngStreams(_stable_hash(f"{self._seed}:{name}"))


def _stable_hash(name: str) -> int:
    """A process-invariant 64-bit hash of ``name``.

    Python's builtin :func:`hash` is randomized per interpreter run for
    strings, which would break reproducibility, so we roll an FNV-1a hash.
    """
    value = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value
