"""Time units for the simulator.

All simulated time is kept as integer nanoseconds.  Integers keep the
simulation deterministic (no floating-point drift between runs) and give us
the full dynamic range the paper needs: CIT buckets span 1 ms .. 2^27 ms
(about 37 hours), while memory access latencies are tens of nanoseconds.
"""

from __future__ import annotations

NANOSECOND: int = 1
MICROSECOND: int = 1_000
MILLISECOND: int = 1_000_000
SECOND: int = 1_000_000_000
MINUTE: int = 60 * SECOND


def ns_to_ms(ns: int) -> float:
    """Convert integer nanoseconds to (float) milliseconds."""
    return ns / MILLISECOND


def ns_to_sec(ns: int) -> float:
    """Convert integer nanoseconds to (float) seconds."""
    return ns / SECOND


def ms_to_ns(ms: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded)."""
    return int(round(ms * MILLISECOND))


def sec_to_ns(sec: float) -> int:
    """Convert seconds to integer nanoseconds (rounded)."""
    return int(round(sec * SECOND))


def format_ns(ns: int) -> str:
    """Render a duration with a human-readable unit.

    >>> format_ns(1_500_000)
    '1.500ms'
    >>> format_ns(250)
    '250ns'
    """
    if ns >= SECOND:
        return f"{ns / SECOND:.3f}s"
    if ns >= MILLISECOND:
        return f"{ns / MILLISECOND:.3f}ms"
    if ns >= MICROSECOND:
        return f"{ns / MICROSECOND:.3f}us"
    return f"{ns}ns"
