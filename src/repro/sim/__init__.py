"""Discrete-event simulation substrate.

This package provides the timing foundation every other subsystem builds on:

* :mod:`repro.sim.timeunits` -- integer-nanosecond time constants and helpers.
* :mod:`repro.sim.rng` -- named, deterministic random-number streams so that
  workload randomness, scan randomness, and sampling randomness never
  interfere with one another across runs.
* :mod:`repro.sim.clock` -- the virtual clock.
* :mod:`repro.sim.events` -- a simple event scheduler (timer wheel) used by
  kernel daemons (scanner ticks, reclaim wakeups, DCSC probes).
* :mod:`repro.sim.jit` -- optional ``CHRONO_JIT=1`` numba kernels with
  bit-identical numpy fallbacks (always safe to import; numba is never
  required).
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import EventScheduler, ScheduledEvent
from repro.sim.rng import RngStreams
from repro.sim.timeunits import (
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    SECOND,
    format_ns,
    ns_to_ms,
    ns_to_sec,
)

__all__ = [
    "EventScheduler",
    "MICROSECOND",
    "MILLISECOND",
    "NANOSECOND",
    "RngStreams",
    "SECOND",
    "ScheduledEvent",
    "VirtualClock",
    "format_ns",
    "ns_to_ms",
    "ns_to_sec",
]
