"""Chrono (EuroSys '25) reproduction: tiered-memory simulation.

The public API in one import::

    import repro

    setup = repro.StandardSetup()
    results = repro.run_policy_comparison(
        setup,
        lambda: repro.pmbench_processes(setup),
        policies=("linux-nb", "chrono"),
    )

Subpackage map (see each package's docstring):

* ``repro.sim`` / ``repro.mem`` / ``repro.vm`` / ``repro.kernel`` -- the
  simulated machine and kernel substrates
* ``repro.core`` -- Chrono itself
* ``repro.policies`` -- the baseline tiering systems
* ``repro.workloads`` -- synthetic workload generators
* ``repro.harness`` -- engine, runner, calibrated experiment setups
* ``repro.analysis`` -- metrics and the Appendix-B theory
"""

from repro.core.policy import ChronoPolicy, make_chrono_variant
from repro.harness.experiments import (
    EVALUATED_POLICIES,
    StandardSetup,
    graph500_processes,
    kvstore_processes,
    pmbench_processes,
    run_policy_comparison,
)
from repro.harness.runner import RunConfig, RunResult, run_experiment
from repro.kernel.kernel import Kernel
from repro.mem.machine import MachineSpec, TieredMachine
from repro.policies.registry import make_policy, policy_names
from repro.vm.process import SimProcess

__version__ = "1.0.0"

__all__ = [
    "ChronoPolicy",
    "EVALUATED_POLICIES",
    "Kernel",
    "MachineSpec",
    "RunConfig",
    "RunResult",
    "SimProcess",
    "StandardSetup",
    "TieredMachine",
    "graph500_processes",
    "kvstore_processes",
    "make_chrono_variant",
    "make_policy",
    "pmbench_processes",
    "policy_names",
    "run_experiment",
    "run_policy_comparison",
]
