"""A simulated process.

A :class:`SimProcess` bundles the page state, the address-space layout, the
workload driving it, and per-process accounting.  Processes execute in
parallel (the paper runs up to 50 concurrent pmbench tasks on a 56-core
machine); the engine advances each one through the same wall-clock quantum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.mem.tier import FAST_TIER
from repro.vm.address_space import AddressSpace
from repro.vm.page_state import PageState


@dataclass
class ProcessStats:
    """Per-process run-time accounting.

    ``accesses`` is fractional because the batched engine works with
    expected per-page counts; totals converge to the exact values.
    """

    accesses: float = 0.0
    fast_accesses: float = 0.0
    slow_accesses: float = 0.0
    user_time_ns: float = 0.0
    kernel_time_ns: float = 0.0
    stall_time_ns: float = 0.0
    hint_faults: int = 0
    context_switches: int = 0
    pages_promoted: int = 0
    pages_demoted: int = 0
    thrash_events: int = 0

    @property
    def total_time_ns(self) -> float:
        return self.user_time_ns + self.kernel_time_ns + self.stall_time_ns

    def fast_access_ratio(self) -> float:
        """The paper's FMAR for this process."""
        if self.accesses <= 0:
            return 0.0
        return self.fast_accesses / self.accesses

    def throughput_per_sec(self) -> float:
        """Completed accesses per second of simulated time."""
        if self.total_time_ns <= 0:
            return 0.0
        return self.accesses / (self.total_time_ns / 1e9)


class SimProcess:
    """One workload-driven process on the simulated machine."""

    def __init__(
        self,
        pid: int,
        workload: Any,
        rng: np.random.Generator,
        name: Optional[str] = None,
        cgroup: Optional[str] = None,
    ) -> None:
        self.pid = int(pid)
        self.workload = workload
        self.rng = rng
        self.name = name or f"proc-{pid}"
        self.cgroup = cgroup
        n_pages = int(workload.n_pages)
        self.pages = PageState(n_pages)
        self.aspace = AddressSpace.linear(n_pages)
        self.stats = ProcessStats()
        # Kernel overhead incurred on this process's behalf that has not yet
        # been charged against its quantum budget.
        self.pending_kernel_ns: float = 0.0
        # Optional write-through mirror of ``pending_kernel_ns`` (the
        # cross-process arena's debt vector): both mutation sites below
        # copy the new value into ``_debt_cell[_debt_index]`` so the
        # arena finds indebted segments with one vectorised compare.
        self._debt_cell: Optional[np.ndarray] = None
        self._debt_index: int = 0
        self.finished = False
        # Fixed-work runs (e.g. Graph500 execution time) set a target; the
        # engine marks the process finished once it completes this many
        # accesses.  ``None`` means run until the experiment ends.
        self.target_accesses: Optional[float] = None

    @property
    def n_pages(self) -> int:
        return self.pages.n_pages

    def set_debt_cell(
        self, cell: Optional[np.ndarray], index: int = 0
    ) -> None:
        """Attach (or detach, with ``None``) a pending-debt mirror cell."""
        self._debt_cell = cell
        self._debt_index = int(index)
        if cell is not None:
            cell[index] = self.pending_kernel_ns

    def charge_kernel(self, ns: float) -> None:
        """Queue kernel time to deduct from the next quantum's budget."""
        if ns < 0:
            raise ValueError("kernel time cannot be negative")
        self.pending_kernel_ns += ns
        cell = self._debt_cell
        if cell is not None:
            cell[self._debt_index] = self.pending_kernel_ns

    def drain_pending_kernel(self, budget_ns: float) -> float:
        """Consume up to ``budget_ns`` of queued kernel time; return used."""
        used = min(self.pending_kernel_ns, budget_ns)
        self.pending_kernel_ns -= used
        self.stats.kernel_time_ns += used
        cell = self._debt_cell
        if cell is not None:
            cell[self._debt_index] = self.pending_kernel_ns
        return used

    def dram_page_percentage(self) -> float:
        """Fast-tier share of this process's resident pages (Figure 9)."""
        return 100.0 * self.pages.fast_page_fraction()

    def record_accesses(
        self,
        n_total: float,
        n_fast: float,
        user_ns: float,
        stall_ns: float = 0.0,
    ) -> None:
        """Account one quantum's completed accesses."""
        self.stats.accesses += n_total
        self.stats.fast_accesses += n_fast
        self.stats.slow_accesses += n_total - n_fast
        self.stats.user_time_ns += user_ns
        self.stats.stall_time_ns += stall_ns

    def __repr__(self) -> str:
        return (
            f"SimProcess(pid={self.pid}, name={self.name!r}, "
            f"pages={self.n_pages}, "
            f"fast={self.pages.count_in_tier(FAST_TIER)})"
        )
