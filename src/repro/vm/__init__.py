"""Virtual-memory substrate.

Pages are the unit everything else operates on.  For simulation efficiency a
process's pages are kept as a numpy structure-of-arrays
(:class:`repro.vm.page_state.PageState`) rather than one object per page:
tier residency, PROT_NONE protection, scan timestamps, hardware
accessed/dirty bits, and the paper's per-page flags (``PG_probed``,
``demoted``) are all parallel arrays indexed by virtual page number.
"""

from repro.vm.address_space import VMArea, AddressSpace
from repro.vm.fault import FaultBatch, NUMA_HINT_FAULT
from repro.vm.hugepage import HUGE_2MB_PAGES, aggregate_by_huge, huge_id
from repro.vm.page_state import PageState
from repro.vm.process import ProcessStats, SimProcess

__all__ = [
    "AddressSpace",
    "FaultBatch",
    "HUGE_2MB_PAGES",
    "NUMA_HINT_FAULT",
    "PageState",
    "ProcessStats",
    "SimProcess",
    "VMArea",
    "aggregate_by_huge",
    "huge_id",
]
