"""Per-process page metadata as a structure of arrays.

This is the simulator's ``struct page`` + PTE state.  One instance describes
every resident page of a process.  All fields are numpy arrays indexed by
virtual page number (vpn), which lets the kernel subsystems and policies
operate on whole address ranges with vectorised expressions -- the same way
the real kernel batches PTE updates within a scan window.

Fields and their kernel analogues:

=================  ====================================================
``tier``           node id in ``struct page`` (0 = fast, 1 = slow)
``prot_none``      PTE has ``PROT_NONE`` set by a NUMA/Ticking scan
``scan_ts_ns``     Chrono's 4-byte CIT metadata: time of last unmap
``accessed``       PTE accessed bit (hardware-set, software-cleared)
``dirty``          PTE dirty bit
``probed``         Chrono's ``PG_probed`` flag (DCSC victim pages)
``demoted``        Chrono's ``demoted`` flag (thrashing monitor)
``candidate``      page sits in the XArray candidate set
``candidate_cit``  first-round CIT recorded for a candidate
``lru_active``     page is on the active (vs inactive) LRU list
``lru_gen``        generation of last observed access (LRU ordering)
=================  ====================================================

Ground-truth access accounting is *deferred*: the engine records one
``(probs, n_accesses)`` ledger entry per quantum (O(1); consecutive quanta
sharing the same distribution array merge into a single entry), and the
O(pages) materialisation into ``access_count`` / ``last_window_count``
only happens when a consumer actually reads the counters.  Both counters
are properties that flush the pending ledger on access, so every consumer
-- LRU aging, trace recording, figure code, tests -- sees exact values
without knowing about the deferral.

``move_to_tier`` additionally journals each placement change (moved vpns
plus their previous tiers) so the engine can maintain its per-tier
probability masses incrementally -- O(moved) per migration instead of a
full O(pages) recount.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

import numpy as np

from repro.mem.tier import FAST_TIER, SLOW_TIER
from repro.sim.jit import ledger_fold

NO_TIMESTAMP: int = -1


def _sorted_unique(vpns: np.ndarray) -> np.ndarray:
    """``vpns`` sorted and duplicate-free.

    The protection and migration paths almost always receive already
    sorted, duplicate-free arrays (``flatnonzero`` output, scan windows),
    so a strict-monotonicity check avoids ``np.unique``'s sort on the
    hot path.
    """
    if vpns.size < 2:
        return vpns
    if bool((vpns[1:] > vpns[:-1]).all()):
        return vpns
    return np.unique(vpns)


class PageState:
    """Structure-of-arrays page metadata for one process."""

    #: moved pages retained in the placement journal before the oldest
    #: entries are dropped (consumers then fall back to a full recount)
    MOVE_LOG_CAP_PAGES: int = 65_536
    #: journal entries retained regardless of size (empty moves -- epoch
    #: bumps without pages -- must not grow the journal unboundedly)
    MOVE_LOG_CAP_ENTRIES: int = 4_096

    def __init__(self, n_pages: int) -> None:
        # Zero pages is legal (an empty arena segment: the process exists
        # but generates no memory traffic); only negative sizes are
        # nonsense.
        if n_pages < 0:
            raise ValueError("page count cannot be negative")
        self.n_pages = int(n_pages)
        self.tier = np.full(n_pages, SLOW_TIER, dtype=np.int8)
        self.prot_none = np.zeros(n_pages, dtype=bool)
        self.scan_ts_ns = np.full(n_pages, NO_TIMESTAMP, dtype=np.int64)
        self.accessed = np.zeros(n_pages, dtype=bool)
        self.dirty = np.zeros(n_pages, dtype=bool)
        self.probed = np.zeros(n_pages, dtype=bool)
        self.demoted = np.zeros(n_pages, dtype=bool)
        self.demote_ts_ns = np.full(n_pages, NO_TIMESTAMP, dtype=np.int64)
        self.candidate = np.zeros(n_pages, dtype=bool)
        self.candidate_cit_ns = np.full(n_pages, NO_TIMESTAMP, dtype=np.int64)
        self.lru_active = np.zeros(n_pages, dtype=bool)
        self.lru_gen = np.zeros(n_pages, dtype=np.int64)
        # Exact ground-truth access accounting (the simulator's PMU),
        # materialised lazily from the pending ledger below.
        self._access_count = np.zeros(n_pages, dtype=np.float64)
        self._last_window_count = np.zeros(n_pages, dtype=np.float64)
        #: pending ``[probs, n_accesses]`` ledger runs awaiting
        #: materialisation; consecutive entries with the same (immutable)
        #: distribution array merge into one run
        self._pending: List[List[Any]] = []
        self._flush_buf: Optional[np.ndarray] = None
        #: optional external ledger feeder (the cross-process arena keeps
        #: one concatenated run list for the whole fleet): invoked at the
        #: top of every flush to drain this process's share of any arena
        #: runs into ``_pending`` first, so consumers stay exact without
        #: knowing the arena exists.  The second callable reports whether
        #: the source still holds undrained accesses for this process.
        self._ledger_source: Optional[Callable[[], None]] = None
        self._ledger_source_pending: Optional[Callable[[], bool]] = None
        #: optional :class:`repro.harness.profiling.Profiler`; when set,
        #: ledger flushes charge their wall time to the ``accounting``
        #: section (wired by ``Kernel.register_process``)
        self.profiler: Any = None
        #: placement generation: bumped on every ``move_to_tier`` so the
        #: engine can reuse per-quantum placement-derived caches (tier
        #: masses) across quanta without migrations
        self.epoch: int = 0
        #: number of currently PROT_NONE pages, maintained by the
        #: protect/unprotect paths so the engine's hot loop can skip the
        #: hint-fault machinery without an O(pages) scan
        self.n_protected: int = 0
        #: protection generation (the fusion dirty-flag): bumped whenever
        #: the protected set actually changes (protect/unprotect paths),
        #: so the engine can detect "protection state unchanged since the
        #: last quantum" with one integer compare.  Together with
        #: ``epoch`` it witnesses the steady state quantum fusion needs.
        self.protect_epoch: int = 0
        #: sorted vpns of currently protected pages.  Maintained
        #: copy-on-write (never mutated in place) so a snapshot returned
        #: by :meth:`protected_pages` stays valid across later updates.
        self._protected_vpns = np.empty(0, dtype=np.int64)
        #: optional write-through witness cells (the cross-process
        #: arena's dirty-detection vectors): a ``(3, n_segs)`` int64
        #: array whose column ``_witness_index`` mirrors ``epoch``,
        #: ``protect_epoch`` and ``n_protected``.  Every mutation site
        #: writes its new value through, so the arena detects stale
        #: segments with one vectorised compare instead of an O(fleet)
        #: Python attribute walk per quantum.
        self._witness_cells: Optional[np.ndarray] = None
        self._witness_index: int = 0
        #: placement journal: ``(epoch, vpns, old_tiers, new_tier)`` per
        #: ``move_to_tier`` call, oldest first
        self._move_log: Deque[Tuple[int, np.ndarray, np.ndarray, int]] = (
            deque()
        )
        self._move_log_pages = 0
        #: epoch of the journal's start state: entries cover the range
        #: ``(move_log_base, epoch]``
        self.move_log_base: int = 0

    # ------------------------------------------------------------------
    # Deferred ground-truth accounting
    # ------------------------------------------------------------------
    def defer_accesses(self, probs: np.ndarray, n_accesses: float) -> None:
        """Record ``n_accesses`` drawn from ``probs`` for later
        materialisation.

        O(1): the ledger stores the distribution by reference (the
        :mod:`repro.workloads.base` contract makes distribution arrays
        immutable), and consecutive quanta that reuse the same array
        object merge into a single ``[probs, n]`` run, preserving the
        chronological run structure for phase-changing workloads.
        """
        pending = self._pending
        if pending and pending[-1][0] is probs:
            pending[-1][1] += n_accesses
        else:
            pending.append([probs, float(n_accesses)])

    def set_witness_cells(
        self, cells: Optional[np.ndarray], index: int = 0
    ) -> None:
        """Attach (or detach, with ``None``) arena witness cells.

        ``cells`` is a ``(3, n_segs)`` int64 array; column ``index``
        mirrors ``(epoch, protect_epoch, n_protected)`` from here on
        (the current values are written immediately).  The mirror is
        complete by construction: ``epoch`` only changes in
        :meth:`move_to_tier` and ``protect_epoch`` / ``n_protected``
        only change in the four protect/unprotect paths, all of which
        write through.
        """
        self._witness_cells = cells
        self._witness_index = int(index)
        if cells is not None:
            cells[0, index] = self.epoch
            cells[1, index] = self.protect_epoch
            cells[2, index] = self.n_protected

    def _sync_protect_witness(self) -> None:
        """Write the protection state through to the witness cells."""
        cells = self._witness_cells
        if cells is not None:
            i = self._witness_index
            cells[1, i] = self.protect_epoch
            cells[2, i] = self.n_protected

    def set_ledger_source(
        self,
        drain: Optional[Callable[[], None]],
        has_pending: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Attach (or detach, with ``None``) an external ledger feeder.

        Used by the cross-process arena: its concatenated run list is
        drained into this process's ``_pending`` ledger lazily, the first
        time a consumer reads the counters.
        """
        self._ledger_source = drain
        self._ledger_source_pending = has_pending

    @property
    def has_pending_accesses(self) -> bool:
        """True when ledger entries await materialisation."""
        if self._pending:
            return True
        pending = self._ledger_source_pending
        return pending is not None and pending()

    def flush_accounting(self) -> None:
        """Materialise the pending ledger into both counters.

        Each run costs one O(pages) multiply plus two axpys -- the exact
        operation sequence the eager pre-deferral engine performed per
        quantum -- so a flush after ``k`` same-distribution quanta does
        the work once instead of ``k`` times.
        """
        source = self._ledger_source
        if source is not None:
            source()
        if not self._pending:
            return
        profiler = self.profiler
        if profiler is not None:
            profiler.push("accounting")
        try:
            buf = self._flush_buf
            if buf is None:
                buf = self._flush_buf = np.empty(
                    self.n_pages, dtype=np.float64
                )
            for probs, n_accesses in self._pending:
                ledger_fold(
                    probs,
                    n_accesses,
                    self._access_count,
                    self._last_window_count,
                    buf,
                )
            self._pending.clear()
        finally:
            if profiler is not None:
                profiler.pop()

    @property
    def access_count(self) -> np.ndarray:
        """Lifetime ground-truth access counts (flushes the ledger)."""
        if self._pending or self._ledger_source is not None:
            self.flush_accounting()
        return self._access_count

    @access_count.setter
    def access_count(self, value: np.ndarray) -> None:
        self._access_count = value

    @property
    def last_window_count(self) -> np.ndarray:
        """Per-window ground-truth access counts (flushes the ledger)."""
        if self._pending or self._ledger_source is not None:
            self.flush_accounting()
        return self._last_window_count

    @last_window_count.setter
    def last_window_count(self, value: np.ndarray) -> None:
        self._last_window_count = value

    def clear_window_counts(
        self, vpns: Optional[np.ndarray] = None
    ) -> None:
        """Roll the per-window ground-truth access counters.

        Pending accesses are flushed first -- they belong to the closing
        window (and to the lifetime counter).  ``vpns`` restricts the
        reset to a sparse index set; callers passing it guarantee the set
        covers every nonzero entry (the sparse-aging candidate set does
        by construction).
        """
        self.flush_accounting()
        if vpns is None:
            self._last_window_count[:] = 0.0
        else:
            self._last_window_count[vpns] = 0.0

    # ------------------------------------------------------------------
    # Residency queries
    # ------------------------------------------------------------------
    def pages_in_tier(self, tier_id: int) -> np.ndarray:
        """vpns of pages resident in ``tier_id``."""
        return np.flatnonzero(self.tier == tier_id)

    def count_in_tier(self, tier_id: int) -> int:
        """Number of pages resident in ``tier_id``."""
        return int(np.count_nonzero(self.tier == tier_id))

    def fast_page_fraction(self) -> float:
        """The paper's "DRAM page percentage" for this process."""
        if self.n_pages == 0:
            return 0.0
        return self.count_in_tier(FAST_TIER) / self.n_pages

    # ------------------------------------------------------------------
    # PTE protection (scan / fault paths)
    # ------------------------------------------------------------------
    def _cache_protect(self, fresh: np.ndarray) -> None:
        """Merge sorted, newly protected vpns into the sorted cache."""
        if fresh.size == 0:
            return
        current = self._protected_vpns
        if current.size == 0:
            self._protected_vpns = fresh
        else:
            # Hand-rolled sorted merge: ``np.insert`` carries generic
            # axis/object machinery that dominates at these sizes.
            positions = np.searchsorted(current, fresh)
            merged = np.empty(
                current.size + fresh.size, dtype=np.int64
            )
            at = positions + np.arange(fresh.size)
            mask = np.zeros(merged.size, dtype=bool)
            mask[at] = True
            merged[mask] = fresh
            merged[~mask] = current
            self._protected_vpns = merged

    def _cache_unprotect(self, gone: np.ndarray) -> None:
        """Drop sorted, previously protected vpns from the cache.

        Tolerates vpns missing from the cache: tests may flip
        ``prot_none`` directly, bypassing :meth:`protect`; such pages
        were never cached and are simply skipped here.
        """
        if gone.size == 0:
            return
        current = self._protected_vpns
        if current.size == 0:
            return
        positions = np.searchsorted(current, gone)
        cached = positions < current.size
        cached[cached] &= current[positions[cached]] == gone[cached]
        hit = positions[cached]
        if hit.size == 0:
            return
        keep = np.ones(current.size, dtype=bool)
        keep[hit] = False
        self._protected_vpns = current[keep]

    def protect(self, vpns: np.ndarray, now_ns: int) -> int:
        """Mark pages PROT_NONE and stamp the scan time; return count.

        Already-protected pages keep their original scan timestamp, the way
        the kernel skips PTEs that are already ``pte_protnone``.  Duplicate
        vpns count once.
        """
        vpns = np.asarray(vpns)
        fresh = _sorted_unique(vpns[~self.prot_none[vpns]]).astype(
            np.int64, copy=False
        )
        self.prot_none[fresh] = True
        self.scan_ts_ns[fresh] = now_ns
        self.n_protected += int(fresh.size)
        if fresh.size:
            self.protect_epoch += 1
            self._sync_protect_witness()
        self._cache_protect(fresh)
        return int(fresh.size)

    def protect_at(self, vpns: np.ndarray, ts_ns: np.ndarray) -> None:
        """Mark pages PROT_NONE with per-page scan timestamps.

        Used by DCSC's second measurement round (re-protection happens at
        each page's own fault time) and by the thrashing monitor (the
        demotion time substitutes for the scan time).  Unlike
        :meth:`protect`, existing protection timestamps are overwritten.
        Duplicate vpns count once toward ``n_protected``; the last
        duplicate's timestamp wins, as with fancy assignment.
        """
        vpns = np.asarray(vpns)
        ts_ns = np.broadcast_to(
            np.asarray(ts_ns, dtype=np.int64), vpns.shape
        )
        if vpns.size < 2 or bool((vpns[1:] > vpns[:-1]).all()):
            unique = vpns.astype(np.int64, copy=False)
            unique_ts = ts_ns
        else:
            unique, inverse = np.unique(vpns, return_inverse=True)
            unique = unique.astype(np.int64, copy=False)
            unique_ts = np.empty(unique.shape, dtype=np.int64)
            # later duplicates overwrite earlier, as fancy assignment does
            unique_ts[inverse] = ts_ns
        fresh_mask = ~self.prot_none[unique]
        self.n_protected += int(np.count_nonzero(fresh_mask))
        self.prot_none[unique] = True
        self.scan_ts_ns[unique] = unique_ts
        if unique.size:
            # timestamps changed even when the set did not -- still a
            # protection-state mutation for the fusion dirty-flag
            self.protect_epoch += 1
            self._sync_protect_witness()
        self._cache_protect(unique[fresh_mask])

    def unprotect(self, vpns: np.ndarray) -> None:
        """Clear PROT_NONE after a fault restored the mapping."""
        vpns = np.asarray(vpns)
        unique = _sorted_unique(vpns).astype(np.int64, copy=False)
        gone = unique[self.prot_none[unique]]
        self.n_protected -= int(gone.size)
        if gone.size:
            self.protect_epoch += 1
            self._sync_protect_witness()
        self.prot_none[unique] = False
        self._cache_unprotect(gone)

    def unprotect_resolved(
        self, vpns: np.ndarray, remainder: np.ndarray
    ) -> None:
        """Unprotect ``vpns`` when the caller already split the cache.

        Fast path for the engine's fault resolution: ``vpns`` and
        ``remainder`` must be the two complementary slices of one
        :meth:`protected_pages` snapshot (so ``vpns`` are sorted, unique,
        and all currently protected).  Skips the membership search the
        general :meth:`unprotect` performs and installs ``remainder`` as
        the new cache directly.
        """
        self.prot_none[vpns] = False
        self.n_protected -= int(vpns.size)
        if vpns.size:
            self.protect_epoch += 1
            self._sync_protect_witness()
        self._protected_vpns = remainder

    def protected_pages(self) -> np.ndarray:
        """vpns of all currently protected pages, ascending.

        O(protected): served from the incrementally maintained sorted
        cache instead of an O(pages) ``flatnonzero``.  The returned array
        is a copy-on-write snapshot -- later protect/unprotect calls
        replace the cache rather than mutating it -- so callers may hold
        it across updates; they must not write into it.
        """
        return self._protected_vpns

    # ------------------------------------------------------------------
    # Residency updates (migration path)
    # ------------------------------------------------------------------
    def move_to_tier(self, vpns: np.ndarray, tier_id: int) -> None:
        """Retarget pages to a new tier (frame accounting is the kernel's
        job; this only updates the per-page node id).

        Bumps ``epoch`` exactly once per call and journals the move
        (deduplicated vpns plus their previous tiers) so placement-derived
        caches can apply an O(moved) delta instead of recomputing from
        the full tier array.
        """
        vpns = _sorted_unique(np.asarray(vpns, dtype=np.int64))
        old_tiers = self.tier[vpns]  # fancy indexing copies
        self.tier[vpns] = np.int8(tier_id)
        self.epoch += 1
        cells = self._witness_cells
        if cells is not None:
            cells[0, self._witness_index] = self.epoch
        log = self._move_log
        log.append((self.epoch, vpns, old_tiers, int(tier_id)))
        self._move_log_pages += int(vpns.size)
        while log and (
            self._move_log_pages > self.MOVE_LOG_CAP_PAGES
            or len(log) > self.MOVE_LOG_CAP_ENTRIES
        ):
            dropped_epoch, dropped_vpns, _, _ = log.popleft()
            self._move_log_pages -= int(dropped_vpns.size)
            self.move_log_base = dropped_epoch

    def moves_since(
        self, epoch: int
    ) -> Optional[List[Tuple[int, np.ndarray, np.ndarray, int]]]:
        """Journal entries covering ``(epoch, self.epoch]``, oldest first.

        Returns ``None`` when the journal no longer reaches back to
        ``epoch`` (entries were dropped past the retention cap); callers
        must then fall back to a full recount.
        """
        if epoch < self.move_log_base:
            return None
        entries: List[Tuple[int, np.ndarray, np.ndarray, int]] = []
        for entry in reversed(self._move_log):
            if entry[0] <= epoch:
                break
            entries.append(entry)
        entries.reverse()
        return entries

    def __repr__(self) -> str:
        return (
            f"PageState(n_pages={self.n_pages}, "
            f"fast={self.count_in_tier(FAST_TIER)}, "
            f"protected={int(self.prot_none.sum())})"
        )
