"""Per-process page metadata as a structure of arrays.

This is the simulator's ``struct page`` + PTE state.  One instance describes
every resident page of a process.  All fields are numpy arrays indexed by
virtual page number (vpn), which lets the kernel subsystems and policies
operate on whole address ranges with vectorised expressions -- the same way
the real kernel batches PTE updates within a scan window.

Fields and their kernel analogues:

=================  ====================================================
``tier``           node id in ``struct page`` (0 = fast, 1 = slow)
``prot_none``      PTE has ``PROT_NONE`` set by a NUMA/Ticking scan
``scan_ts_ns``     Chrono's 4-byte CIT metadata: time of last unmap
``accessed``       PTE accessed bit (hardware-set, software-cleared)
``dirty``          PTE dirty bit
``probed``         Chrono's ``PG_probed`` flag (DCSC victim pages)
``demoted``        Chrono's ``demoted`` flag (thrashing monitor)
``candidate``      page sits in the XArray candidate set
``candidate_cit``  first-round CIT recorded for a candidate
``lru_active``     page is on the active (vs inactive) LRU list
``lru_gen``        generation of last observed access (LRU ordering)
=================  ====================================================
"""

from __future__ import annotations

import numpy as np

from repro.mem.tier import FAST_TIER, SLOW_TIER

NO_TIMESTAMP: int = -1


class PageState:
    """Structure-of-arrays page metadata for one process."""

    def __init__(self, n_pages: int) -> None:
        if n_pages <= 0:
            raise ValueError("a process needs at least one page")
        self.n_pages = int(n_pages)
        self.tier = np.full(n_pages, SLOW_TIER, dtype=np.int8)
        self.prot_none = np.zeros(n_pages, dtype=bool)
        self.scan_ts_ns = np.full(n_pages, NO_TIMESTAMP, dtype=np.int64)
        self.accessed = np.zeros(n_pages, dtype=bool)
        self.dirty = np.zeros(n_pages, dtype=bool)
        self.probed = np.zeros(n_pages, dtype=bool)
        self.demoted = np.zeros(n_pages, dtype=bool)
        self.demote_ts_ns = np.full(n_pages, NO_TIMESTAMP, dtype=np.int64)
        self.candidate = np.zeros(n_pages, dtype=bool)
        self.candidate_cit_ns = np.full(n_pages, NO_TIMESTAMP, dtype=np.int64)
        self.lru_active = np.zeros(n_pages, dtype=bool)
        self.lru_gen = np.zeros(n_pages, dtype=np.int64)
        # Exact ground-truth access accounting (the simulator's PMU):
        self.access_count = np.zeros(n_pages, dtype=np.float64)
        self.last_window_count = np.zeros(n_pages, dtype=np.float64)
        #: placement generation: bumped on every ``move_to_tier`` so the
        #: engine can reuse per-quantum placement-derived caches (tier
        #: masses) across quanta without migrations
        self.epoch: int = 0
        #: number of currently PROT_NONE pages, maintained by the
        #: protect/unprotect paths so the engine's hot loop can skip the
        #: hint-fault machinery without an O(pages) scan
        self.n_protected: int = 0

    # ------------------------------------------------------------------
    # Residency queries
    # ------------------------------------------------------------------
    def pages_in_tier(self, tier_id: int) -> np.ndarray:
        """vpns of pages resident in ``tier_id``."""
        return np.flatnonzero(self.tier == tier_id)

    def count_in_tier(self, tier_id: int) -> int:
        """Number of pages resident in ``tier_id``."""
        return int(np.count_nonzero(self.tier == tier_id))

    def fast_page_fraction(self) -> float:
        """The paper's "DRAM page percentage" for this process."""
        return self.count_in_tier(FAST_TIER) / self.n_pages

    # ------------------------------------------------------------------
    # PTE protection (scan / fault paths)
    # ------------------------------------------------------------------
    def protect(self, vpns: np.ndarray, now_ns: int) -> int:
        """Mark pages PROT_NONE and stamp the scan time; return count.

        Already-protected pages keep their original scan timestamp, the way
        the kernel skips PTEs that are already ``pte_protnone``.
        """
        vpns = np.asarray(vpns)
        fresh = vpns[~self.prot_none[vpns]]
        self.prot_none[fresh] = True
        self.scan_ts_ns[fresh] = now_ns
        self.n_protected += int(fresh.size)
        return int(fresh.size)

    def protect_at(self, vpns: np.ndarray, ts_ns: np.ndarray) -> None:
        """Mark pages PROT_NONE with per-page scan timestamps.

        Used by DCSC's second measurement round (re-protection happens at
        each page's own fault time) and by the thrashing monitor (the
        demotion time substitutes for the scan time).  Unlike
        :meth:`protect`, existing protection timestamps are overwritten.
        """
        vpns = np.asarray(vpns)
        self.n_protected += int(
            np.count_nonzero(~self.prot_none[vpns])
        )
        self.prot_none[vpns] = True
        self.scan_ts_ns[vpns] = np.asarray(ts_ns, dtype=np.int64)

    def unprotect(self, vpns: np.ndarray) -> None:
        """Clear PROT_NONE after a fault restored the mapping."""
        vpns = np.asarray(vpns)
        self.n_protected -= int(
            np.count_nonzero(self.prot_none[vpns])
        )
        self.prot_none[vpns] = False

    def protected_pages(self) -> np.ndarray:
        """vpns of all currently protected pages."""
        return np.flatnonzero(self.prot_none)

    # ------------------------------------------------------------------
    # Residency updates (migration path)
    # ------------------------------------------------------------------
    def move_to_tier(self, vpns: np.ndarray, tier_id: int) -> None:
        """Retarget pages to a new tier (frame accounting is the kernel's
        job; this only updates the per-page node id)."""
        self.tier[np.asarray(vpns)] = np.int8(tier_id)
        self.epoch += 1

    def clear_window_counts(self) -> None:
        """Roll the per-window ground-truth access counters."""
        self.last_window_count[:] = 0.0

    def __repr__(self) -> str:
        return (
            f"PageState(n_pages={self.n_pages}, "
            f"fast={self.count_in_tier(FAST_TIER)}, "
            f"protected={int(self.prot_none.sum())})"
        )
