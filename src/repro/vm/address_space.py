"""Virtual address space layout: VMAs and scan cursors.

The Ticking-scan (like the kernel's NUMA-balancing scan it extends) walks a
process's VMAs in address order, one *scan step* worth of pages at a time,
wrapping around at the end of the address space.  :class:`AddressSpace`
provides exactly that iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class VMArea:
    """A contiguous virtual memory area ``[start_vpn, end_vpn)``."""

    start_vpn: int
    end_vpn: int

    def __post_init__(self) -> None:
        if self.start_vpn < 0 or self.end_vpn <= self.start_vpn:
            raise ValueError(
                f"invalid VMA [{self.start_vpn}, {self.end_vpn})"
            )

    @property
    def n_pages(self) -> int:
        return self.end_vpn - self.start_vpn

    def contains(self, vpn: int) -> bool:
        return self.start_vpn <= vpn < self.end_vpn


class AddressSpace:
    """An ordered set of non-overlapping VMAs with a scan cursor."""

    def __init__(self, vmas: List[VMArea]) -> None:
        # An empty VMA list is a zero-page address space (legal: a
        # process may exist without resident memory); scans over it see
        # empty windows that always report a completed pass.
        ordered = sorted(vmas, key=lambda v: v.start_vpn)
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.start_vpn < prev.end_vpn:
                raise ValueError(
                    f"overlapping VMAs: {prev} and {cur}"
                )
        self.vmas = ordered
        self._scan_cursor = 0  # index into the flattened page sequence
        if ordered:
            self._flat_cache: np.ndarray = np.concatenate(
                [np.arange(v.start_vpn, v.end_vpn) for v in self.vmas]
            )
        else:
            self._flat_cache = np.empty(0, dtype=np.int64)

    @classmethod
    def linear(cls, n_pages: int) -> "AddressSpace":
        """A single VMA covering ``[0, n_pages)`` -- the common case for the
        synthetic workloads."""
        return cls([VMArea(0, n_pages)] if n_pages > 0 else [])

    @property
    def total_pages(self) -> int:
        return sum(v.n_pages for v in self.vmas)

    def all_vpns(self) -> np.ndarray:
        """Every mapped vpn, in address order."""
        return self._flat_cache

    def next_scan_window(self, n_pages: int) -> Tuple[np.ndarray, bool]:
        """Return the next ``n_pages`` vpns under the scan cursor.

        Returns ``(vpns, wrapped)`` where ``wrapped`` is True when the cursor
        passed the end of the address space during this window (i.e. one full
        pass over the process completed -- the paper's *scan period*
        boundary).
        """
        if n_pages <= 0:
            raise ValueError("scan window must cover at least one page")
        total = self.total_pages
        flat = self.all_vpns()
        start = self._scan_cursor
        end = start + min(n_pages, total)
        wrapped = end >= total
        if wrapped:
            window = np.concatenate([flat[start:], flat[: end - total]])
            self._scan_cursor = end - total
        else:
            window = flat[start:end]
            self._scan_cursor = end
        return window, wrapped

    def reset_cursor(self) -> None:
        self._scan_cursor = 0
