"""The page-fault path.

The simulator models *NUMA hint faults*: a scan marked a PTE ``PROT_NONE``;
the next access traps into the kernel, which records the fault, restores the
mapping, and hands the event to the active tiering policy.  Chrono's CIT is
computed right here -- fault timestamp minus the scan timestamp the
Ticking-scan stamped on the page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vm.process import SimProcess

NUMA_HINT_FAULT: str = "numa_hint"


@dataclass
class FaultBatch:
    """A batch of NUMA hint faults taken by one process in one quantum.

    Attributes:
        pid: faulting process id.
        vpns: virtual page numbers that faulted (each page faults at most
            once per protection round, as in the kernel).
        fault_ts_ns: absolute time each fault fired.
        cit_ns: Captured Idle Time of each fault
            (``fault_ts - scan_ts``); ``-1`` where the page had no scan
            timestamp (should not happen for protected pages).
    """

    pid: int
    vpns: np.ndarray
    fault_ts_ns: np.ndarray
    cit_ns: np.ndarray
    kind: str = NUMA_HINT_FAULT

    def __post_init__(self) -> None:
        if not (len(self.vpns) == len(self.fault_ts_ns) == len(self.cit_ns)):
            raise ValueError("fault batch arrays must be parallel")

    @property
    def n_faults(self) -> int:
        return int(len(self.vpns))

    def event_fields(self) -> dict:
        """The batch as a ``fault.batch`` trace-event payload.

        Keys match the ``fault.batch`` entry of
        :data:`repro.obs.events.EVENT_SCHEMA`; arrays stay numpy and are
        JSON-ified by the tracer at flush time.
        """
        return {
            "pid": self.pid,
            "n_faults": self.n_faults,
            "vpns": self.vpns,
            "fault_ts_ns": self.fault_ts_ns,
            "cit_ns": self.cit_ns,
        }

    @classmethod
    def empty(cls, pid: int) -> "FaultBatch":
        return cls(
            pid=pid,
            vpns=np.empty(0, dtype=np.int64),
            fault_ts_ns=np.empty(0, dtype=np.int64),
            cit_ns=np.empty(0, dtype=np.int64),
        )


def take_hint_faults(
    process: "SimProcess",
    touched_vpns: np.ndarray,
    quantum_start_ns: int,
    quantum_len_ns: int,
    rng: np.random.Generator,
    rates_per_ns: Optional[np.ndarray] = None,
    cache_remainder: Optional[np.ndarray] = None,
) -> FaultBatch:
    """Resolve hint faults for protected pages touched this quantum.

    Each touched protected page faults exactly once -- on its *first*
    access of the quantum.  When ``rates_per_ns`` (the page's expected
    accesses per nanosecond this quantum) is provided, the fault offset is
    drawn from the page's own arrival process: an exponential truncated to
    the quantum.  This keeps CIT resolution *below* the engine quantum --
    a page accessed every 2 ms faults ~2 ms after its scan even under a
    50 ms quantum, exactly the fine-grained signal Chrono measures.
    Without rates the offset falls back to uniform (the cold-page limit of
    the truncated exponential).

    Side effects: clears ``prot_none`` for the faulted pages and sets their
    accessed bits (the faulting access is an access).

    ``cache_remainder`` is a hot-path shortcut for callers that derived
    ``touched_vpns`` from :meth:`~repro.vm.page_state.PageState.\
protected_pages` with a boolean mask: it must be the complementary
    (untouched) slice of that same snapshot, and lets the unprotect skip
    its membership search.
    """
    pages = process.pages
    touched_vpns = np.asarray(touched_vpns)
    if touched_vpns.size == 0:
        return FaultBatch.empty(process.pid)

    quantum_len_ns = max(quantum_len_ns, 1)
    if rates_per_ns is None:
        offsets = rng.integers(0, quantum_len_ns, size=touched_vpns.size)
    else:
        rates = np.asarray(rates_per_ns, dtype=np.float64)
        if rates.shape != touched_vpns.shape:
            raise ValueError("rates must parallel touched vpns")
        if float(rates.min()) <= 0:
            raise ValueError("touched pages must have positive rates")
        # First-arrival time conditioned on >= 1 arrival in the quantum:
        # t = -ln(1 - u * (1 - exp(-lambda * Q))) / lambda.
        u = rng.random(touched_vpns.size)
        scale = -np.expm1(-rates * quantum_len_ns)
        offsets = (-np.log1p(-u * scale) / rates).astype(np.int64)
        offsets = np.minimum(offsets, quantum_len_ns - 1)
    fault_ts = quantum_start_ns + offsets
    scan_ts = pages.scan_ts_ns[touched_vpns]
    cit = np.where(scan_ts >= 0, fault_ts - scan_ts, np.int64(-1))

    if cache_remainder is not None:
        pages.unprotect_resolved(touched_vpns, cache_remainder)
    else:
        pages.unprotect(touched_vpns)
    pages.accessed[touched_vpns] = True

    return FaultBatch(
        pid=process.pid,
        vpns=touched_vpns.astype(np.int64, copy=False),
        fault_ts_ns=fault_ts.astype(np.int64, copy=False),
        cit_ns=cit.astype(np.int64, copy=False),
    )
