"""Huge-page geometry helpers.

A 2 MB huge page covers 512 contiguous base (4 KB) pages; a 1 GB huge page
covers 512 * 512.  Policies that operate at huge-page granularity (Memtis by
default, Chrono with huge-page support enabled) aggregate base-page state
over these fixed-size groups.  The helpers here are pure geometry --
policy-specific behaviour (threshold scaling, bloat accounting) lives with
the policies.
"""

from __future__ import annotations

import numpy as np

HUGE_2MB_PAGES: int = 512
HUGE_1GB_PAGES: int = 512 * 512


def n_huge_pages(n_base_pages: int, hp_pages: int = HUGE_2MB_PAGES) -> int:
    """Number of huge-page groups covering ``n_base_pages`` base pages."""
    if n_base_pages <= 0:
        raise ValueError("need a positive number of base pages")
    if hp_pages <= 0:
        raise ValueError("huge page size must be positive")
    return -(-n_base_pages // hp_pages)  # ceil division


def huge_id(vpns: np.ndarray, hp_pages: int = HUGE_2MB_PAGES) -> np.ndarray:
    """Huge-page group id of each base vpn."""
    return np.asarray(vpns) // hp_pages


def aggregate_by_huge(
    values: np.ndarray, hp_pages: int = HUGE_2MB_PAGES
) -> np.ndarray:
    """Sum a per-base-page array over huge-page groups.

    ``values`` has one entry per base page; the result has one entry per
    huge-page group (the tail group may be partial).
    """
    values = np.asarray(values, dtype=np.float64)
    groups = n_huge_pages(values.size, hp_pages)
    ids = np.arange(values.size) // hp_pages
    return np.bincount(ids, weights=values, minlength=groups)


def base_vpns_of(
    huge_ids: np.ndarray,
    n_base_pages: int,
    hp_pages: int = HUGE_2MB_PAGES,
) -> np.ndarray:
    """Expand huge-page group ids back to their base vpns (clipped to the
    address-space end for the partial tail group)."""
    huge_ids = np.asarray(huge_ids)
    if huge_ids.size == 0:
        return np.empty(0, dtype=np.int64)
    starts = huge_ids * hp_pages
    offsets = np.arange(hp_pages)
    vpns = (starts[:, None] + offsets[None, :]).ravel()
    return vpns[vpns < n_base_pages].astype(np.int64)


def bloat_ratio(
    resident_fast_base_pages: int, hot_base_pages: int
) -> float:
    """Memory-bloat ratio: fast-tier residency versus truly hot footprint.

    The paper reports Memtis bloating to ~145% on the KV-store workloads:
    huge pages promoted for a few hot 4 KB regions drag their cold siblings
    into DRAM.  Values above 1.0 mean bloat.
    """
    if hot_base_pages <= 0:
        return 0.0
    return resident_fast_base_pages / hot_base_pages
