"""Experiment harness: the quantum engine, run configs, and reporting.

* :mod:`repro.harness.engine` -- advances every process through fixed
  wall-clock quanta, generating batched accesses, hint faults, and latency
  accounting, while kernel daemons (scans, reclaim, tuning) fire from the
  timer queue.
* :mod:`repro.harness.runner` -- one-call experiment runner producing a
  :class:`RunResult` with every metric the paper's figures need.
* :mod:`repro.harness.reporting` -- plain-text tables in the shape of the
  paper's figures.
"""

from repro.harness.engine import QuantumEngine
from repro.harness.runner import RunConfig, RunResult, run_experiment

__all__ = ["QuantumEngine", "RunConfig", "RunResult", "run_experiment"]
