"""Experiment harness: the quantum engine, run configs, and reporting.

* :mod:`repro.harness.engine` -- advances every process through fixed
  wall-clock quanta, generating batched accesses, hint faults, and latency
  accounting, while kernel daemons (scans, reclaim, tuning) fire from the
  timer queue.
* :mod:`repro.harness.runner` -- one-call experiment runner producing a
  :class:`RunResult` with every metric the paper's figures need.
* :mod:`repro.harness.sweep` -- declarative experiment cells with
  warm-worker-pool fan-out (``run_cells(cells, jobs=N)``) and streamed
  results (``iter_cells``).
* :mod:`repro.harness.shm` -- zero-copy shared-memory transport for
  compiled workload tables between the sweep parent and its workers.
* :mod:`repro.harness.cache` -- on-disk result cache keyed by a content
  hash of (cell description, code version), plus per-cell wall-time
  history for the adaptive scheduler.
* :mod:`repro.harness.profiling` -- per-subsystem wall-time shares
  (scan / fault / migrate / policy / engine).
* :mod:`repro.harness.reporting` -- plain-text tables in the shape of the
  paper's figures.
"""

from repro.harness.cache import ResultCache
from repro.harness.engine import QuantumEngine
from repro.harness.profiling import Profiler
from repro.harness.runner import (
    RunConfig,
    RunResult,
    RunSummary,
    run_experiment,
)
from repro.harness.sweep import (
    CellResult,
    SweepCell,
    default_jobs,
    iter_cells,
    run_cell,
    run_cells,
)

__all__ = [
    "CellResult",
    "Profiler",
    "QuantumEngine",
    "ResultCache",
    "RunConfig",
    "RunResult",
    "RunSummary",
    "SweepCell",
    "default_jobs",
    "iter_cells",
    "run_cell",
    "run_cells",
    "run_experiment",
]
