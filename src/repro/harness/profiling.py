"""Lightweight per-subsystem wall-time instrumentation.

A :class:`Profiler` attached to a kernel (``kernel.profiler``) splits the
real (host) wall time of a run across the simulator's subsystems:

===================  ==================================================
``engine``           the quantum loop itself (pricing, fault
                     generation)
``policy``           tiering-policy work (per-quantum hooks, fault
                     handlers, scan hooks, policy daemons)
``fault``            hint-fault delivery and bookkeeping
``migrate``          the migration engine (frame accounting, cost
                     charging)
``scan``             Ticking/NUMA-balancing scan passes
``aging``            LRU reference-bit aging passes
``accounting``       deferred ground-truth ledger flushes (the
                     O(pages) materialisation of ``access_count`` /
                     ``last_window_count``, charged where the
                     consuming read happens)
``arena_build``      arena stepping only: the per-segment gather pass
                     (workload advance, distribution-swap detection,
                     tier-mass journal repair)
``segment_fold``     arena stepping only: the vectorised
                     pricing/ledger/latency/demand folds over the
                     segment axis
``fault_partition``  arena stepping only: the aggregate fault draw
                     and its partition back to segments
===================  ==================================================

Sections nest (a policy fault handler may migrate pages); the profiler
charges *exclusive* time to each section, so the shares sum to the
instrumented wall time without double counting.  When ``kernel.profiler``
is ``None`` (the default) every hook site is a single ``is None`` check,
keeping the uninstrumented hot path free of overhead.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List


class Profiler:
    """Exclusive-time accumulator over nested named sections."""

    def __init__(self) -> None:
        self.exclusive_ns: Dict[str, float] = {}
        #: section stack: [name, time of last entry/resume]
        self._stack: List[List] = []

    # ------------------------------------------------------------------
    def push(self, name: str) -> None:
        """Enter a section, pausing the enclosing one."""
        now = time.perf_counter_ns()
        if self._stack:
            top = self._stack[-1]
            self.exclusive_ns[top[0]] = (
                self.exclusive_ns.get(top[0], 0.0) + (now - top[1])
            )
        self._stack.append([name, now])

    def pop(self) -> None:
        """Leave the current section, resuming the enclosing one."""
        now = time.perf_counter_ns()
        name, resumed = self._stack.pop()
        self.exclusive_ns[name] = (
            self.exclusive_ns.get(name, 0.0) + (now - resumed)
        )
        if self._stack:
            self._stack[-1][1] = now

    @contextmanager
    def section(self, name: str):
        self.push(name)
        try:
            yield
        finally:
            self.pop()

    # ------------------------------------------------------------------
    @property
    def total_ns(self) -> float:
        return sum(self.exclusive_ns.values())

    def report(self) -> Dict[str, Dict[str, float]]:
        """``{section: {"seconds": ..., "share": ...}}``, largest first."""
        total = self.total_ns
        items = sorted(
            self.exclusive_ns.items(), key=lambda kv: -kv[1]
        )
        return {
            name: {
                "seconds": ns / 1e9,
                "share": ns / total if total else 0.0,
            }
            for name, ns in items
        }

    def format_table(self) -> str:
        """A small aligned text table of the report."""
        report = self.report()
        if not report:
            return "(no profile data)"
        width = max(len(name) for name in report)
        lines = [f"{'subsystem'.ljust(width)}  seconds  share"]
        for name, row in report.items():
            lines.append(
                f"{name.ljust(width)}  {row['seconds']:7.3f}  "
                f"{100 * row['share']:5.1f}%"
            )
        lines.append(
            f"{'total'.ljust(width)}  {self.total_ns / 1e9:7.3f}"
        )
        return "\n".join(lines)
