"""The batched quantum execution engine.

Every simulated process advances through fixed wall-clock quanta (default
50 ms).  Within a quantum the engine:

1. asks the workload for its access distribution ``p`` and prices the mix
   against the current page placement (vectorised dot product),
2. deducts queued kernel time (scan work, fault handling, migrations
   charged by the previous quantum) from the quantum budget,
3. computes the number of completed accesses
   ``n = budget / (mean latency + delay)``,
4. resolves hint faults: each protected page is touched this quantum with
   probability ``1 - exp(-n * p_i)`` (the exact Poisson-traffic closed
   form), faulting pages get uniformly distributed fault times and their
   CIT values, and the batch is delivered to the tiering policy,
5. books ground-truth access counts, FMAR numerators, and the latency
   mixture.

Between quanta the kernel timer queue fires scan events, reclaim passes,
LRU aging, and policy daemons.  This design makes the steady-state cost
of a quantum amortized O(tiers) + O(pages that changed) while preserving
the per-page fault/CIT statistics of an access-by-access simulation.

Hot-path structure (``docs/SIMULATION.md`` section 5 is the long form):

* **Pricing** collapses to O(tiers): the mass each tier serves only
  changes when the placement changes (a migration bumps
  ``PageState.epoch``) or the workload rotates its distribution (phase
  changes swap in a *new* probability array; distributions are
  immutable, per the :mod:`repro.workloads.base` contract).  The
  per-process tier-mass cache is keyed on ``(id(probs), pages.epoch)``
  and repaired in O(moved) from the page-state move journal; the
  contention-multiplier vector is computed once per quantum.
* **Ground-truth accounting** is deferred: the engine appends one
  ``(probs, n)`` ledger run per quantum (O(1)) and ``PageState``
  materialises the counters only when a consumer reads them.
* **Hint-fault sampling** splits the protected snapshot: pages with
  per-quantum touch probability above ``FAULT_DORMANT_MAX_TOUCH`` get
  individual Bernoulli draws, the cold remainder is one aggregate
  Poisson draw placed by inverse-CDF lookup -- distributionally exact
  (Poisson thinning) at O(active + faults) cost.
* **Latency bookkeeping** accumulates per-quantum class counts into
  plain dicts and folds them into the :class:`LatencyMixture` objects
  once per :meth:`QuantumEngine.run`.

Pass ``fast_path=False`` to force the original per-page recomputation
every quantum (used by ``scripts/bench_engine.py`` to measure the win
and by the equivalence tests); the reference path also draws per-page
fault indicators from its original RNG stream, so fast and reference
trajectories agree statistically, not bit for bit.

**Quantum fusion** (``docs/SIMULATION.md`` section 6) takes the
steady-state stepping cost from O(quanta) to O(kernel events): before
each step the engine peeks the kernel timer queue
(:meth:`Kernel.next_event_ns`) and, when every process is provably in
steady state -- distribution array unchanged (identity), placement
epoch unchanged, protection epoch unchanged, workload stable through
the window -- it fuses all quanta up to the event horizon into one
macro-quantum of ``n·K`` nanoseconds.  One ledger run, one merged
fault draw (exact by Poisson merging: the first-arrival law over the
fused window equals the per-quantum composition), one latency fold,
one contention evaluation carried from the converged previous demand.
Policies bound fusion through ``needs_per_quantum`` /
``max_fusion_quanta`` (see :class:`repro.policies.base.TieringPolicy`);
``fusion=False`` (the ``fusion_reference`` mode, CLI ``--no-fusion``)
preserves per-quantum stepping for equivalence gating.  When fusion
never engages the trajectory is bit-identical to the reference mode:
the horizon check consumes no RNG and a one-quantum step executes the
exact per-quantum path.

**Arena stepping** (``docs/SIMULATION.md`` section 7) removes the last
O(n_procs) Python loop from the steady-state step: with ``arena=True``
(the default; requires the fast path) every (macro-)quantum executes as
one batched array program over a cross-process page arena
(:mod:`repro.harness.arena`) -- one vectorised pricing solve, one
aggregate fault draw partitioned back to processes, one concatenated
ledger account, one latency fold, one demand fold.  ``arena=False``
keeps the per-process fast path as the arena's reference mode; a
single-process arena is bit-identical to it, multi-process arenas are
statistically equivalent (the aggregate fault draw consumes a dedicated
``engine.arena`` stream).  The steady-state fusion witness lives in the
arena's per-segment epoch vectors instead of per-process buffers.

**Distribution interning** (``docs/SIMULATION.md`` section 8) drops the
arena's remaining O(segments) Python work to O(unique distributions):
with ``intern=True`` (the default; requires the arena) multi-segment
arenas group stationary segments that share one compiled distribution
table into equivalence classes and execute the steady-state quantum per
class -- cached pricing with per-class dirty bits over epoch witness
cells, merged class ledger runs with lazy per-segment thinning, and
cached fault plans feeding the aggregate draw.  When every class is a
singleton the interned step is bit-identical to the uninterned arena
step; ``intern=False`` (``--no-intern``) keeps the uninterned step as
the reference mode.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

import numpy as np

from repro.analysis.latency import LatencyMixture
from repro.kernel.kernel import Kernel
from repro.mem.machine import CACHE_LINE_BYTES
from repro.mem.tier import FAST_TIER
from repro.sim.timeunits import MILLISECOND
from repro.vm.fault import take_hint_faults
from repro.vm.process import SimProcess

Observer = Callable[["QuantumEngine", int], None]


class _ProcessBuffers:
    """Preallocated per-process scratch state for the quantum hot path."""

    __slots__ = (
        "count_buf", "mass_probs", "mass_epoch", "tier_mass",
        "mass_resync", "fault_probs", "fault_prot", "prot_p",
        "active_pos", "active_p", "dormant_pos", "dormant_cdf",
        "dormant_mass", "touched_mask",
        "fusion_probs", "fusion_epoch", "fusion_protect_epoch",
    )

    def __init__(self, n_pages: int) -> None:
        #: reference-path accounting scratch (unused on the fast path,
        #: which defers accounting through the page-state ledger)
        self.count_buf: Optional[np.ndarray] = None
        #: cache key for ``tier_mass``: the workload's probability array
        #: (held by reference, so a freed array's address cannot alias a
        #: new distribution) plus the placement epoch at computation time
        self.mass_probs: Optional[np.ndarray] = None
        self.mass_epoch: int = -1
        self.tier_mass: Optional[np.ndarray] = None
        #: incremental-delta applications left before the next full
        #: recount (bounds float drift from repeated add/subtract)
        self.mass_resync: int = 0
        #: fault-candidate cache (fast path): the protected snapshot is
        #: split into an *active* head (per-page Bernoulli draws) and a
        #: *dormant* tail sampled through one aggregate Poisson draw.
        #: Keyed by identity on the probability array and the
        #: copy-on-write protected-page snapshot; both are replaced --
        #: never mutated -- when their contents change.
        self.fault_probs: Optional[np.ndarray] = None
        self.fault_prot: Optional[np.ndarray] = None
        self.prot_p: Optional[np.ndarray] = None
        self.active_pos: Optional[np.ndarray] = None
        self.active_p: Optional[np.ndarray] = None
        self.dormant_pos: Optional[np.ndarray] = None
        self.dormant_cdf: Optional[np.ndarray] = None
        self.dormant_mass: float = 0.0
        self.touched_mask: Optional[np.ndarray] = None
        #: steady-state witness recorded at the end of each quantum: the
        #: distribution array the quantum ran against plus the placement
        #: and protection epochs it left behind.  The fusion horizon
        #: check compares these against the live state -- any mismatch
        #: (migration, scan, phase change) disables fusion for the next
        #: step.
        self.fusion_probs: Optional[np.ndarray] = None
        self.fusion_epoch: int = -1
        self.fusion_protect_epoch: int = -1


class QuantumEngine:
    """Advances processes and kernel daemons through simulated time."""

    def __init__(
        self,
        kernel: Kernel,
        quantum_ns: int = 50 * MILLISECOND,
        fast_path: bool = True,
        fusion: bool = True,
        arena: bool = True,
        intern: bool = True,
    ) -> None:
        if quantum_ns <= 0:
            raise ValueError("quantum must be positive")
        self.kernel = kernel
        self.quantum_ns = int(quantum_ns)
        self.fast_path = bool(fast_path)
        #: quantum fusion enabled?  ``False`` is the ``fusion_reference``
        #: mode: per-quantum stepping, for equivalence gating.  Fusion
        #: additionally requires the fast path (the reference path exists
        #: precisely to replay the historical per-quantum trajectory).
        self.fusion = bool(fusion) and self.fast_path
        #: arena stepping enabled?  ``False`` keeps the per-process fast
        #: path (the arena's reference mode, CLI ``--no-arena``); like
        #: fusion, the arena requires the fast path.
        self.arena = bool(arena) and self.fast_path
        #: distribution interning inside the arena (equivalence-class
        #: stepping)?  ``False`` keeps the uninterned arena step (the
        #: interning reference mode, CLI ``--no-intern``); interning
        #: requires arena stepping.
        self.intern = bool(intern) and self.arena
        #: lazily built :class:`repro.harness.arena.ProcessArena`;
        #: rebuilt whenever the fleet changes, torn down at run end
        self._arena = None
        #: arena step() invocations (one per engine step in arena mode)
        self.arena_steps = 0
        self.latency = LatencyMixture()
        self.latency_by_pid: Dict[int, LatencyMixture] = {}
        #: per-process pending latency classes ``{pid: {key: count}}``,
        #: folded into the public mixtures at the end of every ``run``
        #: (see ``_flush_latency``)
        self._lat_pending: Dict[int, Dict[int, float]] = {}
        self._prev_demand_bytes_per_sec = np.zeros(kernel.machine.n_tiers)
        self._multipliers = np.ones(kernel.machine.n_tiers)
        self._buffers: Dict[int, _ProcessBuffers] = {}
        # Small per-quantum scratch vectors (O(tiers)).
        n_tiers = kernel.machine.n_tiers
        self._n_tiers = n_tiers
        #: per-quantum effective (contended) tier latencies as plain
        #: Python floats; refreshed by ``run`` whenever the contention
        #: multipliers change.  The latency mixture keys on ``round()``,
        #: which is an order of magnitude faster on ``float`` than on
        #: numpy scalars, and the products are bitwise identical.
        self._refresh_latency_tables(
            kernel.machine.read_latency_ns.tolist(),
            kernel.machine.write_latency_ns.tolist(),
        )
        self._demand_accum = np.zeros(n_tiers, dtype=np.float64)
        self._demand_out = np.empty(n_tiers, dtype=np.float64)
        #: shared early-return value for finished processes; callers only
        #: accumulate it, so one zero vector serves every quantum
        self._zero_demand = np.zeros(n_tiers, dtype=np.float64)
        #: simulated quanta covered (a fused step counts all its quanta)
        self.quanta_run = 0
        #: engine loop iterations (fused or single)
        self.steps_run = 0
        #: quanta covered by fused (multi-quantum) steps
        self.fused_quanta = 0

    # ------------------------------------------------------------------
    def _refresh_latency_tables(self, read_lats, write_lats) -> None:
        """Install this quantum's effective tier latencies and derive
        their latency-mixture keys.

        The single place latency keys are rounded: both the per-process
        path and the arena fold consume ``_read_keys`` / ``_write_keys``
        / ``_fault_key`` from here, so the two modes cannot drift.
        ``read_lats`` / ``write_lats`` are plain Python float lists
        (``tolist()``-ed once per quantum).
        """
        self._read_lat_list = read_lats
        self._write_lat_list = write_lats
        self._read_keys = [int(round(v)) for v in read_lats]
        self._write_keys = [int(round(v)) for v in write_lats]
        self._fault_lat = (
            read_lats[-1]
            + self.kernel.machine.spec.effective_fault_cost_ns
        )
        self._fault_key = int(round(self._fault_lat))

    def _buffers_for(self, process: SimProcess) -> _ProcessBuffers:
        """Get-or-create the per-process scratch buffers."""
        buffers = self._buffers.get(process.pid)
        if buffers is None:
            buffers = self._buffers[process.pid] = _ProcessBuffers(
                process.pages.n_pages
            )
        return buffers

    # ------------------------------------------------------------------
    def run(
        self,
        duration_ns: int,
        observer: Optional[Observer] = None,
        observe_every_ns: Optional[int] = None,
        stop_when_finished: bool = False,
    ) -> int:
        """Run for ``duration_ns`` of simulated time.

        ``observer(engine, now)`` fires every ``observe_every_ns`` (default:
        every quantum).  With ``stop_when_finished`` the run ends as soon as
        every process reached its access target (fixed-work experiments like
        Graph500 execution time).  Returns the simulated end time.
        """
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        self.kernel.start()
        clock = self.kernel.clock
        profiler = self.kernel.profiler
        if profiler is not None:
            profiler.push("engine")
        try:
            end_ns = clock.now + duration_ns
            next_observe = clock.now
            policy = self.kernel.policy
            fusion_on = self.fusion and not getattr(
                policy, "needs_per_quantum", False
            )
            max_fuse = getattr(policy, "max_fusion_quanta", None)
            observe_bound = next_observe if observer is not None else None
            prev_multipliers = self._multipliers
            while clock.now < end_ns:
                start = clock.now
                quantum = min(self.quantum_ns, end_ns - start)
                # All processes price this quantum against the same
                # previous-quantum demand: compute the contention vector
                # once here instead of per process.
                self._multipliers = multipliers = (
                    self.kernel.machine.contention_multipliers(
                        self._prev_demand_bytes_per_sec
                    )
                )
                n_fused = 1
                if fusion_on and quantum == self.quantum_ns:
                    # A fused window holds one contention vector for its
                    # whole span, so fusion additionally requires the
                    # contention feedback loop to have converged: a
                    # migration burst or phase change spikes the demand
                    # for one quantum, and reference stepping decays the
                    # spiked multiplier after a single quantum -- holding
                    # it across a macro-quantum would systematically
                    # overprice the window.
                    if bool(
                        (
                            np.abs(multipliers - prev_multipliers)
                            <= self.FUSION_CONTENTION_TOL
                            * prev_multipliers
                        ).all()
                    ):
                        n_fused = self._fusion_horizon(
                            start, end_ns, observe_bound, max_fuse
                        )
                prev_multipliers = multipliers
                macro_ns = quantum * n_fused
                machine = self.kernel.machine
                # The per-quantum latency tables and their mixture keys
                # are fixed once the multipliers are known; derive them
                # once here instead of per process per class.
                self._refresh_latency_tables(
                    (machine.read_latency_ns * self._multipliers)
                    .tolist(),
                    (machine.write_latency_ns * self._multipliers)
                    .tolist(),
                )
                demand = self._demand_accum
                demand.fill(0.0)
                if self.arena:
                    demand += self._arena_step(start, macro_ns)
                else:
                    for process in self.kernel.processes:
                        demand += self.run_quantum(
                            process, start, macro_ns
                        )
                # Fold migration traffic into the demand picture.
                for tier in self.kernel.machine.tiers:
                    demand[tier.tier_id] += tier.consume_migration_bytes()
                np.divide(
                    demand,
                    macro_ns / 1e9,
                    out=self._prev_demand_bytes_per_sec,
                )
                self.kernel.advance_to(start + macro_ns)
                self.quanta_run += n_fused
                self.steps_run += 1
                obs = self.kernel.obs
                if obs is not None:
                    obs.inc("engine.quanta", n_fused)
                    gauges = self.kernel.machine.obs_gauges(
                        self._multipliers
                    )
                    for name, value in gauges.items():
                        obs.set_gauge(name, value)
                    obs.emit(
                        "engine.quantum",
                        clock.now,
                        quantum_ns=macro_ns,
                        fast_free_pages=gauges["machine.fast_free_pages"],
                        slow_free_pages=gauges["machine.slow_free_pages"],
                        fast_contention=gauges["machine.fast_contention"],
                        slow_contention=gauges["machine.slow_contention"],
                    )
                    arena_obj = self._arena
                    if arena_obj is not None and arena_obj.intern:
                        obs.set_gauge(
                            "arena.interned_classes",
                            arena_obj.n_classes,
                        )
                        obs.set_gauge(
                            "arena.interned_segments",
                            arena_obj.interned_segments,
                        )
                        repriced, skipped = (
                            arena_obj.take_reprice_counters()
                        )
                        if repriced:
                            obs.inc(
                                "arena.repriced_segments", repriced
                            )
                        if skipped:
                            obs.inc(
                                "arena.reprice_skipped_segments",
                                skipped,
                            )
                if n_fused > 1:
                    self.fused_quanta += n_fused
                    if obs is not None:
                        obs.inc("engine.fused_steps")
                        obs.inc("engine.fused_quanta", n_fused)
                        obs.observe("engine.fusion_horizon", n_fused)
                        obs.set_gauge(
                            "engine.fusion_ratio",
                            self.fused_quanta / self.quanta_run,
                        )
                        obs.emit(
                            "engine.fused",
                            clock.now,
                            n_quanta=n_fused,
                            macro_ns=macro_ns,
                        )
                if observer is not None and clock.now >= next_observe:
                    if self._arena is not None:
                        # Observers read per-process stats; fold in the
                        # arena's lazily accumulated quantum stats first.
                        self._arena.flush_stats()
                    observer(self, clock.now)
                    next_observe = clock.now + (observe_every_ns or 0)
                    observe_bound = next_observe
                if stop_when_finished and all(
                    p.finished for p in self.kernel.processes
                ):
                    break
            return clock.now
        finally:
            self._flush_latency()
            if self._arena is not None:
                # Drain every segment's ledger share and unhook the
                # page-state sources: results may outlive this engine.
                self._arena.detach()
                self._arena = None
            if profiler is not None:
                profiler.pop()

    def _arena_step(self, start_ns: int, macro_ns: int) -> np.ndarray:
        """One batched arena step (builds/rebuilds the arena lazily)."""
        arena = self._arena
        if arena is None or arena.processes != self.kernel.processes:
            from repro.harness.arena import ProcessArena

            if arena is not None:
                arena.detach()
            arena = self._arena = ProcessArena(self)
        self.arena_steps += 1
        return arena.step(start_ns, macro_ns)

    # ------------------------------------------------------------------
    #: maximum per-tier relative change of the contention-multiplier
    #: vector between consecutive steps for the feedback loop to count
    #: as converged (a fusion precondition; see ``run``)
    FUSION_CONTENTION_TOL: float = 0.01

    def _fusion_horizon(
        self,
        start_ns: int,
        end_ns: int,
        next_observe_ns: Optional[int],
        max_fuse: Optional[int],
    ) -> int:
        """Number of quanta safely fusable into one macro-quantum (>= 1).

        Every bound below shares one formula: per-quantum stepping fires
        anything scheduled at time ``X`` at the first quantum boundary at
        or after ``X``, so fusing ``ceil((X - start) / quantum)`` quanta
        reaches exactly that boundary.  Applied to the kernel's next hard
        event, the observer's next firing, each workload's stability
        horizon, and (via a fastest-possible-access bound) each process's
        remaining access target, then clamped by the run end and the
        policy's ``max_fusion_quanta``.  Any process not provably in
        steady state -- distribution array changed, pages migrated,
        protection changed since its last quantum -- returns 1 (no
        fusion).  Consumes no RNG, so a 1-quantum step stays bit-identical
        to reference stepping.
        """
        q = self.quantum_ns
        # Whole quanta left in the run; a trailing partial quantum runs
        # unfused.
        n = (end_ns - start_ns) // q
        if n <= 1:
            return 1
        horizon = self.kernel.next_event_ns()
        if horizon is not None:
            if horizon <= start_ns:
                return 1
            n = min(n, -(-(horizon - start_ns) // q))
        if next_observe_ns is not None:
            if next_observe_ns <= start_ns:
                return 1
            n = min(n, -(-(next_observe_ns - start_ns) // q))
        if max_fuse is not None:
            n = min(n, int(max_fuse))
        if n <= 1:
            return 1
        for process in self.kernel.processes:
            if process.finished:
                continue
            witness = self._steady_witness(process)
            if witness is None:
                # First quantum for this process: no steady-state witness.
                return 1
            w_probs, w_epoch, w_protect_epoch = witness
            pages = process.pages
            if (
                w_epoch != pages.epoch
                or w_protect_epoch != pages.protect_epoch
            ):
                return 1
            # Pending kernel debt (e.g. a migration burst's cost) makes
            # upcoming quanta heterogeneous: full-stall quanta execute
            # zero accesses, then a mixed quantum drains the remainder.
            # Policies whose per-quantum hooks are nonlinear in the
            # access count (Memtis' budget cap ``min(n, rate*q*share)``
            # is concave) would see a different input if a fused window
            # spanned the stall->recovery transition.  Pure-stall
            # windows are exact (zero accesses either way), so cap the
            # horizon at the number of whole stalled quanta and let the
            # mixed quantum run unfused.
            debt = process.pending_kernel_ns
            if debt > 0.0:
                stall_quanta = int(debt // q)
                if stall_quanta < 1:
                    return 1
                n = min(n, stall_quanta)
                if n <= 1:
                    return 1
            workload = process.workload
            # Duck-typed workloads predating the fusion contract get no
            # stability guarantee: treat them like ``stable_until_ns``
            # returning ``now`` (fusion disabled, stepping unchanged).
            stable_fn = getattr(workload, "stable_until_ns", None)
            stable = start_ns if stable_fn is None else stable_fn(start_ns)
            if stable is not None:
                if stable <= start_ns:
                    return 1
                n = min(n, -(-(stable - start_ns) // q))
                if n <= 1:
                    return 1
            # ``advance`` is idempotent and consumes no RNG; the step
            # repeats it.  The distribution for the upcoming quantum must
            # be the exact array the last quantum ran against.
            workload.advance(start_ns)
            if workload.access_distribution() is not w_probs:
                return 1
            if process.target_accesses is not None:
                remaining = (
                    process.target_accesses - process.stats.accesses
                )
                if remaining > 0:
                    # A quantum cannot complete more accesses than budget
                    # divided by the cheapest possible per-access cost
                    # (fastest tier, no contention), so the finishing
                    # quantum index is at least ceil(remaining / cap) --
                    # fusing up to it cannot overshoot the target.
                    cap = q / (
                        self._min_access_cost_ns(workload.write_fraction)
                        + workload.delay_ns_per_access
                    )
                    n = min(n, max(1, math.ceil(remaining / cap)))
                    if n <= 1:
                        return 1
        return int(n)

    def _steady_witness(self, process: SimProcess):
        """The last quantum's steady-state witness for ``process``:
        ``(probs, epoch, protect_epoch)``, or ``None`` when no quantum
        has recorded one yet.

        In arena mode the witness lives in the arena's per-segment
        vectors; otherwise in the per-process buffers.
        """
        if self.arena:
            arena = self._arena
            if arena is None:
                return None
            return arena.witness(process)
        buffers = self._buffers.get(process.pid)
        if buffers is None or buffers.fusion_probs is None:
            return None
        return (
            buffers.fusion_probs,
            buffers.fusion_epoch,
            buffers.fusion_protect_epoch,
        )

    def _min_access_cost_ns(self, write_fraction: float) -> float:
        """Cheapest possible mean access latency: best tier, uncontended.

        Contention multipliers are >= 1 and tier masses are a convex
        combination, so every realized per-access cost is at least this.
        Used to upper-bound per-quantum progress toward an access target.
        """
        machine = self.kernel.machine
        mix = (
            (1.0 - write_fraction) * machine.read_latency_ns
            + write_fraction * machine.write_latency_ns
        )
        return float(mix.min())

    # ------------------------------------------------------------------
    #: incremental tier-mass updates applied before forcing a full
    #: recount; bounds accumulated float error from delta arithmetic
    MASS_RESYNC_MOVES: int = 256

    def _tier_mass(
        self, process: SimProcess, probs: np.ndarray
    ) -> np.ndarray:
        """Probability mass served by each tier, cached across quanta.

        ``tier_mass[t] = sum(probs[i] for pages i resident on tier t)``.
        The result only changes when a migration moves pages
        (``pages.epoch``) or the workload swaps in a new distribution
        array.  On an epoch miss the cached masses are advanced by
        replaying the placement journal -- O(moved) per migration --
        falling back to the full O(pages) reduction when the journal was
        truncated, the distribution changed, or enough deltas accumulated
        to warrant a drift-bounding resync.
        """
        pages = process.pages
        buffers = self._buffers_for(process)
        if self.fast_path and buffers.mass_probs is probs:
            if buffers.mass_epoch == pages.epoch:
                return buffers.tier_mass
            moves = (
                pages.moves_since(buffers.mass_epoch)
                if buffers.mass_resync > 0
                else None
            )
            if moves is not None and len(moves) <= buffers.mass_resync:
                mass = buffers.tier_mass
                for _epoch, vpns, old_tiers, new_tier in moves:
                    if vpns.size:
                        moved = probs[vpns]
                        mass -= np.bincount(
                            old_tiers, weights=moved, minlength=mass.size
                        )
                        mass[new_tier] += float(moved.sum())
                # Replay rounding can drift a zero-mass tier a few ulps
                # negative, which the demand fold then feeds to the
                # contention model as negative demand.  True mass is
                # non-negative, so the clamp only removes drift.
                np.maximum(mass, 0.0, out=mass)
                buffers.mass_resync -= len(moves)
                buffers.mass_epoch = pages.epoch
                return mass
        tier_mass = np.bincount(
            pages.tier.astype(np.int64),
            weights=probs,
            minlength=self.kernel.machine.n_tiers,
        )
        buffers.mass_probs = probs
        buffers.mass_epoch = pages.epoch
        buffers.tier_mass = tier_mass
        buffers.mass_resync = self.MASS_RESYNC_MOVES
        return tier_mass

    def run_quantum(
        self, process: SimProcess, start_ns: int, quantum_ns: int
    ) -> np.ndarray:
        """Execute one process for one quantum; returns per-tier bytes of
        demand it generated."""
        machine = self.kernel.machine
        if process.finished:
            return self._zero_demand

        workload = process.workload
        workload.advance(start_ns)
        probs = workload.access_distribution()
        pages = process.pages
        write_fraction = workload.write_fraction
        multipliers = self._multipliers
        buffers = self._buffers_for(process)

        # Price the access mix against current placement + contention.
        # Every page on a tier shares the tier's latency, so the O(pages)
        # dot product ``probs @ per_page_latency`` reduces to an O(tiers)
        # product against the per-tier probability mass.
        pricing_mass = self._tier_mass(process, probs)
        if self.fast_path:
            # Scalar arithmetic over the O(tiers) per-quantum latency
            # lists: at 2-3 tiers, numpy's per-call dispatch costs more
            # than the work itself.
            read_lats = self._read_lat_list
            write_lats = self._write_lat_list
            masses = pricing_mass.tolist()
            read_fraction = 1.0 - write_fraction
            mean_latency = 0.0
            total_mass = 0.0
            for tier_id in range(self._n_tiers):
                mass = masses[tier_id]
                total_mass += mass
                mean_latency += mass * (
                    read_fraction * read_lats[tier_id]
                    + write_fraction * write_lats[tier_id]
                )
        else:
            # Reference path: rebuild the per-page latency vector from
            # scratch, exactly as the pre-optimization engine did.
            tier_idx = pages.tier
            per_page_latency = (
                (1.0 - write_fraction) * machine.read_latency_ns[tier_idx]
                + write_fraction * machine.write_latency_ns[tier_idx]
            ) * multipliers[tier_idx]
            mean_latency = float(probs @ per_page_latency)
            total_mass = float(pricing_mass.sum())

        kernel_used = process.drain_pending_kernel(quantum_ns)
        budget = quantum_ns - kernel_used
        per_access_cost = mean_latency + workload.delay_ns_per_access
        # A zero-page process prices to zero cost (and may run with zero
        # compute delay): it simply completes no accesses.  A zero-*mass*
        # distribution (an idle trace phase) likewise completes none --
        # without the gate its compute delay alone would price accesses
        # that touch no pages and inflate throughput.
        if per_access_cost > 0.0 and total_mass > 0.0:
            n_accesses = max(budget, 0.0) / per_access_cost
        else:
            n_accesses = 0.0

        # Hint faults on protected pages touched this quantum.  The
        # maintained protected-page counter makes the common no-scan case
        # free instead of an O(pages) flatnonzero.
        n_faults = 0
        if n_accesses > 0:
            if not self.fast_path:
                # Reference path: the original per-page Bernoulli pass
                # over the full protected snapshot.
                protected = pages.protected_pages()
                if protected.size:
                    lam = n_accesses * probs[protected]
                    touched = process.rng.random(
                        protected.size
                    ) < -np.expm1(-lam)
                    touched_vpns = protected[touched]
                    if touched_vpns.size:
                        batch = take_hint_faults(
                            process,
                            touched_vpns,
                            start_ns,
                            quantum_ns,
                            process.rng,
                            rates_per_ns=lam[touched] / quantum_ns,
                            # The surviving protected set is already
                            # known here -- hand it down so the unprotect
                            # skips its membership search.
                            cache_remainder=protected[~touched],
                        )
                        n_faults = batch.n_faults
                        self.kernel.deliver_faults(process, batch)
            elif pages.n_protected > 0:
                n_faults = self._sample_hint_faults(
                    process, pages, probs, buffers, n_accesses,
                    start_ns, quantum_ns,
                )

        # Accounting runs against the *post-fault* placement: fault-path
        # promotions (Linux-NB, TPP, AutoTiering) bumped the placement
        # epoch, so this re-lookup recomputes the mass only when pages
        # actually moved this quantum.
        if (
            self.fast_path
            and buffers.mass_epoch == pages.epoch
            and buffers.mass_probs is probs
        ):
            tier_mass = pricing_mass
        else:
            tier_mass = self._tier_mass(process, probs)

        # Ground-truth accounting.  The fast path records an O(1) ledger
        # entry; the O(pages) materialisation happens only when a consumer
        # (aging, tracing, reporting) reads the counters.  The reference
        # path keeps the eager per-quantum accumulation.
        if self.fast_path:
            pages.defer_accesses(probs, n_accesses)
        else:
            count_buf = buffers.count_buf
            if count_buf is None:
                count_buf = buffers.count_buf = np.empty(
                    pages.n_pages, dtype=np.float64
                )
            np.multiply(probs, n_accesses, out=count_buf)
            pages.access_count += count_buf
            pages.last_window_count += count_buf

        fast_accesses = n_accesses * float(tier_mass[FAST_TIER])
        process.record_accesses(
            n_total=n_accesses,
            n_fast=fast_accesses,
            user_ns=n_accesses * mean_latency,
            stall_ns=n_accesses * workload.delay_ns_per_access,
        )

        self._record_latency(
            process,
            n_accesses,
            tier_mass,
            write_fraction,
            n_faults,
        )

        policy = self.kernel.policy
        if policy is not None and hasattr(policy, "on_quantum"):
            profiler = self.kernel.profiler
            if profiler is not None:
                profiler.push("policy")
            try:
                policy.on_quantum(
                    process, probs, n_accesses, start_ns, quantum_ns
                )
            finally:
                if profiler is not None:
                    profiler.pop()

        if (
            process.target_accesses is not None
            and process.stats.accesses >= process.target_accesses
        ):
            process.finished = True

        # Steady-state witness for quantum fusion: what this quantum ran
        # against and the state it left behind (after faults and any
        # policy reaction).  Kernel events firing between quanta bump the
        # epochs and break the match, as does a distribution swap.
        buffers.fusion_probs = probs
        buffers.fusion_epoch = pages.epoch
        buffers.fusion_protect_epoch = pages.protect_epoch

        # Bandwidth demand, write-weighted per tier (Optane writes eat a
        # multiple of their byte count from the bandwidth budget).  The
        # returned buffer is consumed (accumulated) by ``run`` before the
        # next ``run_quantum`` call, so one O(tiers) scratch serves all.
        write_weight = (
            1.0 - write_fraction
        ) + write_fraction * machine.write_bw_multiplier
        np.multiply(
            tier_mass,
            n_accesses * CACHE_LINE_BYTES * write_weight,
            out=self._demand_out,
        )
        return self._demand_out

    # ------------------------------------------------------------------
    #: per-quantum touch probability below which a protected page is
    #: sampled through the aggregated dormant draw instead of its own
    #: Bernoulli draw (see ``_sample_hint_faults``)
    FAULT_DORMANT_MAX_TOUCH: float = 0.02

    def _rebuild_fault_cache(
        self,
        buffers: _ProcessBuffers,
        probs: np.ndarray,
        protected: np.ndarray,
        n_accesses: float,
    ) -> None:
        """Split the protected snapshot into active / dormant candidates.

        Costs O(protected) and runs only when the protected set or the
        access distribution changed (both are replaced, never mutated, so
        an identity check detects staleness).
        """
        p_sub = probs[protected]
        cut = self.FAULT_DORMANT_MAX_TOUCH / max(n_accesses, 1.0)
        active = p_sub >= cut
        buffers.prot_p = p_sub
        buffers.active_pos = active_pos = np.flatnonzero(active)
        buffers.active_p = p_sub[active_pos]
        np.logical_not(active, out=active)
        active &= p_sub > 0.0  # zero-probability pages can never fault
        buffers.dormant_pos = dormant_pos = np.flatnonzero(active)
        cdf = np.cumsum(p_sub[dormant_pos])
        buffers.dormant_cdf = cdf
        buffers.dormant_mass = float(cdf[-1]) if cdf.size else 0.0
        buffers.touched_mask = np.empty(protected.size, dtype=bool)
        buffers.fault_probs = probs
        buffers.fault_prot = protected

    def _sample_hint_faults(
        self,
        process: SimProcess,
        pages,
        probs: np.ndarray,
        buffers: _ProcessBuffers,
        n_accesses: float,
        start_ns: int,
        quantum_ns: int,
    ) -> int:
        """Resolve this quantum's hint faults in O(active + touched).

        Distributionally identical to the reference per-page pass: each
        protected page is touched with probability ``1 - exp(-n * p)``,
        independently.  Hot ("active") candidates get their own Bernoulli
        draw; the dormant tail is sampled by drawing the total number of
        dormant accesses ``K ~ Poisson(n * dormant_mass)`` and placing
        them on pages proportionally to ``p`` -- by Poisson thinning the
        two formulations induce exactly the same touched-set law.  At
        steady state (thousands of cold protected pages, hardly any
        touched) the quantum costs a few scalar draws instead of an
        O(protected) vector pass.
        """
        protected = pages.protected_pages()
        if not protected.size:
            return 0
        if (
            buffers.fault_probs is not probs
            or buffers.fault_prot is not protected
        ):
            self._rebuild_fault_cache(
                buffers, probs, protected, n_accesses
            )
        rng = process.rng
        mask = None
        active_p = buffers.active_p
        if active_p.size:
            lam = n_accesses * active_p
            touched = rng.random(active_p.size) < -np.expm1(-lam)
            if touched.any():
                mask = buffers.touched_mask
                mask[:] = False
                mask[buffers.active_pos[touched]] = True
        if buffers.dormant_mass > 0.0:
            k = rng.poisson(n_accesses * buffers.dormant_mass)
            if k:
                cdf = buffers.dormant_cdf
                hits = np.searchsorted(
                    cdf,
                    rng.random(int(k)) * buffers.dormant_mass,
                    side="right",
                )
                # A draw can round onto the upper cdf edge; clamp it
                # back into range (measure-zero event, any bucket works).
                np.minimum(hits, cdf.size - 1, out=hits)
                if mask is None:
                    mask = buffers.touched_mask
                    mask[:] = False
                mask[buffers.dormant_pos[hits]] = True
        if mask is None:
            return 0
        touched_vpns = protected[mask]
        rates = n_accesses * buffers.prot_p[mask] / quantum_ns
        np.logical_not(mask, out=mask)
        batch = take_hint_faults(
            process,
            touched_vpns,
            start_ns,
            quantum_ns,
            rng,
            rates_per_ns=rates,
            cache_remainder=protected[mask],
        )
        self.kernel.deliver_faults(process, batch)
        return batch.n_faults

    # ------------------------------------------------------------------
    def _record_latency(
        self,
        process: SimProcess,
        n_accesses: float,
        tier_mass: np.ndarray,
        write_fraction: float,
        n_faults: int,
    ) -> None:
        pending = self._lat_pending.get(process.pid)
        if pending is None:
            pending = self._lat_pending.setdefault(process.pid, {})
        remaining_faults = float(n_faults)
        # Assemble the quantum's latency classes (at most 2 per tier plus
        # one fault class).  The classes are a handful of scalars keyed
        # by the per-quantum integer keys ``run`` precomputed, so this is
        # a few plain dict accumulations; the pending classes fold into
        # the public mixtures at the end of the run (``_flush_latency``).
        read_keys = self._read_keys
        write_keys = self._write_keys
        masses = tier_mass.tolist()
        last_tier = self._n_tiers - 1
        get = pending.get
        for tier_id in range(self._n_tiers):
            mass = masses[tier_id] * n_accesses
            if mass <= 0:
                continue
            reads = mass * (1.0 - write_fraction)
            writes = mass * write_fraction
            # Faulted accesses pay the trap cost on top; attribute them to
            # the slower tiers first (that is where scans concentrate).
            if tier_id == last_tier and remaining_faults > 0:
                faulted = min(reads, remaining_faults)
                fault_key = self._fault_key
                pending[fault_key] = get(fault_key, 0.0) + faulted
                reads -= faulted
                remaining_faults -= faulted
            read_key = read_keys[tier_id]
            write_key = write_keys[tier_id]
            pending[read_key] = get(read_key, 0.0) + reads
            pending[write_key] = get(write_key, 0.0) + writes

    def _flush_latency(self) -> None:
        """Fold pending latency classes into the public mixtures.

        Runs at the end of every ``run`` call; until then the per-quantum
        hot path only touches plain per-process dicts.  Callers driving
        ``run_quantum`` directly (tests, custom harnesses) can invoke
        this to materialise ``latency`` / ``latency_by_pid`` on demand.
        In arena mode the per-key segment vectors scatter here too.
        """
        if self._arena is not None:
            self._arena.flush_latency_into(self)
        pending = self._lat_pending
        if not pending:
            return
        global_mix = self.latency
        for pid, classes in pending.items():
            pid_mix = self.latency_by_pid.get(pid)
            if pid_mix is None:
                pid_mix = self.latency_by_pid.setdefault(
                    pid, LatencyMixture()
                )
            for key, count in classes.items():
                global_mix.add_keyed(key, count)
                pid_mix.add_keyed(key, count)
        pending.clear()
