"""The batched quantum execution engine.

Every simulated process advances through fixed wall-clock quanta (default
50 ms).  Within a quantum the engine:

1. asks the workload for its access distribution ``p`` and prices the mix
   against the current page placement (vectorised dot product),
2. deducts queued kernel time (scan work, fault handling, migrations
   charged by the previous quantum) from the quantum budget,
3. computes the number of completed accesses
   ``n = budget / (mean latency + delay)``,
4. resolves hint faults: each protected page is touched this quantum with
   probability ``1 - exp(-n * p_i)`` (the exact Poisson-traffic closed
   form), faulting pages get uniformly distributed fault times and their
   CIT values, and the batch is delivered to the tiering policy,
5. books ground-truth access counts, FMAR numerators, and the latency
   mixture.

Between quanta the kernel timer queue fires scan events, reclaim passes,
LRU aging, and policy daemons.  This design makes a run with hundreds of
thousands of pages cost O(pages) numpy work per quantum while preserving
the per-page fault/CIT statistics of an access-by-access simulation.

Hot-path structure: the expensive O(pages) pricing work -- per-page
latency gathers and the probability-mass-per-tier reduction -- collapses
to O(tiers) once the mass each tier serves is known, and that mass only
changes when the placement changes (a migration bumps
``PageState.epoch``) or the workload rotates its distribution (phase
changes swap in a *new* probability array; distributions are treated as
immutable, per the :mod:`repro.workloads.base` contract).  The engine
therefore caches per-process tier masses keyed on
``(id(probs), pages.epoch)``, computes the contention-multiplier vector
once per quantum instead of per process, and reuses preallocated
per-process buffers for the ground-truth accounting.  Pass
``fast_path=False`` to force the original per-page recomputation every
quantum (used by ``scripts/bench_engine.py`` to measure the win).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.analysis.latency import LatencyMixture
from repro.kernel.kernel import Kernel
from repro.mem.machine import CACHE_LINE_BYTES
from repro.mem.tier import FAST_TIER
from repro.sim.timeunits import MILLISECOND
from repro.vm.fault import take_hint_faults
from repro.vm.process import SimProcess

Observer = Callable[["QuantumEngine", int], None]


class _ProcessBuffers:
    """Preallocated per-process scratch state for the quantum hot path."""

    __slots__ = ("count_buf", "mass_probs", "mass_epoch", "tier_mass")

    def __init__(self, n_pages: int) -> None:
        self.count_buf = np.empty(n_pages, dtype=np.float64)
        #: cache key for ``tier_mass``: the workload's probability array
        #: (held by reference, so a freed array's address cannot alias a
        #: new distribution) plus the placement epoch at computation time
        self.mass_probs: Optional[np.ndarray] = None
        self.mass_epoch: int = -1
        self.tier_mass: Optional[np.ndarray] = None


class QuantumEngine:
    """Advances processes and kernel daemons through simulated time."""

    def __init__(
        self,
        kernel: Kernel,
        quantum_ns: int = 50 * MILLISECOND,
        fast_path: bool = True,
    ) -> None:
        if quantum_ns <= 0:
            raise ValueError("quantum must be positive")
        self.kernel = kernel
        self.quantum_ns = int(quantum_ns)
        self.fast_path = bool(fast_path)
        self.latency = LatencyMixture()
        self.latency_by_pid: Dict[int, LatencyMixture] = {}
        self._prev_demand_bytes_per_sec = np.zeros(kernel.machine.n_tiers)
        self._multipliers = np.ones(kernel.machine.n_tiers)
        self._buffers: Dict[int, _ProcessBuffers] = {}
        # Small per-quantum scratch vectors (O(tiers)).
        n_tiers = kernel.machine.n_tiers
        self._per_tier_latency = np.empty(n_tiers, dtype=np.float64)
        self.quanta_run = 0

    # ------------------------------------------------------------------
    def run(
        self,
        duration_ns: int,
        observer: Optional[Observer] = None,
        observe_every_ns: Optional[int] = None,
        stop_when_finished: bool = False,
    ) -> int:
        """Run for ``duration_ns`` of simulated time.

        ``observer(engine, now)`` fires every ``observe_every_ns`` (default:
        every quantum).  With ``stop_when_finished`` the run ends as soon as
        every process reached its access target (fixed-work experiments like
        Graph500 execution time).  Returns the simulated end time.
        """
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        self.kernel.start()
        clock = self.kernel.clock
        profiler = self.kernel.profiler
        if profiler is not None:
            profiler.push("engine")
        try:
            end_ns = clock.now + duration_ns
            next_observe = clock.now
            while clock.now < end_ns:
                start = clock.now
                quantum = min(self.quantum_ns, end_ns - start)
                # All processes price this quantum against the same
                # previous-quantum demand: compute the contention vector
                # once here instead of per process.
                self._multipliers = (
                    self.kernel.machine.contention_multipliers(
                        self._prev_demand_bytes_per_sec
                    )
                )
                demand = np.zeros(self.kernel.machine.n_tiers)
                for process in self.kernel.processes:
                    demand += self.run_quantum(process, start, quantum)
                # Fold migration traffic into the demand picture.
                for tier in self.kernel.machine.tiers:
                    demand[tier.tier_id] += tier.consume_migration_bytes()
                self._prev_demand_bytes_per_sec = demand / (quantum / 1e9)
                self.kernel.advance_to(start + quantum)
                self.quanta_run += 1
                obs = self.kernel.obs
                if obs is not None:
                    obs.inc("engine.quanta")
                    gauges = self.kernel.machine.obs_gauges(
                        self._multipliers
                    )
                    for name, value in gauges.items():
                        obs.set_gauge(name, value)
                    obs.emit(
                        "engine.quantum",
                        clock.now,
                        quantum_ns=quantum,
                        fast_free_pages=gauges["machine.fast_free_pages"],
                        slow_free_pages=gauges["machine.slow_free_pages"],
                        fast_contention=gauges["machine.fast_contention"],
                        slow_contention=gauges["machine.slow_contention"],
                    )
                if observer is not None and clock.now >= next_observe:
                    observer(self, clock.now)
                    next_observe = clock.now + (observe_every_ns or 0)
                if stop_when_finished and all(
                    p.finished for p in self.kernel.processes
                ):
                    break
            return clock.now
        finally:
            if profiler is not None:
                profiler.pop()

    # ------------------------------------------------------------------
    def _tier_mass(
        self, process: SimProcess, probs: np.ndarray
    ) -> np.ndarray:
        """Probability mass served by each tier, cached across quanta.

        ``tier_mass[t] = sum(probs[i] for pages i resident on tier t)``.
        The reduction is O(pages); the result only changes when a
        migration moves pages (``pages.epoch``) or the workload swaps in
        a new distribution array, so it is reused until either happens.
        """
        pages = process.pages
        buffers = self._buffers.get(process.pid)
        if buffers is None:
            buffers = _ProcessBuffers(pages.n_pages)
            self._buffers[process.pid] = buffers
        if (
            self.fast_path
            and buffers.mass_probs is probs
            and buffers.mass_epoch == pages.epoch
        ):
            return buffers.tier_mass
        tier_mass = np.bincount(
            pages.tier.astype(np.int64),
            weights=probs,
            minlength=self.kernel.machine.n_tiers,
        )
        buffers.mass_probs = probs
        buffers.mass_epoch = pages.epoch
        buffers.tier_mass = tier_mass
        return tier_mass

    def run_quantum(
        self, process: SimProcess, start_ns: int, quantum_ns: int
    ) -> np.ndarray:
        """Execute one process for one quantum; returns per-tier bytes of
        demand it generated."""
        machine = self.kernel.machine
        n_tiers = machine.n_tiers
        if process.finished:
            return np.zeros(n_tiers)

        workload = process.workload
        workload.advance(start_ns)
        probs = workload.access_distribution()
        pages = process.pages
        write_fraction = workload.write_fraction
        multipliers = self._multipliers

        # Price the access mix against current placement + contention.
        # Every page on a tier shares the tier's latency, so the O(pages)
        # dot product ``probs @ per_page_latency`` reduces to an O(tiers)
        # product against the per-tier probability mass.
        pricing_mass = self._tier_mass(process, probs)
        if self.fast_path:
            per_tier = self._per_tier_latency
            np.multiply(
                machine.read_latency_ns, 1.0 - write_fraction, out=per_tier
            )
            per_tier += write_fraction * machine.write_latency_ns
            per_tier *= multipliers
            mean_latency = float(pricing_mass @ per_tier)
        else:
            # Reference path: rebuild the per-page latency vector from
            # scratch, exactly as the pre-optimization engine did.
            tier_idx = pages.tier
            per_page_latency = (
                (1.0 - write_fraction) * machine.read_latency_ns[tier_idx]
                + write_fraction * machine.write_latency_ns[tier_idx]
            ) * multipliers[tier_idx]
            mean_latency = float(probs @ per_page_latency)

        kernel_used = process.drain_pending_kernel(quantum_ns)
        budget = quantum_ns - kernel_used
        per_access_cost = mean_latency + workload.delay_ns_per_access
        n_accesses = max(budget, 0.0) / per_access_cost

        # Hint faults on protected pages touched this quantum.  The
        # maintained protected-page counter makes the common no-scan case
        # free instead of an O(pages) flatnonzero.
        n_faults = 0
        if n_accesses > 0 and (
            pages.n_protected > 0 or not self.fast_path
        ):
            protected = pages.protected_pages()
            if protected.size:
                lam = n_accesses * probs[protected]
                touched = process.rng.random(protected.size) < -np.expm1(
                    -lam
                )
                touched_vpns = protected[touched]
                if touched_vpns.size:
                    batch = take_hint_faults(
                        process,
                        touched_vpns,
                        start_ns,
                        quantum_ns,
                        process.rng,
                        rates_per_ns=lam[touched] / quantum_ns,
                    )
                    n_faults = batch.n_faults
                    self.kernel.deliver_faults(process, batch)

        # Accounting runs against the *post-fault* placement: fault-path
        # promotions (Linux-NB, TPP, AutoTiering) bumped the placement
        # epoch, so this re-lookup recomputes the mass only when pages
        # actually moved this quantum.
        tier_mass = self._tier_mass(process, probs)

        # Ground-truth accounting, through the preallocated buffer.
        count_buf = self._buffers[process.pid].count_buf
        np.multiply(probs, n_accesses, out=count_buf)
        pages.access_count += count_buf
        pages.last_window_count += count_buf

        fast_accesses = n_accesses * float(tier_mass[FAST_TIER])
        process.record_accesses(
            n_total=n_accesses,
            n_fast=fast_accesses,
            user_ns=n_accesses * mean_latency,
            stall_ns=n_accesses * workload.delay_ns_per_access,
        )

        self._record_latency(
            process,
            n_accesses,
            tier_mass,
            multipliers,
            write_fraction,
            n_faults,
        )

        policy = self.kernel.policy
        if policy is not None and hasattr(policy, "on_quantum"):
            profiler = self.kernel.profiler
            if profiler is not None:
                profiler.push("policy")
            try:
                policy.on_quantum(
                    process, probs, n_accesses, start_ns, quantum_ns
                )
            finally:
                if profiler is not None:
                    profiler.pop()

        if (
            process.target_accesses is not None
            and process.stats.accesses >= process.target_accesses
        ):
            process.finished = True

        # Bandwidth demand, write-weighted per tier (Optane writes eat a
        # multiple of their byte count from the bandwidth budget).
        write_weight = (
            1.0 - write_fraction
        ) + write_fraction * machine.write_bw_multiplier
        return tier_mass * n_accesses * CACHE_LINE_BYTES * write_weight

    # ------------------------------------------------------------------
    def _record_latency(
        self,
        process: SimProcess,
        n_accesses: float,
        tier_mass: np.ndarray,
        multipliers: np.ndarray,
        write_fraction: float,
        n_faults: int,
    ) -> None:
        machine = self.kernel.machine
        pid_mix = self.latency_by_pid.get(process.pid)
        if pid_mix is None:
            pid_mix = self.latency_by_pid.setdefault(
                process.pid, LatencyMixture()
            )
        remaining_faults = float(n_faults)
        # Assemble the quantum's latency classes (at most 2 per tier plus
        # one fault class) and deliver them in one bulk add per mixture.
        class_lats: list = []
        class_counts: list = []
        for tier_id in range(machine.n_tiers):
            mass = float(tier_mass[tier_id]) * n_accesses
            if mass <= 0:
                continue
            read_lat = machine.read_latency_ns[tier_id] * multipliers[tier_id]
            write_lat = (
                machine.write_latency_ns[tier_id] * multipliers[tier_id]
            )
            reads = mass * (1.0 - write_fraction)
            writes = mass * write_fraction
            # Faulted accesses pay the trap cost on top; attribute them to
            # the slower tiers first (that is where scans concentrate).
            if tier_id == machine.n_tiers - 1 and remaining_faults > 0:
                faulted = min(reads, remaining_faults)
                fault_lat = read_lat + machine.spec.effective_fault_cost_ns
                class_lats.append(fault_lat)
                class_counts.append(faulted)
                reads -= faulted
                remaining_faults -= faulted
            class_lats.append(read_lat)
            class_counts.append(reads)
            class_lats.append(write_lat)
            class_counts.append(writes)
        if not class_lats:
            return
        lats = np.array(class_lats, dtype=np.float64)
        counts = np.array(class_counts, dtype=np.float64)
        self.latency.add_many(lats, counts)
        pid_mix.add_many(lats, counts)
