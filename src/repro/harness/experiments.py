"""Canonical experiment configurations.

The paper's testbed (Section 5): Xeon Gold 6348, 64 GB DRAM + 256 GB Optane
PM (25% fast tier), 60 s scan period, minute-to-second-scale page access
frequencies.  The simulator runs a proportionally scaled analogue:

====================  ==================  ==========================
quantity              paper               simulation (standard)
====================  ==================  ==========================
pages                 ~10^7-10^8          4 K fast + 32 K slow sim
                                          pages (x64 page scale)
fast : total          25% (of machine)    matched via working set
scan period           60 s                5 s
per-page frequency    0.3-10 /s           30-10000 /s (x~100-1000)
CIT unit              1 ms                20 us
kernel event costs    1x                  x64 (page scale)
====================  ==================  ==========================

All ratios the results depend on -- scan period : access period, fast-tier
share, overhead : runtime, huge-page coverage -- are preserved; see
DESIGN.md for the substitution argument.  Every benchmark builds its
machine, policies, and workloads through this module so the scaling story
lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.dcsc import DcscConfig
from repro.harness.runner import (
    RunConfig,
    RunResult,
    RunSummary,
    run_experiment,
)
from repro.policies.registry import make_policy
from repro.sim.rng import RngStreams
from repro.sim.timeunits import MICROSECOND, MILLISECOND, SECOND
from repro.vm.process import SimProcess
from repro.workloads.graph500 import Graph500Workload
from repro.workloads.kvstore import KVStoreWorkload
from repro.workloads.multitenant import make_multitenant_processes
from repro.workloads.pmbench import PmbenchWorkload

#: the six systems of the main evaluation, in the paper's plot order
EVALUATED_POLICIES = (
    "linux-nb",
    "autotiering",
    "multiclock",
    "tpp",
    "memtis",
    "chrono",
)

#: every distinct tiering system the tournament ranks (the Chrono
#: ablation variants are deliberately excluded -- they answer a
#: different question than the cross-system leaderboard)
TOURNAMENT_POLICIES = (
    "linux-nb",
    "autotiering",
    "multiclock",
    "tpp",
    "memtis",
    "telescope",
    "flexmem",
    "nomad",
    "tierbpf",
    "arms",
    "jenga",
    "chrono",
)


@dataclass
class StandardSetup:
    """The calibrated scaled-down testbed parameters."""

    fast_pages: int = 4_096
    slow_pages: int = 32_768
    page_scale: int = 64
    scan_period_ns: int = 5 * SECOND
    scan_step_pages: int = 512
    aging_period_ns: int = SECOND
    quantum_ns: int = 50 * MILLISECOND
    duration_ns: int = 120 * SECOND
    tune_period_ns: int = 2 * SECOND
    cit_unit_ns: int = 20 * MICROSECOND
    dcsc_probe_period_ns: int = SECOND // 2
    dcsc_victim_fraction: float = 0.01
    dcsc_probe_timeout_ns: int = 4 * SECOND
    tpp_hint_latency_ns: int = 2 * MILLISECOND
    pebs_rate_per_sec: float = 512.0
    memtis_classify_ns: int = 2 * SECOND
    hp_pages: int = 8  # a real 2 MB region = 512 / page_scale sim pages
    seed: int = 0

    def run_config(self, **overrides) -> RunConfig:
        """A :class:`RunConfig` for this setup."""
        values = dict(
            fast_pages=self.fast_pages,
            slow_pages=self.slow_pages,
            duration_ns=self.duration_ns,
            quantum_ns=self.quantum_ns,
            aging_period_ns=self.aging_period_ns,
            page_scale=self.page_scale,
            seed=self.seed,
        )
        values.update(overrides)
        return RunConfig(**values)

    def dcsc_config(self, **overrides) -> DcscConfig:
        values = dict(
            cit_unit_ns=self.cit_unit_ns,
            probe_period_ns=self.dcsc_probe_period_ns,
            victim_fraction=self.dcsc_victim_fraction,
            probe_timeout_ns=self.dcsc_probe_timeout_ns,
            requantize_ns=self.quantum_ns,
        )
        values.update(overrides)
        return DcscConfig(**values)

    def build_policy(self, name: str, **overrides):
        """Build a policy with every knob scaled to this setup."""
        scan = dict(
            scan_period_ns=self.scan_period_ns,
            scan_step_pages=self.scan_step_pages,
        )
        if name.startswith("chrono"):
            kwargs = dict(
                **scan,
                # Parameters retune once per Ticking-scan period, as in
                # the paper (Section 3.2.1).
                tune_period_ns=self.scan_period_ns,
                dcsc_config=self.dcsc_config(),
                hp_pages=self.hp_pages,
            )
        elif name == "tpp":
            kwargs = dict(
                **scan, hint_fault_latency_ns=self.tpp_hint_latency_ns
            )
        elif name in ("linux-nb", "autotiering"):
            kwargs = dict(**scan)
        elif name == "multiclock":
            kwargs = {}
        elif name == "memtis":
            kwargs = dict(
                sample_rate_per_sec=self.pebs_rate_per_sec,
                classify_period_ns=self.memtis_classify_ns,
                split_budget_per_pass=1,
                split_skew_threshold=0.75,
                hp_pages=self.hp_pages,
            )
        elif name == "flexmem":
            kwargs = dict(
                **scan,
                hint_fault_latency_ns=self.tpp_hint_latency_ns,
                sample_rate_per_sec=self.pebs_rate_per_sec,
                classify_period_ns=self.memtis_classify_ns,
                split_budget_per_pass=1,
                split_skew_threshold=0.75,
                hp_pages=self.hp_pages,
            )
        elif name == "telescope":
            # The paper's fixed 200 ms window, scaled with the 12x scan
            # period compression.
            kwargs = dict(window_ns=50 * MILLISECOND, region_fanout=8)
        elif name == "nomad":
            kwargs = dict(
                **scan,
                # Reconcile a few times per tune period so shadow state
                # tracks the compressed migration cadence.
                reconcile_period_ns=self.tune_period_ns // 4,
            )
        elif name == "tierbpf":
            kwargs = dict(
                **scan,
                # Candidates must pay back within one scan round at the
                # compressed time scale.
                payback_horizon_ns=self.scan_period_ns,
            )
        elif name == "arms":
            kwargs = dict(
                **scan,
                initial_threshold_ns=self.tpp_hint_latency_ns,
                tune_period_ns=self.tune_period_ns,
            )
        elif name == "jenga":
            kwargs = dict(
                **scan,
                refractory_ns=2 * self.aging_period_ns,
                demote_period_ns=self.aging_period_ns,
            )
        else:
            kwargs = {}
        kwargs.update(overrides)
        return make_policy(name, **kwargs)


def pmbench_processes(
    setup: StandardSetup,
    n_procs: int = 8,
    pages_per_proc: int = 4_096,
    read_write_ratio: float = 0.95,
    pattern: str = "normal",
    stride: int = 2,
    sigma_fraction: float = 0.07,
    background_fraction: float = 0.10,
    delay_units: int = 0,
) -> List[SimProcess]:
    """The Section 5.1 pmbench fleet (scaled)."""
    streams = RngStreams(setup.seed)
    processes = []
    for pid in range(n_procs):
        workload = PmbenchWorkload(
            n_pages=pages_per_proc,
            pattern=pattern,
            stride=stride,
            read_write_ratio=read_write_ratio,
            sigma_fraction=sigma_fraction,
            background_fraction=background_fraction,
            delay_units=delay_units,
        )
        processes.append(
            SimProcess(
                pid=pid,
                workload=workload,
                rng=streams.spawn(f"pmbench-{pid}").get("access"),
                name=f"pmbench-{pid}",
            )
        )
    return processes


def graph500_processes(
    setup: StandardSetup,
    n_procs: int = 8,
    pages_per_proc: int = 3_072,
    write_fraction: float = 0.10,
) -> List[SimProcess]:
    """The Section 5.2 Graph500 fleet (scaled).

    Eight processes mirror the paper's multi-process Graph500 runs and
    keep the per-CPU hint-fault burden at the Figure 6 level.
    """
    streams = RngStreams(setup.seed)
    processes = []
    for pid in range(n_procs):
        workload = Graph500Workload(
            n_pages=pages_per_proc,
            write_fraction=write_fraction,
            # BFS levels outlast scan rounds at the paper's scale; keep
            # the same relation here (phase >= 2 scan periods).
            phase_len_ns=2 * setup.scan_period_ns,
            seed=setup.seed + pid,
        )
        processes.append(
            SimProcess(
                pid=pid,
                workload=workload,
                rng=streams.spawn(f"graph-{pid}").get("access"),
                name=f"graph500-{pid}",
            )
        )
    return processes


def kvstore_processes(
    setup: StandardSetup,
    flavor: str = "memcached",
    n_procs: int = 8,
    pages_per_proc: int = 3_072,
    set_get_ratio: float = 0.1,
) -> List[SimProcess]:
    """The Section 5.3 in-memory-database fleet (scaled).

    Eight worker processes model the server's worker threads: the paper's
    stores run many threads, so per-CPU fault-handling burden stays
    proportional to the Figure 6 setup.
    """
    streams = RngStreams(setup.seed)
    processes = []
    for pid in range(n_procs):
        workload = KVStoreWorkload(
            n_pages=pages_per_proc,
            set_get_ratio=set_get_ratio,
            flavor=flavor,
        )
        processes.append(
            SimProcess(
                pid=pid,
                workload=workload,
                rng=streams.spawn(f"{flavor}-{pid}").get("access"),
                name=f"{flavor}-{pid}",
            )
        )
    return processes


def shifting_hotspot_processes(
    setup: StandardSetup,
    n_procs: int = 8,
    pages_per_proc: int = 4_096,
    phase_len_ns: Optional[int] = None,
) -> List[SimProcess]:
    """Phase-changing hotspot fleet (the adaptation experiments)."""
    from repro.workloads.dynamic import shifting_hotspot

    streams = RngStreams(setup.seed)
    return [
        SimProcess(
            pid=pid,
            workload=shifting_hotspot(
                n_pages=pages_per_proc,
                phase_len_ns=(
                    phase_len_ns
                    if phase_len_ns is not None
                    else setup.duration_ns // 2
                ),
            ),
            rng=streams.spawn(f"shift-{pid}").get("access"),
            name=f"shift-{pid}",
        )
        for pid in range(n_procs)
    ]


def multitenant_processes(
    setup: StandardSetup,
    n_tenants: int = 50,
    pages_per_tenant: int = 1024,
    delay_step_units: int = 1,
    n_distinct: int = 1,
    read_write_ratio: float = 0.95,
    base_delay_units: int = 0,
) -> List[SimProcess]:
    """The Section 5.1.3 50-cgroup tenant fleet as a sweepable family.

    Tenant ``i`` stalls ``base_delay_units + i * delay_step_units``
    pmbench delay units per access, so hotness falls off linearly
    across the fleet from a common base.  The cgroup names the
    underlying helper pairs with each process are dropped here: the
    sweep layer registers processes without cgroup attribution, and
    callers that need the cgroup split (the Figure 9 reproduction) keep
    using :func:`repro.workloads.multitenant.make_multitenant_processes`
    directly.
    """
    pairs = make_multitenant_processes(
        n_tenants=n_tenants,
        pages_per_tenant=pages_per_tenant,
        delay_step_units=delay_step_units,
        read_write_ratio=read_write_ratio,
        seed=setup.seed,
        n_distinct=n_distinct,
        base_delay_units=base_delay_units,
    )
    return [process for process, _cgroup in pairs]


def traffic_processes(
    setup: StandardSetup,
    n_tenants: int = 64,
    n_users: int = 1_000_000,
    pages_per_tenant: int = 256,
    n_patterns: int = 8,
    zipf_s: float = 1.1,
    base_delay_units: int = 200,
    churn_fraction: float = 0.0,
    phase_shift_fraction: float = 0.0,
    **kwargs,
) -> List[SimProcess]:
    """The fleet-traffic-generator family (Zipf tenants, diurnal load).

    Thin adapter over
    :func:`repro.workloads.tracegen.make_traffic_processes` that feeds
    the setup's seed and run duration into the generator, so churn exit
    times and spawn lead-ins land inside the simulated window.  The
    default fleet (64 tenants x 256 pages) fits the standard machine,
    so trace-driven tournament and sweep cells work without sizing
    flags.
    """
    from repro.workloads.tracegen import make_traffic_processes

    return make_traffic_processes(
        n_tenants=n_tenants,
        n_users=n_users,
        pages_per_tenant=pages_per_tenant,
        n_patterns=n_patterns,
        zipf_s=zipf_s,
        base_delay_units=base_delay_units,
        churn_fraction=churn_fraction,
        phase_shift_fraction=phase_shift_fraction,
        duration_ns=setup.duration_ns,
        seed=setup.seed,
        **kwargs,
    )


#: named fleet builders the declarative sweep layer (and the CLI) can
#: reference; every builder takes ``(setup, **kwargs)`` and returns a
#: fresh process list
FLEET_BUILDERS = {
    "pmbench": pmbench_processes,
    "graph500": graph500_processes,
    "multitenant": multitenant_processes,
    "memcached": lambda setup, **kw: kvstore_processes(
        setup, flavor="memcached", **kw
    ),
    "redis": lambda setup, **kw: kvstore_processes(
        setup, flavor="redis", **kw
    ),
    "shifting-hotspot": shifting_hotspot_processes,
    "traffic": traffic_processes,
}


def fleet_names() -> List[str]:
    """The workload families the sweep layer knows how to build."""
    return sorted(FLEET_BUILDERS)


def build_fleet(
    setup: StandardSetup, workload: str, **kwargs
) -> List[SimProcess]:
    """Build a fresh process fleet for a named workload family."""
    try:
        builder = FLEET_BUILDERS[workload]
    except KeyError:
        raise ValueError(
            f"unknown workload {workload!r}; "
            f"known: {', '.join(fleet_names())}"
        ) from None
    return builder(setup, **kwargs)


def run_policy_comparison(
    setup: StandardSetup,
    process_factory,
    policies: Sequence[str] = EVALUATED_POLICIES,
    config_overrides: Optional[dict] = None,
    policy_overrides: Optional[Dict[str, dict]] = None,
) -> Dict[str, RunResult]:
    """Run every policy on identical (freshly built) process fleets.

    ``process_factory()`` must return a fresh process list per call --
    processes carry mutable page state and cannot be reused across runs.
    """
    results: Dict[str, RunResult] = {}
    for name in policies:
        overrides = (policy_overrides or {}).get(name, {})
        policy = setup.build_policy(name, **overrides)
        results[name] = run_experiment(
            process_factory(),
            policy,
            setup.run_config(**(config_overrides or {})),
        )
    return results


def policy_comparison_cells(
    workload: str,
    policies: Sequence[str] = EVALUATED_POLICIES,
    seed: int = 0,
    workload_kwargs: Optional[dict] = None,
    setup_kwargs: Optional[dict] = None,
    config_overrides: Optional[dict] = None,
    policy_overrides: Optional[Dict[str, dict]] = None,
):
    """Declarative cells for a policy comparison on one workload.

    The sweep-layer analogue of :func:`run_policy_comparison`: the cells
    can fan out over a worker pool and hit the result cache.
    """
    from repro.harness.sweep import SweepCell

    return [
        SweepCell(
            policy=name,
            workload=workload,
            seed=seed,
            policy_kwargs=(policy_overrides or {}).get(name, {}),
            workload_kwargs=dict(workload_kwargs or {}),
            setup_kwargs=dict(setup_kwargs or {}),
            config_overrides=dict(config_overrides or {}),
            label=name,
        )
        for name in policies
    ]


def sweep_policy_comparison(
    workload: str,
    policies: Sequence[str] = EVALUATED_POLICIES,
    jobs: int = 1,
    use_cache: bool = True,
    profile: bool = False,
    share_tables: Optional[bool] = None,
    **cell_kwargs,
) -> Dict[str, "RunSummary"]:
    """Policy comparison through the parallel/cached sweep layer.

    Returns ``{policy: RunSummary}`` in the requested policy order; the
    summaries expose the same metric attributes the reporting tables
    read, so they are drop-in replacements for :class:`RunResult` there.
    ``share_tables=False`` disables the warm pool's shared workload
    tables (see :func:`repro.harness.sweep.iter_cells`).
    """
    from repro.harness.sweep import run_cells

    cells = policy_comparison_cells(
        workload, policies=policies, **cell_kwargs
    )
    summaries = run_cells(
        cells,
        jobs=jobs,
        use_cache=use_cache,
        profile=profile,
        share_tables=share_tables,
    )
    return dict(zip(policies, summaries))
