"""Plain-text tables in the shape of the paper's figures.

Every benchmark prints its figure through these helpers so the output of
``pytest benchmarks/ --benchmark-only`` reads like the evaluation section:
one table per figure, normalized the same way the paper normalizes.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def normalized_throughput_rows(
    results: Mapping[str, "RunResult"],
    baseline: str = "linux-nb",
) -> List[List[object]]:
    """(policy, absolute, normalized) rows, paper-style."""
    base = results[baseline].throughput_per_sec
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.throughput_per_sec,
                result.throughput_per_sec / base if base else 0.0,
            ]
        )
    return rows


def throughput_table(
    results: Mapping[str, "RunResult"],
    title: str,
    baseline: str = "linux-nb",
) -> str:
    """The Figure 6/11/12-style normalized-throughput table."""
    return format_table(
        ["policy", "ops/sec", f"vs {baseline}"],
        normalized_throughput_rows(results, baseline),
        title=title,
    )


def latency_table(
    results: Mapping[str, "RunResult"],
    title: str,
    baseline: str = "linux-nb",
) -> str:
    """The Figure 7-style normalized latency table."""
    base = results[baseline].latency_summary
    rows = []
    for name, result in results.items():
        summary = result.latency_summary
        rows.append(
            [
                name,
                summary["average"] / base["average"],
                summary["median"] / base["median"],
                summary["p99"] / base["p99"],
            ]
        )
    return format_table(
        ["policy", "avg (norm)", "median (norm)", "p99 (norm)"],
        rows,
        title=title,
    )


def attribution_table(
    results: Mapping[str, "RunResult"], title: str
) -> str:
    """The Figure 8-style run-time characteristics table."""
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                100.0 * result.fmar,
                100.0 * result.kernel_time_fraction,
                result.context_switches_per_sec,
                result.stats["pgpromote"],
                result.stats["pgdemote"],
            ]
        )
    return format_table(
        [
            "policy", "FMAR %", "kernel time %", "ctx switch /s",
            "promoted", "demoted",
        ],
        rows,
        title=title,
    )
